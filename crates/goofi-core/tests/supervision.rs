//! Target supervision end-to-end: health probes between experiments, hang
//! confirmation, the staged recovery ladder, graceful degradation of the
//! parallel runner, and resume after a crash mid-recovery — driven by a
//! [`WedgeableTarget`] around the scripted target from the resilience
//! suite.

use goofi_core::algorithms::{self, CampaignResult};
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::journal::ExperimentJournal;
use goofi_core::logging::{ExperimentRecord, TerminationCause, Validity};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::policy::{ExperimentPolicy, WatchdogBudget};
use goofi_core::preinject::StepAccess;
use goofi_core::runner;
use goofi_core::supervisor::{RecoveryStage, RecoveryTrigger, Supervisor, WedgeableTarget};
use goofi_core::trigger::Trigger;
use goofi_core::{GoofiError, RunBudget, RunEvent, TargetAccess};
use scanchain::{BitVec, CellAccess, ChainLayout, RecoveryDepth, WedgeConfig, WedgeModel};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic, always-healthy scripted target (the resilience suite's
/// target, minus the scripted failures) — the inner target the wedge
/// decorator misbehaves around.
#[derive(Clone)]
struct MockTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    cycles: u64,
    workload_len: u64,
    breakpoint: Option<u64>,
    halted: bool,
}

impl MockTarget {
    fn new(workload_len: u64) -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, CellAccess::ReadWrite)
            .cell("S", 4, CellAccess::ReadOnly)
            .build();
        MockTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            cycles: 0,
            workload_len,
            breakpoint: None,
            halted: false,
        }
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.cycles,
            });
        }
        self.instructions += 1;
        self.cycles += 1;
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        None
    }
}

impl TargetAccess for MockTarget {
    fn target_name(&self) -> &str {
        "mock"
    }
    fn init_test_card(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn load_workload(&mut self, _image: &WorkloadImage) -> goofi_core::Result<()> {
        self.instructions = 0;
        self.cycles = 0;
        self.halted = false;
        self.breakpoint = None;
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }
    fn reset_target(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi_core::Result<()> {
        for (i, w) in data.iter().enumerate() {
            self.memory[addr as usize + i] = *w;
        }
        Ok(())
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi_core::Result<Vec<u32>> {
        Ok(self.memory[addr as usize..addr as usize + len].to_vec())
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi_core::Result<()> {
        self.memory[addr as usize] ^= 1 << bit;
        Ok(())
    }
    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi_core::Result<()> {
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Config(format!(
                "mock target only supports instruction-count triggers, got {other}"
            ))),
        }
    }
    fn clear_breakpoints(&mut self) -> goofi_core::Result<()> {
        self.breakpoint = None;
        Ok(())
    }
    fn run_workload(&mut self, budget: RunBudget) -> goofi_core::Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.exec_one() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }
    fn step_instruction(&mut self) -> goofi_core::Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi_core::Result<BitVec> {
        assert_eq!(chain, "internal");
        Ok(self.chain.clone())
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi_core::Result<()> {
        assert_eq!(chain, "internal");
        self.chain = self.layout.masked_update(&self.chain, bits).unwrap();
        Ok(())
    }
    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi_core::Result<()> {
        Ok(())
    }
    fn read_output_ports(&mut self) -> goofi_core::Result<Vec<u32>> {
        Ok(vec![self.instructions as u32])
    }
    fn instructions_executed(&self) -> u64 {
        self.instructions
    }
    fn cycles_executed(&self) -> u64 {
        self.cycles
    }
    fn iterations_completed(&self) -> u64 {
        0
    }
    fn step_traced(&mut self) -> goofi_core::Result<(Option<RunEvent>, StepAccess)> {
        let ev = self.exec_one();
        Ok((
            ev,
            StepAccess {
                reads: vec![],
                writes: vec!["internal:A".into()],
            },
        ))
    }
}

/// Experiment `i` triggers at instruction `10 * (i + 1)`.
fn trigger_of(index: usize) -> u64 {
    10 * (index as u64 + 1)
}

fn campaign_n(n: usize, policy: ExperimentPolicy) -> Campaign {
    let faults: Vec<FaultSpec> = (0..n)
        .map(|i| FaultSpec {
            locations: vec![FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "A".into(),
                bit: 2,
            }],
            model: FaultModel::TransientBitFlip,
            trigger: Trigger::AfterInstructions(trigger_of(i)),
        })
        .collect();
    Campaign::builder("mock")
        .workload(WorkloadImage {
            name: "mock-wl".into(),
            words: vec![0],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 100_000,
            max_iterations: None,
        })
        .policy(policy)
        .faults(faults)
        .build()
        .unwrap()
}

/// The supervision policy used throughout: a cycle watchdog turns a hang
/// into `Timeout`, and the health-check cadence enables the supervisor
/// (large enough that no *scheduled* probe fires in these short campaigns).
fn supervised_policy() -> ExperimentPolicy {
    ExperimentPolicy::default()
        .with_watchdog(WatchdogBudget {
            max_cycles: Some(5_000),
            max_wall_ms: None,
        })
        .with_health_check(1_000)
}

/// A wedge that hangs the target once, mid-campaign, and only lets go on a
/// real power cycle. The seed is chosen so the reference run (the first
/// armed operation) stays clean — asserted by the tests that rely on it.
fn one_hang_config(recovery: RecoveryDepth) -> WedgeConfig {
    WedgeConfig {
        max_events: Some(1),
        recovery,
        ..WedgeConfig::hang(17, 0.3)
    }
}

/// Where `one_hang_config`'s single hang lands: the index of the first
/// armed operation (1-based) that wedges. Pinned here so every test can
/// assert its preconditions against the actual seeded schedule.
fn first_wedged_op(cfg: WedgeConfig) -> Option<u64> {
    let mut model = WedgeModel::new(cfg);
    for _ in 0..64 {
        if model.advance().is_some() {
            return Some(model.operations());
        }
    }
    None
}

fn run_serial<T: TargetAccess>(
    target: &mut T,
    c: &Campaign,
    monitor: &ProgressMonitor,
) -> goofi_core::Result<CampaignResult> {
    algorithms::run_campaign(target, c, monitor, &mut envsim::NullEnvironment)
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("goofi-supervision-{}-{name}", std::process::id()));
    p
}

/// The part of a record supervision must preserve: everything except the
/// (intentionally different) re-run name and parent link.
fn essence(r: &ExperimentRecord) -> (Option<&FaultSpec>, &TerminationCause, String, Validity) {
    (
        r.fault.as_ref(),
        &r.termination,
        r.state.encode(),
        r.validity,
    )
}

#[test]
fn one_hang_seed_wedges_mid_campaign_not_the_reference() {
    // The tests below bank on the shared wedge schedule: the single hang
    // must fire after the reference run (armed operation 1) but early
    // enough to land inside a four-experiment campaign (at most two armed
    // runs per experiment: run-to-breakpoint, continue-to-termination).
    let at = first_wedged_op(one_hang_config(RecoveryDepth::PowerCycle));
    let at = at.expect("seed 17 @ rate 0.3 must wedge within 64 operations");
    assert!(
        (2..=9).contains(&at),
        "hang must land on an experiment run, landed on operation {at}"
    );
}

#[test]
fn hang_is_detected_recovered_and_rerun_to_the_healthy_result() {
    let c = campaign_n(4, supervised_policy());

    // Ground truth: the same campaign against a healthy target.
    let mut healthy = MockTarget::new(200);
    let healthy_result = run_serial(&mut healthy, &c, &ProgressMonitor::new(4)).unwrap();
    assert!(healthy_result.recoveries.is_empty());
    assert!(healthy_result.quarantined.is_empty());

    // Same campaign, same seed, but the target hangs once mid-campaign and
    // only a power cycle un-wedges it.
    let mut wedged = WedgeableTarget::new(
        MockTarget::new(200),
        one_hang_config(RecoveryDepth::PowerCycle),
    );
    let monitor = ProgressMonitor::new(4);
    let result = run_serial(&mut wedged, &c, &monitor).unwrap();

    // The campaign completed with the hang experiment re-run in place:
    // same number of records, identical fault/termination/state outcomes.
    assert_eq!(result.reference, healthy_result.reference);
    assert_eq!(result.records.len(), healthy_result.records.len());
    for (got, want) in result.records.iter().zip(&healthy_result.records) {
        assert_eq!(essence(got), essence(want));
    }
    assert!(result.failures.is_empty());

    // Exactly one record is the `parentExperiment`-linked child replacing
    // the quarantined hang.
    let reruns: Vec<&ExperimentRecord> = result
        .records
        .iter()
        .filter(|r| r.parent.is_some())
        .collect();
    assert_eq!(reruns.len(), 1, "exactly one hang re-run expected");
    let rerun = reruns[0];
    let parent = rerun.parent.as_deref().unwrap();
    assert_eq!(rerun.name, format!("{parent}/rerun1"));

    // The quarantined original is kept for audit, rewritten to TargetHang.
    assert_eq!(result.quarantined.len(), 1);
    assert_eq!(result.quarantined[0].name, parent);
    assert_eq!(
        result.quarantined[0].termination,
        TerminationCause::TargetHang
    );
    assert_eq!(result.quarantined[0].validity, Validity::Invalid);

    // The recovery episode climbed the whole ladder: two soft resets and
    // two card re-inits fail (the wedge needs a power cycle), the power
    // cycle clears it.
    assert_eq!(result.recoveries.len(), 1);
    let episode = &result.recoveries[0];
    assert_eq!(episode.experiment, parent);
    assert_eq!(episode.trigger, RecoveryTrigger::TargetHang);
    assert!(episode.recovered);
    let climbed: Vec<(RecoveryStage, u32, bool)> = episode
        .actions
        .iter()
        .map(|a| (a.stage, a.attempt, a.recovered))
        .collect();
    assert_eq!(
        climbed,
        vec![
            (RecoveryStage::SoftReset, 1, false),
            (RecoveryStage::SoftReset, 2, false),
            (RecoveryStage::ReinitTestCard, 1, false),
            (RecoveryStage::ReinitTestCard, 2, false),
            (RecoveryStage::PowerCycle, 1, true),
        ]
    );

    // Progress counters tell the same story: one confirmation probe plus
    // one probe after every ladder action, only the last one passing.
    let p = monitor.snapshot();
    assert_eq!(p.hangs, 1);
    assert_eq!(p.probes_run, 6);
    assert_eq!(p.probes_failed, 5);
    assert_eq!(p.soft_resets, 2);
    assert_eq!(p.card_reinits, 2);
    assert_eq!(p.power_cycles, 1);
    assert_eq!(p.targets_offline, 0);
    assert_eq!(p.completed, 4);
}

#[test]
fn unrecoverable_serial_target_goes_offline_with_partial_preserved() {
    let c = campaign_n(4, supervised_policy());
    // Same wedge schedule as the recovery test, but nothing clears it.
    let mut wedged =
        WedgeableTarget::new(MockTarget::new(200), one_hang_config(RecoveryDepth::Never));
    let monitor = ProgressMonitor::new(4);
    let err = run_serial(&mut wedged, &c, &monitor).unwrap_err();
    match err {
        GoofiError::TargetOffline { context, partial } => {
            // The episode names the experiment that hung, and everything
            // completed before it is preserved.
            assert_eq!(context, c.experiment_name(partial.records.len()));
            assert_eq!(partial.quarantined.len(), 1);
            assert_eq!(
                partial.quarantined[0].termination,
                TerminationCause::TargetHang
            );
            assert_eq!(partial.recoveries.len(), 1);
            let episode = &partial.recoveries[0];
            assert!(!episode.recovered);
            let last = episode.actions.last().unwrap();
            assert_eq!(last.stage, RecoveryStage::Offline);
            assert_eq!(last.detail, "every recovery stage exhausted");
        }
        other => panic!("expected TargetOffline, got {other:?}"),
    }
    assert_eq!(monitor.snapshot().targets_offline, 1);
}

#[test]
fn parallel_runner_retires_offline_worker_and_redistributes_its_shard() {
    let c = campaign_n(6, supervised_policy());

    // Ground truth: a healthy serial run of the same campaign.
    let mut healthy = MockTarget::new(200);
    let healthy_result = run_serial(&mut healthy, &c, &ProgressMonitor::new(6)).unwrap();

    // Targets are handed out in creation order: the first (the reference
    // target) and one worker are healthy, the other worker's target hangs
    // on its very first run and never recovers.
    let built = AtomicUsize::new(0);
    let make_target = || {
        let config = match built.fetch_add(1, Ordering::SeqCst) {
            1 => WedgeConfig {
                recovery: RecoveryDepth::Never,
                ..WedgeConfig::hang(1, 1.0)
            },
            _ => WedgeConfig::default(),
        };
        WedgeableTarget::new(MockTarget::new(200), config)
    };
    let monitor = ProgressMonitor::new(6);
    let result = runner::run_campaign_parallel(
        make_target,
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &monitor,
        2,
    )
    .unwrap();

    // Degraded, not failed: the sick worker's in-flight experiment went
    // back on the queue and the surviving worker finished the campaign
    // with exactly the healthy outcomes.
    assert_eq!(result.reference, healthy_result.reference);
    assert_eq!(result.records, healthy_result.records);
    assert!(result.failures.is_empty());

    // The hang was confirmed, quarantined for audit, and the ladder ran
    // dry on the dead target.
    assert_eq!(result.quarantined.len(), 1);
    assert_eq!(
        result.quarantined[0].termination,
        TerminationCause::TargetHang
    );
    assert_eq!(result.recoveries.len(), 1);
    let episode = &result.recoveries[0];
    assert_eq!(episode.trigger, RecoveryTrigger::TargetHang);
    assert!(!episode.recovered);
    assert_eq!(
        episode.actions.last().unwrap().stage,
        RecoveryStage::Offline
    );

    let p = monitor.snapshot();
    assert_eq!(p.hangs, 1);
    assert_eq!(p.targets_offline, 1);
    assert_eq!(p.completed, 6);
}

#[test]
fn parallel_runner_fails_only_when_every_target_is_offline() {
    let c = campaign_n(6, supervised_policy());
    // The reference target is healthy; both workers' targets are dead on
    // arrival.
    let built = AtomicUsize::new(0);
    let make_target = || {
        let config = match built.fetch_add(1, Ordering::SeqCst) {
            0 => WedgeConfig::default(),
            _ => WedgeConfig {
                recovery: RecoveryDepth::Never,
                ..WedgeConfig::hang(1, 1.0)
            },
        };
        WedgeableTarget::new(MockTarget::new(200), config)
    };
    let monitor = ProgressMonitor::new(6);
    let err = runner::run_campaign_parallel(
        make_target,
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &monitor,
        2,
    )
    .unwrap_err();
    match err {
        GoofiError::TargetOffline { context, partial } => {
            assert!(context.contains("retired"), "context: {context}");
            assert!(partial.records.len() < 6);
            assert_eq!(partial.recoveries.len(), 2);
            assert!(partial.recoveries.iter().all(|r| !r.recovered));
        }
        other => panic!("expected TargetOffline, got {other:?}"),
    }
    assert_eq!(monitor.snapshot().targets_offline, 2);
}

#[test]
fn resume_after_crash_mid_recovery_reruns_the_quarantined_hang() {
    let journal = temp_path("mid-recovery.gjl");
    let _ = std::fs::remove_file(&journal);
    let c = campaign_n(4, supervised_policy());

    // Uninterrupted journaled run against the hanging target — the ground
    // truth, with the hang already resolved as a linked re-run.
    let mut wedged = WedgeableTarget::new(
        MockTarget::new(200),
        one_hang_config(RecoveryDepth::PowerCycle),
    );
    let mut j = ExperimentJournal::create(&journal, "mock").unwrap();
    let full = algorithms::run_campaign_journaled(
        &mut wedged,
        &c,
        &ProgressMonitor::new(4),
        &mut envsim::NullEnvironment,
        Some(&mut j),
    )
    .unwrap();
    drop(j);
    assert_eq!(full.quarantined.len(), 1);
    let text = std::fs::read_to_string(&journal).unwrap();
    std::fs::remove_file(&journal).unwrap();

    // Crash right after the quarantine entry hit the journal — recovery
    // and the re-run never happened. The quarantined TargetHang record is
    // the last line of the truncated journal.
    let lines: Vec<&str> = text.lines().collect();
    let cut = lines
        .iter()
        .position(|l| l.contains("\thang\t"))
        .expect("journal records the quarantined hang");
    let crashed = temp_path("mid-recovery-crashed.gjl");
    std::fs::write(&crashed, format!("{}\n", lines[..=cut].join("\n"))).unwrap();

    // The journal already treats the invalid record as a failed round.
    let state = ExperimentJournal::load(&crashed, "mock").unwrap();
    assert_eq!(state.quarantined.len(), 1);
    let hung_index = state.quarantined[0]
        .name
        .rsplit("exp")
        .next()
        .unwrap()
        .parse::<usize>()
        .unwrap();
    assert!(state.failed.contains_key(&hung_index));

    // Resume on a healthy target: the hang experiment re-runs as the same
    // linked child the uninterrupted run produced, and the campaign
    // completes with identical records.
    let monitor = ProgressMonitor::new(4);
    let resumed = runner::resume_campaign(
        || MockTarget::new(200),
        None::<fn() -> Box<dyn envsim::Environment>>,
        &c,
        &monitor,
        2,
        &crashed,
    )
    .unwrap();
    assert_eq!(resumed.records, full.records);
    assert_eq!(resumed.reference, full.reference);
    assert!(resumed.failures.is_empty());

    // The journal is whole again: every experiment completed, no failures.
    let state = ExperimentJournal::load(&crashed, "mock").unwrap();
    assert_eq!(state.completed.len(), 4);
    assert!(state.failed.is_empty());
    std::fs::remove_file(&crashed).unwrap();
}

#[test]
fn scheduled_probes_on_a_healthy_target_leave_the_result_untouched() {
    let plain = campaign_n(6, ExperimentPolicy::default());
    let mut target = MockTarget::new(200);
    let baseline = run_serial(&mut target, &plain, &ProgressMonitor::new(6)).unwrap();

    let supervised = campaign_n(6, ExperimentPolicy::default().with_health_check(2));
    let mut target = MockTarget::new(200);
    let monitor = ProgressMonitor::new(6);
    let result = run_serial(&mut target, &supervised, &monitor).unwrap();

    assert_eq!(result.reference, baseline.reference);
    assert_eq!(result.records, baseline.records);
    assert!(result.recoveries.is_empty());

    // Cadence 2 over six experiments: suites after experiments 2, 4, 6 —
    // all passing, nothing escalated.
    let p = monitor.snapshot();
    assert_eq!(p.probes_run, 3);
    assert_eq!(p.probes_failed, 0);
    assert_eq!(p.soft_resets + p.card_reinits + p.power_cycles, 0);
}

#[test]
fn probe_failure_recovery_climbs_the_ladder_until_the_target_heals() {
    // A stuck TAP only a power cycle clears (anything shallower is undone
    // by nothing — the probe suite's own smoke run re-inits the card, so a
    // shallower wedge would heal mid-probe): the ladder must exhaust both
    // soft resets and both re-inits before the power cycle succeeds.
    let c = campaign_n(1, ExperimentPolicy::default().with_health_check(1));
    let mut reference_target = MockTarget::new(200);
    let reference =
        algorithms::make_reference_run(&mut reference_target, &c, &mut envsim::NullEnvironment)
            .unwrap();
    let sup = Supervisor::from_campaign(&c, &reference).expect("supervision enabled");

    let mut target = WedgeableTarget::new(
        MockTarget::new(200),
        WedgeConfig {
            stuck_tap_rate: 1.0,
            max_events: Some(1),
            recovery: RecoveryDepth::PowerCycle,
            ..WedgeConfig::default()
        },
    );
    target.init_test_card().unwrap();
    // Arm the wedge: the next armed operation jams the TAP.
    target
        .run_workload(RunBudget {
            max_instructions: 1,
        })
        .unwrap();
    assert!(target.model().wedged().is_some());

    let monitor = ProgressMonitor::new(1);
    let suite = sup.probe(&mut target, &mut envsim::NullEnvironment, &monitor);
    assert!(!suite.passed());
    assert!(suite.failure_summary().contains("internal"));

    let episode = sup.recover(
        &mut target,
        &mut envsim::NullEnvironment,
        &monitor,
        "mock/exp00000",
        RecoveryTrigger::ProbeFailure,
    );
    assert!(episode.recovered);
    assert_eq!(episode.trigger, RecoveryTrigger::ProbeFailure);
    let climbed: Vec<(RecoveryStage, u32, bool)> = episode
        .actions
        .iter()
        .map(|a| (a.stage, a.attempt, a.recovered))
        .collect();
    assert_eq!(
        climbed,
        vec![
            (RecoveryStage::SoftReset, 1, false),
            (RecoveryStage::SoftReset, 2, false),
            (RecoveryStage::ReinitTestCard, 1, false),
            (RecoveryStage::ReinitTestCard, 2, false),
            (RecoveryStage::PowerCycle, 1, true),
        ]
    );
    let p = monitor.snapshot();
    assert_eq!(p.soft_resets, 2);
    assert_eq!(p.card_reinits, 2);
    assert_eq!(p.power_cycles, 1);
}

/// Stepping campaigns (detail logging, persistent fault models) never call
/// `run_workload`, so the wedge decorator arms one draw per workload
/// *launch* there instead: the first `step_instruction` after a
/// `load_workload`. The run path clears the pending launch, so a campaign
/// that mixes a run-to-breakpoint with post-injection stepping draws
/// exactly once — the `run_workload` schedule the rest of this suite pins
/// is unchanged.
#[test]
fn stepping_campaigns_draw_once_per_workload_launch() {
    let image = WorkloadImage {
        name: "mock-wl".into(),
        words: vec![0],
        code_words: 1,
        entry: 0,
    };
    let certain_hang = WedgeConfig {
        recovery: RecoveryDepth::PowerCycle,
        ..WedgeConfig::hang(1, 1.0)
    };

    // Pure stepping: the first step after a load draws (and here wedges);
    // later steps burn the hang without re-rolling.
    let mut target = WedgeableTarget::new(MockTarget::new(200), certain_hang);
    target.load_workload(&image).unwrap();
    assert_eq!(target.model().operations(), 0, "load itself must not draw");
    assert_eq!(
        target.step_instruction().unwrap(),
        None,
        "hang burns the step"
    );
    assert_eq!(target.model().wedged(), Some(scanchain::WedgeKind::Hang));
    assert_eq!(target.model().operations(), 1);
    target.step_instruction().unwrap();
    assert_eq!(target.model().operations(), 1, "no re-roll while wedged");
    // Each hung step burns a whole slice of cycles (the host's step op
    // timing out), so watchdog budgets are reached in bounded step calls.
    assert!(
        target.instructions_executed() >= 2 * 4096,
        "burned steps must age the watchdog counters in slice-sized bites"
    );
    assert_eq!(target.instructions_executed(), target.cycles_executed());

    // Mixed run-then-step (never wedges at rate 0): the run consumes the
    // pending launch, so the follow-up steps add no extra draws.
    let mut target = WedgeableTarget::new(MockTarget::new(200), WedgeConfig::hang(1, 0.0));
    target.load_workload(&image).unwrap();
    target
        .run_workload(RunBudget {
            max_instructions: 10,
        })
        .unwrap();
    target.step_instruction().unwrap();
    target.step_instruction().unwrap();
    assert_eq!(
        target.model().operations(),
        1,
        "one draw for the run, none for the steps after it"
    );
}
