//! End-to-end tests of the observability layer: spans recorded by a real
//! campaign against a scripted target follow the paper's four-phase
//! workflow, the metrics registry agrees with the progress monitor, the
//! flight recorder survives a mid-campaign failure, and a JSONL trace
//! reproduces the live per-stage histograms (the `report --timings` path).

use goofi_core::algorithms;
use goofi_core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi_core::fault::{FaultLocation, FaultModel, FaultSpec};
use goofi_core::monitor::ProgressMonitor;
use goofi_core::preinject::StepAccess;
use goofi_core::telemetry::{
    JsonlSink, MetricsSnapshot, RingSink, SpanKind, SpanRecord, Stage, Telemetry, TraceSink,
};
use goofi_core::trigger::Trigger;
use goofi_core::{GoofiError, RunBudget, RunEvent, TargetAccess};
use scanchain::{BitVec, CellAccess, ChainLayout};
use std::path::PathBuf;
use std::sync::Arc;

/// A deterministic scripted target: the "workload" runs for `workload_len`
/// instructions and halts. Instruction-count breakpoints work; any other
/// trigger kind makes `set_breakpoint` fail, which lets tests provoke a
/// mid-campaign experiment failure on demand.
struct MockTarget {
    layout: ChainLayout,
    chain: BitVec,
    memory: Vec<u32>,
    instructions: u64,
    workload_len: u64,
    breakpoint: Option<u64>,
    halted: bool,
}

impl MockTarget {
    fn new(workload_len: u64) -> Self {
        let layout = ChainLayout::builder("internal")
            .cell("A", 8, CellAccess::ReadWrite)
            .cell("S", 4, CellAccess::ReadOnly)
            .build();
        MockTarget {
            chain: BitVec::zeros(layout.total_bits()),
            layout,
            memory: vec![0; 64],
            instructions: 0,
            workload_len,
            breakpoint: None,
            halted: false,
        }
    }

    fn exec_one(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.breakpoint == Some(self.instructions) {
            return Some(RunEvent::Breakpoint {
                at_instruction: self.instructions,
                at_cycle: self.instructions,
            });
        }
        self.instructions += 1;
        if self.instructions >= self.workload_len {
            self.halted = true;
            return Some(RunEvent::Halted);
        }
        None
    }
}

impl TargetAccess for MockTarget {
    fn target_name(&self) -> &str {
        "mock"
    }
    fn init_test_card(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn load_workload(&mut self, _image: &WorkloadImage) -> goofi_core::Result<()> {
        self.instructions = 0;
        self.halted = false;
        self.chain = BitVec::zeros(self.layout.total_bits());
        Ok(())
    }
    fn reset_target(&mut self) -> goofi_core::Result<()> {
        Ok(())
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi_core::Result<()> {
        for (i, w) in data.iter().enumerate() {
            self.memory[addr as usize + i] = *w;
        }
        Ok(())
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi_core::Result<Vec<u32>> {
        Ok(self.memory[addr as usize..addr as usize + len].to_vec())
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi_core::Result<()> {
        self.memory[addr as usize] ^= 1 << bit;
        Ok(())
    }
    fn memory_size(&self) -> u32 {
        self.memory.len() as u32
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi_core::Result<()> {
        match trigger {
            Trigger::AfterInstructions(n) => {
                self.breakpoint = Some(n);
                Ok(())
            }
            other => Err(GoofiError::Target(format!(
                "mock target only supports instruction-count triggers, got {other}"
            ))),
        }
    }
    fn clear_breakpoints(&mut self) -> goofi_core::Result<()> {
        self.breakpoint = None;
        Ok(())
    }
    fn run_workload(&mut self, budget: RunBudget) -> goofi_core::Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.exec_one() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }
    fn step_instruction(&mut self) -> goofi_core::Result<Option<RunEvent>> {
        Ok(self.exec_one())
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![self.layout.clone()]
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi_core::Result<BitVec> {
        assert_eq!(chain, "internal");
        Ok(self.chain.clone())
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi_core::Result<()> {
        assert_eq!(chain, "internal");
        self.chain = self.layout.masked_update(&self.chain, bits).unwrap();
        Ok(())
    }
    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi_core::Result<()> {
        Ok(())
    }
    fn read_output_ports(&mut self) -> goofi_core::Result<Vec<u32>> {
        Ok(vec![self.instructions as u32])
    }
    fn instructions_executed(&self) -> u64 {
        self.instructions
    }
    fn cycles_executed(&self) -> u64 {
        self.instructions
    }
    fn iterations_completed(&self) -> u64 {
        0
    }
    fn step_traced(&mut self) -> goofi_core::Result<(Option<RunEvent>, StepAccess)> {
        let ev = self.exec_one();
        Ok((
            ev,
            StepAccess {
                reads: vec![],
                writes: vec![],
            },
        ))
    }
}

fn scan_fault(trigger: Trigger) -> FaultSpec {
    FaultSpec {
        locations: vec![FaultLocation::ScanCell {
            chain: "internal".into(),
            cell: "A".into(),
            bit: 2,
        }],
        model: FaultModel::TransientBitFlip,
        trigger,
    }
}

fn campaign(faults: Vec<FaultSpec>) -> Campaign {
    Campaign::builder("tel-e2e")
        .workload(WorkloadImage {
            name: "mock-wl".into(),
            words: vec![0],
            code_words: 1,
            entry: 0,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()
        .unwrap()
}

/// Three well-formed experiments (instruction-count triggers).
fn good_campaign() -> Campaign {
    campaign(vec![
        scan_fault(Trigger::AfterInstructions(10)),
        scan_fault(Trigger::AfterInstructions(20)),
        scan_fault(Trigger::AfterInstructions(30)),
    ])
}

fn tmp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("goofi-tel-e2e-{name}-{}", std::process::id()))
}

/// Runs `good_campaign` with the given sinks attached; returns the
/// telemetry handle and the monitor after a successful run.
fn run_traced(sinks: Vec<Arc<dyn TraceSink>>) -> (Telemetry, ProgressMonitor) {
    let c = good_campaign();
    let tel = Telemetry::with_sinks(sinks);
    let monitor = ProgressMonitor::with_telemetry(c.experiment_count(), tel.clone());
    let mut target = MockTarget::new(100);
    algorithms::run_campaign(&mut target, &c, &monitor, &mut envsim::NullEnvironment).unwrap();
    (tel, monitor)
}

#[test]
fn span_hierarchy_follows_four_phase_workflow() {
    let ring = Arc::new(RingSink::new(4096));
    let (_tel, _monitor) = run_traced(vec![ring.clone()]);
    let spans = ring.buffered();

    // Exactly one campaign span, at the root.
    let campaigns: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Campaign)
        .collect();
    assert_eq!(campaigns.len(), 1, "{spans:#?}");
    let campaign_span = campaigns[0];
    assert_eq!(campaign_span.parent, None);
    assert_eq!(campaign_span.name, "tel-e2e");

    // Reference + three experiments, all parented to the campaign.
    let experiments: Vec<&SpanRecord> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Experiment)
        .collect();
    assert_eq!(experiments.len(), 4);
    for e in &experiments {
        assert_eq!(e.parent, Some(campaign_span.id), "{e:?}");
    }

    // Every experiment goes through set-up (load), execution (run) and
    // state scanning; the fault-injection phase additionally injects in
    // each non-reference experiment.
    for e in &experiments {
        let child_stages: Vec<Stage> = spans
            .iter()
            .filter(|s| s.parent == Some(e.id))
            .filter_map(|s| match s.kind {
                SpanKind::Stage(stage) => Some(stage),
                _ => None,
            })
            .collect();
        assert!(
            child_stages.contains(&Stage::Load),
            "{e:?}: {child_stages:?}"
        );
        assert!(
            child_stages.contains(&Stage::Run),
            "{e:?}: {child_stages:?}"
        );
        assert!(
            child_stages.contains(&Stage::Scan),
            "{e:?}: {child_stages:?}"
        );
        let is_reference = e.name.ends_with("/reference");
        assert_eq!(
            child_stages.contains(&Stage::Inject),
            !is_reference,
            "{e:?}: {child_stages:?}"
        );
    }
}

#[test]
fn metrics_snapshot_agrees_with_progress_monitor() {
    let (tel, monitor) = run_traced(vec![Arc::new(RingSink::new(64))]);
    let snapshot = tel.metrics().expect("telemetry enabled");
    let progress = monitor.snapshot();

    assert_eq!(progress.completed, 3);
    assert_eq!(snapshot.counter("completed"), progress.completed as u64);
    assert_eq!(snapshot.counter("failed"), progress.failed as u64);
    assert_eq!(snapshot.counter("retried"), progress.retried as u64);

    // One load/scan per experiment plus the reference run.
    assert_eq!(snapshot.stage(Stage::Load).count(), 4);
    assert_eq!(snapshot.stage(Stage::Scan).count(), 4);
    // One injection per experiment, none for the reference.
    assert_eq!(snapshot.stage(Stage::Inject).count(), 3);
    // Every experiment executes at least once.
    assert!(snapshot.stage(Stage::Run).count() >= 4);
    // Nothing ran the analysis phase or supervision here.
    assert_eq!(snapshot.stage(Stage::Classify).count(), 0);
    assert_eq!(snapshot.stage(Stage::Probe).count(), 0);
}

#[test]
fn flight_recorder_dumps_on_failure_and_roundtrips() {
    // The second experiment's trigger kind is unsupported by the mock, so
    // the default fail-fast policy aborts the campaign mid-flight.
    let c = campaign(vec![
        scan_fault(Trigger::AfterInstructions(10)),
        scan_fault(Trigger::Breakpoint(1)),
    ]);
    let ring = Arc::new(RingSink::new(256));
    let tel = Telemetry::with_sinks(vec![ring.clone()]);
    let monitor = ProgressMonitor::with_telemetry(c.experiment_count(), tel.clone());
    let mut target = MockTarget::new(100);
    let err = algorithms::run_campaign(&mut target, &c, &monitor, &mut envsim::NullEnvironment)
        .unwrap_err();
    assert!(matches!(err, GoofiError::ExperimentFailed { .. }), "{err}");

    let path = tmp_path("flight");
    let dumped = tel.dump_flight(&path).unwrap();
    assert!(dumped > 0);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // Every dumped line round-trips through the codec verbatim.
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), dumped);
    for line in &lines {
        let record = SpanRecord::decode(line).unwrap_or_else(|| panic!("bad line `{line}`"));
        assert_eq!(record.encode(), *line);
    }

    // The dump holds the work that completed before the failure: the
    // reference and first experiment with their stage spans.
    let records: Vec<SpanRecord> = lines.iter().filter_map(|l| SpanRecord::decode(l)).collect();
    assert!(records
        .iter()
        .any(|r| r.kind == SpanKind::Experiment && r.name == "tel-e2e/reference"));
    assert!(records
        .iter()
        .any(|r| r.kind == SpanKind::Experiment && r.name == "tel-e2e/exp00000"));
    assert!(records
        .iter()
        .any(|r| r.kind == SpanKind::Stage(Stage::Inject)));
}

#[test]
fn jsonl_trace_reproduces_live_histograms() {
    // The `goofi report --timings <trace>` path: per-stage histograms
    // rebuilt from the trace file must equal the in-process registry's.
    let path = tmp_path("trace");
    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    let (tel, _monitor) = run_traced(vec![sink]);
    tel.flush();
    let live = tel.metrics().expect("telemetry enabled");
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    let from_trace = MetricsSnapshot::from_trace(&text);
    for stage in Stage::ALL {
        assert_eq!(
            from_trace.stage(stage),
            live.stage(stage),
            "stage {}",
            stage.encode()
        );
    }
    // And the rendered table carries one row per stage.
    let table = from_trace.render_timings();
    for stage in Stage::ALL {
        assert!(table.contains(stage.encode()), "{table}");
    }
}
