//! Property-based tests for the service wire protocol: every request,
//! response and worker event must survive an encode → decode round trip
//! bit-for-bit — including strings full of quotes, backslashes and
//! control characters — and the frame codec must treat torn or truncated
//! frame tails as damage, never as data.

use goofi_core::service::net::{encode_frame, FrameRead, FrameReader};
use goofi_core::service::{Request, Response, WorkerEvent};
use proptest::prelude::*;

/// Wire strings that stress the JSON escaper: quotes, backslashes,
/// newlines, tabs, braces, separators and plain text, empty included.
const NASTY: &str = "[a-zA-Z0-9 _.:,/{}\"\n\t\\\\-]{0,20}";

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|version| Request::Hello { version }),
        (NASTY, NASTY, 1usize..512, any::<bool>(), NASTY).prop_map(
            |(id, campaign, workers, watch, target)| {
                Request::Submit {
                    id,
                    campaign,
                    workers,
                    watch,
                    target,
                }
            }
        ),
        (NASTY, any::<u64>()).prop_map(|(job, after)| Request::Watch { job, after }),
        Just(Request::Status),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|version| Response::Hello { version }),
        NASTY.prop_map(|job| Response::Accepted { job }),
        (
            any::<u64>(),
            NASTY,
            NASTY,
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            (any::<u64>(), any::<u64>(), any::<u64>()),
            NASTY,
        )
            .prop_map(
                |(seq, job, state, counts, shards, detail)| Response::Progress {
                    seq,
                    job,
                    state,
                    total: counts.0,
                    completed: counts.1,
                    failed: counts.2,
                    quarantined: counts.3,
                    shards_done: shards.0,
                    shards_total: shards.1,
                    shards_poisoned: shards.2,
                    detail,
                },
            ),
        any::<u64>().prop_map(|jobs| Response::Listing { jobs }),
        (NASTY, NASTY, NASTY).prop_map(|(job, campaign, state)| Response::Job {
            job,
            campaign,
            state,
        }),
        Just(Response::End),
        NASTY.prop_map(|detail| Response::Error { detail }),
    ]
}

fn arb_worker_event() -> impl Strategy<Value = WorkerEvent> {
    prop_oneof![
        (0usize..1024, 1u32..64).prop_map(|(shard, attempt)| WorkerEvent::Hello { shard, attempt }),
        (
            0usize..1024,
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        )
            .prop_map(|(shard, completed, failed, skipped, quarantined)| {
                WorkerEvent::Progress {
                    shard,
                    completed,
                    failed,
                    skipped,
                    quarantined,
                }
            },),
        (0usize..1024, any::<u64>(), any::<u64>()).prop_map(|(shard, completed, failed)| {
            WorkerEvent::Done {
                shard,
                completed,
                failed,
            }
        }),
        (0usize..1024, NASTY, NASTY).prop_map(|(shard, kind, detail)| WorkerEvent::Error {
            shard,
            kind,
            detail,
        }),
    ]
}

/// Reads a byte stream to EOF, collecting intact frames and counting
/// damage reports.
fn drain(bytes: &[u8]) -> (Vec<String>, usize) {
    let mut reader = FrameReader::new(std::io::Cursor::new(bytes.to_vec()));
    let mut frames = Vec::new();
    let mut damaged = 0;
    loop {
        match reader.read_frame().expect("cursor reads cannot fail") {
            FrameRead::Frame(payload) => frames.push(payload),
            FrameRead::Malformed(_) => damaged += 1,
            FrameRead::Eof => return (frames, damaged),
        }
    }
}

proptest! {
    #[test]
    fn request_roundtrip(request in arb_request()) {
        let decoded = Request::decode(&request.encode());
        prop_assert_eq!(decoded.expect("round trip decodes"), request);
    }

    #[test]
    fn response_roundtrip(response in arb_response()) {
        let decoded = Response::decode(&response.encode());
        prop_assert_eq!(decoded.expect("round trip decodes"), response);
    }

    #[test]
    fn worker_event_roundtrip(event in arb_worker_event()) {
        let decoded = WorkerEvent::decode(&event.encode());
        prop_assert_eq!(decoded.expect("round trip decodes"), event);
    }

    #[test]
    fn sequenced_worker_event_roundtrip(event in arb_worker_event(), seq in any::<u64>()) {
        let line = event.encode_with_seq(seq);
        let (got_seq, got_event) =
            WorkerEvent::decode_with_seq(&line).expect("round trip decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got_event, event);
    }

    /// A frame stream of two payloads reads back exactly those payloads.
    #[test]
    fn framed_payloads_roundtrip(a in NASTY, b in NASTY) {
        let mut bytes = encode_frame(&a);
        bytes.extend_from_slice(&encode_frame(&b));
        let (frames, damaged) = drain(&bytes);
        prop_assert_eq!(frames, vec![a, b]);
        prop_assert_eq!(damaged, 0);
    }

    /// Tearing a frame at any byte boundary must never panic, hang, or
    /// invent a payload: every intact frame the reader yields is one of
    /// the payloads actually sent, and a frame following the tear is
    /// either delivered intact or reported as damage — never mangled.
    #[test]
    fn torn_frame_tails_never_invent_payloads(
        a in NASTY,
        b in NASTY,
        cut_frac in 0usize..1000,
    ) {
        let torn = encode_frame(&a);
        let cut = cut_frac * torn.len() / 1000;
        let mut bytes = torn[..cut].to_vec();
        bytes.extend_from_slice(&encode_frame(&b));
        let (frames, damaged) = drain(&bytes);
        for frame in &frames {
            prop_assert!(
                frame == &a || frame == &b,
                "invented payload {:?} from torn stream", frame
            );
        }
        prop_assert!(
            !frames.is_empty() || damaged > 0,
            "tear swallowed every frame without a damage report"
        );
    }

    /// A truncated tail with nothing after it is damage or silence —
    /// never a delivered frame.
    #[test]
    fn truncated_final_frame_is_never_delivered(payload in NASTY, cut_frac in 0usize..1000) {
        let whole = encode_frame(&payload);
        let cut = cut_frac * (whole.len() - 1) / 1000;
        let (frames, _damaged) = drain(&whole[..cut]);
        prop_assert!(
            frames.is_empty(),
            "truncated frame decoded as {:?}", frames
        );
    }
}
