//! The GOOFI `TargetSystemInterface` for the RV32I core — the second
//! target system, ported through the same Framework template as
//! `goofi-thor`.
//!
//! The port is deliberately boring: every [`goofi_core::TargetAccess`]
//! building block maps onto the `riscv` simulator wrapped in a
//! [`scanchain::TestCard`], exactly as the Thor port does. That is the
//! paper's genericity claim made concrete — a different ISA (byte-addressed
//! PCs, a hardwired zero register, ECALL-based environment calls, no
//! caches) slots in behind the identical interface, and the campaign
//! algorithms, database and analyses never notice.
//!
//! Unit conventions: memory addresses are in words (like Thor), but the
//! program counter — and therefore [`goofi_core::trigger::Trigger::Breakpoint`]
//! operands — is a *byte* address, because that is RV32I's native PC unit.
//! The framework treats trigger operands as opaque target units, so nothing
//! above this crate needs to care.
//!
//! # Example
//!
//! ```
//! use goofi_core::TargetAccess;
//! use goofi_riscv::RiscvTarget;
//!
//! let mut target = RiscvTarget::default();
//! target.init_test_card().unwrap();
//! assert_eq!(target.target_name(), "rv32i");
//! assert_eq!(target.chain_layouts().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use goofi_core::campaign::WorkloadImage;
use goofi_core::preinject::StepAccess;
use goofi_core::trigger::Trigger;
use goofi_core::DetectionInfo;
use goofi_core::{GoofiError, Result, RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use riscv::{AccessLog, Cpu, CpuConfig, Image, StopReason, PORT_COUNT};
use scanchain::{BitVec, ChainLayout, TestCard, TestCardStats};
use std::sync::Arc;

/// The RV32I target system behind a scan-chain test card.
///
/// Same copy-on-write shape as `ThorTarget`: the card (CPU, memory, TAP)
/// lives behind an [`Arc`] so a snapshot is a reference-count bump, a
/// restore re-points the `Arc`, and the one deep copy is deferred to the
/// first mutation after a restore.
#[derive(Debug)]
pub struct RiscvTarget {
    card: Arc<TestCard<Cpu>>,
    /// Construction config, kept so a power cycle can rebuild the CPU
    /// from scratch.
    config: CpuConfig,
    /// The last downloaded workload, reloaded after a power cycle.
    last_image: Option<WorkloadImage>,
}

impl Default for RiscvTarget {
    fn default() -> Self {
        Self::new(CpuConfig::default())
    }
}

impl RiscvTarget {
    /// Creates a target with the given CPU configuration.
    pub fn new(config: CpuConfig) -> Self {
        RiscvTarget {
            card: Arc::new(TestCard::new(Cpu::new(config))),
            config,
            last_image: None,
        }
    }

    /// Read access to the wrapped CPU (for assertions in tests/benches).
    pub fn cpu(&self) -> &Cpu {
        self.card.target()
    }

    /// Mutable access to the wrapped CPU.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        self.card_mut().target_mut()
    }

    /// Mutable access to the card, copy-on-write: clones the shared state
    /// exactly once after a restore, then stays free until the next one.
    fn card_mut(&mut self) -> &mut TestCard<Cpu> {
        Arc::make_mut(&mut self.card)
    }

    /// Scan-traffic statistics (TCK cycles, bits shifted).
    pub fn testcard_stats(&self) -> TestCardStats {
        self.card.stats()
    }

    /// Resets the scan-traffic statistics.
    pub fn reset_testcard_stats(&mut self) {
        self.card_mut().reset_stats();
    }

    fn map_stop(&mut self, stop: StopReason) -> RunEvent {
        match stop {
            StopReason::Halted => RunEvent::Halted,
            StopReason::Detected(d) => RunEvent::Detected(DetectionInfo {
                mechanism: d.mechanism().to_string(),
                code: d.encode(),
            }),
            StopReason::DebugEvent(ev) => {
                // Unlatch so execution can continue after injection.
                self.card_mut().target_mut().debug_unit_mut().clear();
                RunEvent::Breakpoint {
                    at_instruction: ev.at_instruction,
                    at_cycle: ev.at_cycle,
                }
            }
            StopReason::Sync { iteration, .. } => RunEvent::IterationBoundary { iteration },
            StopReason::Timeout => RunEvent::Timeout,
            StopReason::InstrLimit => RunEvent::BudgetExhausted,
        }
    }
}

fn scan_err(e: scanchain::ScanError) -> GoofiError {
    GoofiError::Scan(e)
}

fn mem_err(e: riscv::MemoryError) -> GoofiError {
    GoofiError::Target(format!("memory access failed: {e}"))
}

impl TargetAccess for RiscvTarget {
    fn target_name(&self) -> &str {
        "rv32i"
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.card_mut().init().map_err(scan_err)
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        // WorkloadImage fields are in the target's native units: the entry
        // point of an RV32I image is a byte address.
        let rv_image = Image {
            words: image.words.clone(),
            code_words: image.code_words,
            entry: image.entry,
        };
        self.card_mut()
            .target_mut()
            .load_image(&rv_image)
            .map_err(mem_err)?;
        self.last_image = Some(image.clone());
        Ok(())
    }

    fn reset_target(&mut self) -> Result<()> {
        self.card_mut().target_mut().reset();
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        // No caches to keep coherent — tool-side writes land directly.
        self.card_mut()
            .target_mut()
            .memory_mut()
            .load_block(addr, data)
            .map_err(mem_err)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.card
            .target()
            .memory()
            .read_block(addr, len)
            .map_err(mem_err)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        self.card_mut()
            .target_mut()
            .memory_mut()
            .flip_bit(addr, bit)
            .map_err(mem_err)
    }

    fn memory_size(&self) -> u32 {
        self.card.target().memory().len() as u32
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        let condition = trigger
            .to_debug_condition()
            .ok_or_else(|| GoofiError::Config("pre-runtime triggers need no breakpoint".into()))?;
        self.card_mut().target_mut().debug_unit_mut().arm(condition);
        Ok(())
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.card_mut().target_mut().debug_unit_mut().disarm_all();
        Ok(())
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        let stop = self.card_mut().target_mut().run(budget.max_instructions);
        Ok(self.map_stop(stop))
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        let stop = self.card_mut().target_mut().step();
        Ok(stop.map(|s| self.map_stop(s)))
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        riscv::ChainSet::names()
            .iter()
            .filter_map(|n| self.card.target().chains().by_name(n).cloned())
            .collect()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        self.card_mut().read_chain(chain).map_err(scan_err)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        self.card_mut()
            .write_chain(chain, bits)
            .map(|_| ())
            .map_err(scan_err)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        for (port, value) in inputs.iter().enumerate().take(PORT_COUNT) {
            self.card_mut().target_mut().set_in_port(port, *value);
        }
        Ok(())
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        Ok((0..PORT_COUNT)
            .map(|p| self.card.target().out_port(p))
            .collect())
    }

    fn instructions_executed(&self) -> u64 {
        self.card.target().instructions()
    }

    fn cycles_executed(&self) -> u64 {
        self.card.target().cycles()
    }

    fn iterations_completed(&self) -> u64 {
        self.card.target().iterations()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, StepAccess)> {
        let mut log = AccessLog::default();
        let stop = self.card_mut().target_mut().step_logged(&mut log);
        let mut access = StepAccess::default();
        for r in &log.reg_reads {
            access.reads.push(format!("internal:X{}", r.index()));
        }
        for w in &log.reg_writes {
            access.writes.push(format!("internal:X{}", w.index()));
        }
        for addr in &log.mem_reads {
            access.reads.push(format!("mem:{addr}"));
        }
        for addr in &log.mem_writes {
            access.writes.push(format!("mem:{addr}"));
        }
        Ok((stop.map(|s| self.map_stop(s)), access))
    }

    /// Real cold-reset semantics: the CPU and the test card's TAP are
    /// rebuilt from scratch and the last workload image is downloaded
    /// again.
    fn power_cycle(&mut self) -> Result<()> {
        self.card = Arc::new(TestCard::new(Cpu::new(self.config)));
        self.card_mut().init().map_err(scan_err)?;
        if let Some(image) = self.last_image.clone() {
            self.load_workload(&image)?;
        }
        Ok(())
    }

    /// Native copy-on-write snapshot, same shape as the Thor port: a
    /// capture is a reference-count bump, a restore re-points the `Arc`.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Ok(TargetSnapshot::new(RiscvSnapshot {
            card: Arc::clone(&self.card),
            last_image: self.last_image.clone(),
        }))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let snap = snapshot
            .downcast_ref::<RiscvSnapshot>()
            .ok_or_else(|| GoofiError::Target("snapshot is not an rv32i capture".into()))?;
        self.card = Arc::clone(&snap.card);
        self.last_image = snap.last_image.clone();
        Ok(())
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn memory_digest(&mut self, len: usize) -> Result<u64> {
        // The digest block size matches the CoW page size so a page still
        // shared with a snapshot never has to be re-hashed.
        const _: () = assert!(riscv::PAGE_WORDS == goofi_core::logging::DIGEST_BLOCK_WORDS);
        let memory = self.card.target().memory();
        if len != memory.len() {
            return Ok(goofi_core::logging::digest_words(
                &self.read_memory(0, len)?,
            ));
        }
        let mut hash = goofi_core::logging::digest_seed(len);
        for index in 0..memory.page_count() {
            let digest = match memory.cached_page_digest(index) {
                Some(digest) => digest,
                None => {
                    let digest = goofi_core::logging::digest_block(memory.page_words(index));
                    memory.cache_page_digest(index, digest);
                    digest
                }
            };
            hash = goofi_core::logging::digest_fold(hash, digest);
        }
        Ok(hash)
    }
}

/// The opaque payload behind [`RiscvTarget::snapshot`].
#[derive(Debug, Clone)]
struct RiscvSnapshot {
    card: Arc<TestCard<Cpu>>,
    last_image: Option<WorkloadImage>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::{encode, AluImmOp, Instr, LoadWidth, Reg, StoreWidth};

    fn addi(rd: u8, rs1: u8, imm: i32) -> u32 {
        encode(Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            imm,
        })
    }

    fn ecall(code: u32, words: &mut Vec<u32>) {
        words.push(addi(17, 0, code as i32));
        words.push(encode(Instr::Ecall));
    }

    fn halting(mut words: Vec<u32>) -> Vec<u32> {
        ecall(riscv::ECALL_HALT, &mut words);
        words
    }

    fn workload(words: Vec<u32>) -> WorkloadImage {
        let code_words = words.len() as u32;
        WorkloadImage {
            name: "test".into(),
            words,
            code_words,
            entry: 0,
        }
    }

    fn ready(words: Vec<u32>) -> RiscvTarget {
        let mut t = RiscvTarget::default();
        t.init_test_card().unwrap();
        t.load_workload(&workload(words)).unwrap();
        t
    }

    #[test]
    fn run_maps_halt() {
        let mut t = ready(halting(vec![addi(1, 0, 1)]));
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
        assert_eq!(t.instructions_executed(), 3);
        assert!(t.cycles_executed() > 0);
    }

    #[test]
    fn breakpoint_maps_and_unlatches() {
        let mut t = ready(halting(vec![addi(1, 0, 1), addi(2, 0, 2), addi(3, 0, 3)]));
        // PC triggers are byte addresses on RV32I: instruction 2 is at 8.
        t.set_breakpoint(Trigger::Breakpoint(8)).unwrap();
        match t.run_workload(RunBudget::default()).unwrap() {
            RunEvent::Breakpoint { at_instruction, .. } => assert_eq!(at_instruction, 2),
            other => panic!("expected breakpoint, got {other:?}"),
        }
        t.clear_breakpoints().unwrap();
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
    }

    #[test]
    fn detection_maps_mechanism_name() {
        let mut words = vec![addi(10, 0, 5)];
        ecall(riscv::ECALL_ASSERT, &mut words);
        let mut t = ready(words);
        match t.run_workload(RunBudget::default()).unwrap() {
            RunEvent::Detected(d) => assert_eq!(d.mechanism, "assertion"),
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn sync_maps_to_iteration_boundary() {
        let mut words = vec![addi(10, 0, 0)];
        ecall(riscv::ECALL_SYNC, &mut words);
        words.push(encode(Instr::Jal {
            rd: Reg::X0,
            offset: -12,
        }));
        let mut t = ready(words);
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::IterationBoundary { iteration: 1 }
        );
        assert_eq!(t.iterations_completed(), 1);
    }

    #[test]
    fn budget_exhaustion_maps() {
        let mut t = ready(vec![encode(Instr::Jal {
            rd: Reg::X0,
            offset: 0,
        })]);
        assert_eq!(
            t.run_workload(RunBudget {
                max_instructions: 5
            })
            .unwrap(),
            RunEvent::BudgetExhausted
        );
    }

    #[test]
    fn memory_roundtrip_and_flip() {
        let mut t = ready(halting(vec![]));
        t.write_memory(100, &[0b100, 7]).unwrap();
        assert_eq!(t.read_memory(100, 2).unwrap(), vec![0b100, 7]);
        t.flip_memory_bit(100, 2).unwrap();
        assert_eq!(t.read_memory(100, 1).unwrap(), vec![0]);
        assert!(t.read_memory(t.memory_size(), 1).is_err());
    }

    #[test]
    fn scan_chain_access_through_card() {
        let mut t = ready(halting(vec![addi(4, 0, 44)]));
        t.run_workload(RunBudget::default()).unwrap();
        let layout = t
            .chain_layouts()
            .into_iter()
            .find(|l| l.name() == "internal")
            .unwrap();
        let bits = t.read_scan_chain("internal").unwrap();
        assert_eq!(layout.read_cell(&bits, "X4").unwrap(), 44);
    }

    #[test]
    fn pre_runtime_trigger_rejected_as_breakpoint() {
        let mut t = ready(halting(vec![]));
        assert!(t.set_breakpoint(Trigger::PreRuntime).is_err());
    }

    #[test]
    fn io_ports() {
        // a0 = 0; ecall IN; a1 = a0; a0 = 1; ecall OUT; halt.
        let mut words = vec![addi(10, 0, 0)];
        ecall(riscv::ECALL_IN, &mut words);
        words.push(addi(11, 10, 0));
        words.push(addi(10, 0, 1));
        ecall(riscv::ECALL_OUT, &mut words);
        let mut t = ready(halting(words));
        t.write_input_ports(&[123]).unwrap();
        t.run_workload(RunBudget::default()).unwrap();
        assert_eq!(t.read_output_ports().unwrap()[1], 123);
    }

    #[test]
    fn power_cycle_wipes_state_and_reloads_workload() {
        let mut t = ready(halting(vec![addi(1, 0, 9)]));
        t.run_workload(RunBudget::default()).unwrap();
        assert!(t.instructions_executed() > 0);
        let layout = t
            .chain_layouts()
            .into_iter()
            .find(|l| l.name() == "internal")
            .unwrap();
        let bits = t.read_scan_chain("internal").unwrap();
        assert_eq!(layout.read_cell(&bits, "X1").unwrap(), 9);
        t.power_cycle().unwrap();
        assert_eq!(t.instructions_executed(), 0);
        let bits = t.read_scan_chain("internal").unwrap();
        assert_eq!(layout.read_cell(&bits, "X1").unwrap(), 0);
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
    }

    #[test]
    fn power_cycle_without_workload_is_clean() {
        let mut t = RiscvTarget::default();
        t.init_test_card().unwrap();
        t.power_cycle().unwrap();
        assert_eq!(t.instructions_executed(), 0);
    }

    #[test]
    fn step_traced_reports_locations() {
        let mut t = ready(halting(vec![
            addi(1, 0, 3),
            encode(Instr::Store {
                width: StoreWidth::W,
                rs1: Reg::X0,
                rs2: Reg::new(1),
                offset: 240,
            }),
            encode(Instr::Load {
                width: LoadWidth::W,
                rd: Reg::new(2),
                rs1: Reg::X0,
                offset: 240,
            }),
        ]));
        let (ev, acc) = t.step_traced().unwrap();
        assert!(ev.is_none());
        assert_eq!(acc.writes, vec!["internal:X1"]);
        let (_, acc) = t.step_traced().unwrap();
        assert!(acc.writes.contains(&"mem:60".to_string()));
        assert!(acc.reads.contains(&"internal:X1".to_string()));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut t = ready(halting(vec![addi(1, 0, 7)]));
        let snap = t.snapshot().unwrap();
        t.run_workload(RunBudget::default()).unwrap();
        assert!(t.instructions_executed() > 0);
        t.restore(&snap).unwrap();
        assert_eq!(t.instructions_executed(), 0);
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
        assert_eq!(t.cpu().reg(Reg::new(1)), 7);
    }

    #[test]
    fn digest_tracks_memory_and_matches_generic_path() {
        let mut t = ready(halting(vec![addi(1, 0, 1)]));
        let len = t.memory_size() as usize;
        let fast = t.memory_digest(len).unwrap();
        let generic = goofi_core::logging::digest_words(&t.read_memory(0, len).unwrap());
        assert_eq!(fast, generic);
        t.flip_memory_bit(500, 3).unwrap();
        assert_ne!(t.memory_digest(len).unwrap(), fast);
    }
}
