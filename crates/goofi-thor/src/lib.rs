//! The GOOFI `TargetSystemInterface` for the Thor-RD-like CPU simulator.
//!
//! This crate is the Rust equivalent of the paper's target-specific class:
//! it implements every abstract building block of
//! [`goofi_core::TargetAccess`] in terms of the `thor` simulator wrapped in
//! a [`scanchain::TestCard`] — scan accesses walk the real TAP state
//! machine, breakpoints are programmed into the debug unit, memory is
//! downloaded through the test card, exactly as §3 of the paper describes
//! for the real Thor RD.
//!
//! # Example
//!
//! ```
//! use goofi_core::TargetAccess;
//! use goofi_thor::ThorTarget;
//!
//! let mut target = ThorTarget::default();
//! target.init_test_card().unwrap();
//! assert_eq!(target.target_name(), "thor-rd");
//! assert_eq!(target.chain_layouts().len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use goofi_core::campaign::WorkloadImage;
use goofi_core::preinject::StepAccess;
use goofi_core::trigger::Trigger;
use goofi_core::DetectionInfo;
use goofi_core::{GoofiError, Result, RunBudget, RunEvent, TargetAccess, TargetSnapshot};
use scanchain::{BitVec, ChainLayout, TestCard, TestCardStats};
use std::sync::Arc;
use thor::{AccessLog, Cpu, CpuConfig, StopReason, PORT_COUNT};

/// The Thor target system behind a scan-chain test card.
///
/// The card (CPU, caches, memory, TAP) lives behind an [`Arc`] so that
/// snapshots are copy-on-write: a capture is a reference-count bump, a
/// restore re-points the `Arc`, and the one deep copy is deferred to the
/// first mutation after a restore.
#[derive(Debug)]
pub struct ThorTarget {
    card: Arc<TestCard<Cpu>>,
    /// Construction config, kept so a power cycle can rebuild the CPU
    /// from scratch.
    config: CpuConfig,
    /// The last downloaded workload, reloaded after a power cycle.
    last_image: Option<WorkloadImage>,
}

impl Default for ThorTarget {
    fn default() -> Self {
        Self::new(CpuConfig::default())
    }
}

impl ThorTarget {
    /// Creates a target with the given CPU configuration.
    pub fn new(config: CpuConfig) -> Self {
        ThorTarget {
            card: Arc::new(TestCard::new(Cpu::new(config))),
            config,
            last_image: None,
        }
    }

    /// Read access to the wrapped CPU (for assertions in tests/benches).
    pub fn cpu(&self) -> &Cpu {
        self.card.target()
    }

    /// Mutable access to the wrapped CPU.
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        self.card_mut().target_mut()
    }

    /// Mutable access to the card, copy-on-write: clones the shared state
    /// exactly once after a restore, then stays free until the next one.
    fn card_mut(&mut self) -> &mut TestCard<Cpu> {
        Arc::make_mut(&mut self.card)
    }

    /// Scan-traffic statistics (TCK cycles, bits shifted) — the cost model
    /// for the logging-overhead experiment.
    pub fn testcard_stats(&self) -> TestCardStats {
        self.card.stats()
    }

    /// Resets the scan-traffic statistics.
    pub fn reset_testcard_stats(&mut self) {
        self.card_mut().reset_stats();
    }

    fn map_stop(&mut self, stop: StopReason) -> RunEvent {
        match stop {
            StopReason::Halted => RunEvent::Halted,
            StopReason::Detected(d) => RunEvent::Detected(DetectionInfo {
                mechanism: d.mechanism().to_string(),
                code: d.encode(),
            }),
            StopReason::DebugEvent(ev) => {
                // Unlatch so execution can continue after injection.
                self.card_mut().target_mut().debug_unit_mut().clear();
                RunEvent::Breakpoint {
                    at_instruction: ev.at_instruction,
                    at_cycle: ev.at_cycle,
                }
            }
            StopReason::Sync { iteration, .. } => RunEvent::IterationBoundary { iteration },
            StopReason::Timeout => RunEvent::Timeout,
            StopReason::InstrLimit => RunEvent::BudgetExhausted,
        }
    }
}

fn scan_err(e: scanchain::ScanError) -> GoofiError {
    GoofiError::Scan(e)
}

fn mem_err(e: thor::MemoryError) -> GoofiError {
    GoofiError::Target(format!("memory access failed: {e}"))
}

impl TargetAccess for ThorTarget {
    fn target_name(&self) -> &str {
        "thor-rd"
    }

    fn init_test_card(&mut self) -> Result<()> {
        self.card_mut().init().map_err(scan_err)
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> Result<()> {
        let thor_image = thor::asm::Image {
            words: image.words.clone(),
            code_words: image.code_words,
            entry: image.entry,
            labels: Default::default(),
        };
        self.card_mut()
            .target_mut()
            .load_image(&thor_image)
            .map_err(mem_err)?;
        self.last_image = Some(image.clone());
        Ok(())
    }

    fn reset_target(&mut self) -> Result<()> {
        self.card_mut().target_mut().reset();
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> Result<()> {
        let cpu = self.card_mut().target_mut();
        cpu.memory_mut().load_block(addr, data).map_err(mem_err)?;
        for offset in 0..data.len() as u32 {
            cpu.invalidate_cached(addr + offset);
        }
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> Result<Vec<u32>> {
        self.card
            .target()
            .memory()
            .read_block(addr, len)
            .map_err(mem_err)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> Result<()> {
        let cpu = self.card_mut().target_mut();
        cpu.memory_mut().flip_bit(addr, bit).map_err(mem_err)?;
        // Keep the caches coherent with the tool-side write, or the fault
        // would be masked by a stale cached copy.
        cpu.invalidate_cached(addr);
        Ok(())
    }

    fn memory_size(&self) -> u32 {
        self.card.target().memory().len() as u32
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> Result<()> {
        let condition = trigger
            .to_debug_condition()
            .ok_or_else(|| GoofiError::Config("pre-runtime triggers need no breakpoint".into()))?;
        self.card_mut().target_mut().debug_unit_mut().arm(condition);
        Ok(())
    }

    fn clear_breakpoints(&mut self) -> Result<()> {
        self.card_mut().target_mut().debug_unit_mut().disarm_all();
        Ok(())
    }

    fn run_workload(&mut self, budget: RunBudget) -> Result<RunEvent> {
        let stop = self.card_mut().target_mut().run(budget.max_instructions);
        Ok(self.map_stop(stop))
    }

    fn step_instruction(&mut self) -> Result<Option<RunEvent>> {
        let stop = self.card_mut().target_mut().step();
        Ok(stop.map(|s| self.map_stop(s)))
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        thor::ChainSet::names()
            .iter()
            .filter_map(|n| self.card.target().chains().by_name(n).cloned())
            .collect()
    }

    fn read_scan_chain(&mut self, chain: &str) -> Result<BitVec> {
        self.card_mut().read_chain(chain).map_err(scan_err)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> Result<()> {
        self.card_mut()
            .write_chain(chain, bits)
            .map(|_| ())
            .map_err(scan_err)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> Result<()> {
        for (port, value) in inputs.iter().enumerate().take(PORT_COUNT) {
            self.card_mut().target_mut().set_in_port(port, *value);
        }
        Ok(())
    }

    fn read_output_ports(&mut self) -> Result<Vec<u32>> {
        Ok((0..PORT_COUNT)
            .map(|p| self.card.target().out_port(p))
            .collect())
    }

    fn instructions_executed(&self) -> u64 {
        self.card.target().instructions()
    }

    fn cycles_executed(&self) -> u64 {
        self.card.target().cycles()
    }

    fn iterations_completed(&self) -> u64 {
        self.card.target().iterations()
    }

    fn step_traced(&mut self) -> Result<(Option<RunEvent>, StepAccess)> {
        let mut log = AccessLog::default();
        let stop = self.card_mut().target_mut().step_logged(&mut log);
        let mut access = StepAccess::default();
        for r in &log.reg_reads {
            access.reads.push(format!("internal:R{}", r.index()));
        }
        for w in &log.reg_writes {
            access.writes.push(format!("internal:R{}", w.index()));
        }
        if log.flags_read {
            access.reads.push("internal:FLAGS".to_string());
        }
        if log.flags_written {
            access.writes.push("internal:FLAGS".to_string());
        }
        for addr in &log.mem_reads {
            access.reads.push(format!("mem:{addr}"));
        }
        for addr in &log.mem_writes {
            access.writes.push(format!("mem:{addr}"));
        }
        Ok((stop.map(|s| self.map_stop(s)), access))
    }

    /// Real cold-reset semantics: the CPU (registers, caches, detection
    /// latches, debug unit) and the test card's TAP are rebuilt from
    /// scratch — state a warm [`reset_target`](TargetAccess::reset_target)
    /// cannot reach, such as a wedged EDM latch, is wiped too — and the
    /// last workload image is downloaded again.
    fn power_cycle(&mut self) -> Result<()> {
        self.card = Arc::new(TestCard::new(Cpu::new(self.config)));
        self.card_mut().init().map_err(scan_err)?;
        if let Some(image) = self.last_image.clone() {
            self.load_workload(&image)?;
        }
        Ok(())
    }

    /// Native copy-on-write snapshot: the whole device — CPU registers,
    /// caches, memory, EDM latches, debug-unit counters and the test
    /// card's TAP — is plain data behind an [`Arc`], so a capture is a
    /// reference-count bump and a restore re-points the `Arc`; the single
    /// deep copy is deferred to the first mutation afterwards. No scan
    /// traffic at all, which is the entire point: a restore replaces a
    /// workload download plus prefix re-execution.
    fn snapshot(&mut self) -> Result<TargetSnapshot> {
        Ok(TargetSnapshot::new(ThorSnapshot {
            card: Arc::clone(&self.card),
            last_image: self.last_image.clone(),
        }))
    }

    fn restore(&mut self, snapshot: &TargetSnapshot) -> Result<()> {
        let snap = snapshot
            .downcast_ref::<ThorSnapshot>()
            .ok_or_else(|| GoofiError::Target("snapshot is not a thor-rd capture".into()))?;
        self.card = Arc::clone(&snap.card);
        self.last_image = snap.last_image.clone();
        Ok(())
    }

    fn supports_snapshot(&self) -> bool {
        true
    }

    fn memory_digest(&mut self, len: usize) -> Result<u64> {
        // The digest block size is chosen to match the CoW page size so a
        // page still shared with a snapshot never has to be re-hashed.
        const _: () = assert!(thor::PAGE_WORDS == goofi_core::logging::DIGEST_BLOCK_WORDS);
        let memory = self.card.target().memory();
        if len != memory.len() {
            return Ok(goofi_core::logging::digest_words(
                &self.read_memory(0, len)?,
            ));
        }
        let mut hash = goofi_core::logging::digest_seed(len);
        for index in 0..memory.page_count() {
            let digest = match memory.cached_page_digest(index) {
                Some(digest) => digest,
                None => {
                    let digest = goofi_core::logging::digest_block(memory.page_words(index));
                    memory.cache_page_digest(index, digest);
                    digest
                }
            };
            hash = goofi_core::logging::digest_fold(hash, digest);
        }
        Ok(hash)
    }
}

/// The opaque payload behind [`ThorTarget::snapshot`].
#[derive(Debug, Clone)]
struct ThorSnapshot {
    card: Arc<TestCard<Cpu>>,
    last_image: Option<WorkloadImage>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(src: &str) -> WorkloadImage {
        let image = thor::asm::assemble(src).unwrap();
        WorkloadImage {
            name: "test".into(),
            words: image.words,
            code_words: image.code_words,
            entry: image.entry,
        }
    }

    fn ready(src: &str) -> ThorTarget {
        let mut t = ThorTarget::default();
        t.init_test_card().unwrap();
        t.load_workload(&workload(src)).unwrap();
        t
    }

    #[test]
    fn run_maps_halt() {
        let mut t = ready("ldi r1, 1\nhalt");
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
        assert_eq!(t.instructions_executed(), 2);
        assert!(t.cycles_executed() > 0);
    }

    #[test]
    fn breakpoint_maps_and_unlatches() {
        let mut t = ready("nop\nnop\nnop\nhalt");
        t.set_breakpoint(Trigger::Breakpoint(2)).unwrap();
        match t.run_workload(RunBudget::default()).unwrap() {
            RunEvent::Breakpoint { at_instruction, .. } => assert_eq!(at_instruction, 2),
            other => panic!("expected breakpoint, got {other:?}"),
        }
        t.clear_breakpoints().unwrap();
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
    }

    #[test]
    fn detection_maps_mechanism_name() {
        let mut t = ready("trap 5");
        match t.run_workload(RunBudget::default()).unwrap() {
            RunEvent::Detected(d) => assert_eq!(d.mechanism, "assertion"),
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn sync_maps_to_iteration_boundary() {
        let mut t = ready("loop: sync 0\nbr loop");
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::IterationBoundary { iteration: 1 }
        );
        assert_eq!(t.iterations_completed(), 1);
    }

    #[test]
    fn budget_exhaustion_maps() {
        let mut t = ready("loop: br loop");
        assert_eq!(
            t.run_workload(RunBudget {
                max_instructions: 5
            })
            .unwrap(),
            RunEvent::BudgetExhausted
        );
    }

    #[test]
    fn memory_roundtrip_and_flip() {
        let mut t = ready("halt");
        t.write_memory(100, &[0b100, 7]).unwrap();
        assert_eq!(t.read_memory(100, 2).unwrap(), vec![0b100, 7]);
        t.flip_memory_bit(100, 2).unwrap();
        assert_eq!(t.read_memory(100, 1).unwrap(), vec![0]);
        assert!(t.read_memory(t.memory_size(), 1).is_err());
    }

    #[test]
    fn scan_chain_access_through_card() {
        let mut t = ready("ldi r4, 44\nhalt");
        t.run_workload(RunBudget::default()).unwrap();
        let layout = t
            .chain_layouts()
            .into_iter()
            .find(|l| l.name() == "internal")
            .unwrap();
        let bits = t.read_scan_chain("internal").unwrap();
        assert_eq!(layout.read_cell(&bits, "R4").unwrap(), 44);
    }

    #[test]
    fn pre_runtime_trigger_rejected_as_breakpoint() {
        let mut t = ready("halt");
        assert!(t.set_breakpoint(Trigger::PreRuntime).is_err());
    }

    #[test]
    fn io_ports() {
        let mut t = ready("in r1, 0\nout 1, r1\nhalt");
        t.write_input_ports(&[123]).unwrap();
        t.run_workload(RunBudget::default()).unwrap();
        assert_eq!(t.read_output_ports().unwrap()[1], 123);
    }

    #[test]
    fn power_cycle_wipes_state_and_reloads_workload() {
        let mut t = ready("ldi r1, 9\nhalt");
        t.run_workload(RunBudget::default()).unwrap();
        assert!(t.instructions_executed() > 0);
        let bits = t.read_scan_chain("internal").unwrap();
        let layout = t
            .chain_layouts()
            .into_iter()
            .find(|l| l.name() == "internal")
            .unwrap();
        assert_eq!(layout.read_cell(&bits, "R1").unwrap(), 9);
        t.power_cycle().unwrap();
        // Registers and counters are wiped, not just reset.
        assert_eq!(t.instructions_executed(), 0);
        let bits = t.read_scan_chain("internal").unwrap();
        assert_eq!(layout.read_cell(&bits, "R1").unwrap(), 0);
        // The workload was reloaded: the target runs to completion again.
        assert_eq!(
            t.run_workload(RunBudget::default()).unwrap(),
            RunEvent::Halted
        );
    }

    #[test]
    fn power_cycle_without_workload_is_clean() {
        let mut t = ThorTarget::default();
        t.init_test_card().unwrap();
        t.power_cycle().unwrap();
        assert_eq!(t.instructions_executed(), 0);
    }

    #[test]
    fn step_traced_reports_locations() {
        let mut t = ready("ldi r1, 3\nst r0, r1, 60\nhalt");
        let (ev, acc) = t.step_traced().unwrap();
        assert!(ev.is_none());
        assert_eq!(acc.writes, vec!["internal:R1"]);
        let (_, acc) = t.step_traced().unwrap();
        assert!(acc.writes.contains(&"mem:60".to_string()));
        assert!(acc.reads.contains(&"internal:R1".to_string()));
    }
}
