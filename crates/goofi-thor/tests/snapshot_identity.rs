//! Property tests for the copy-on-write snapshot path: a snapshot taken at
//! any point of a run is a faithful capture — every mutation applied
//! afterwards (more execution, memory writes, bit flips, scan-chain
//! updates) is fully undone by `restore` — and the page-memoized
//! `memory_digest` always agrees with a flat digest of the same image.

use goofi_core::campaign::WorkloadImage;
use goofi_core::logging::digest_words;
use goofi_core::{RunBudget, TargetAccess};
use goofi_thor::ThorTarget;
use proptest::prelude::*;

fn workload_image(name: &str) -> WorkloadImage {
    let wl = workloads::by_name(name).expect("workload exists");
    WorkloadImage {
        name: wl.name,
        words: wl.image.words,
        code_words: wl.image.code_words,
        entry: wl.image.entry,
    }
}

fn ready(name: &str) -> ThorTarget {
    let mut target = ThorTarget::default();
    target.init_test_card().unwrap();
    target.load_workload(&workload_image(name)).unwrap();
    target
}

/// One observable mutation of the target between snapshot and restore.
#[derive(Debug, Clone)]
enum Mutation {
    Run(u16),
    WriteMemory(u16, u32),
    FlipMemoryBit(u16, u8),
    FlipChainBit(u8, u16),
    WriteInputPort(u32),
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (1u16..200).prop_map(Mutation::Run),
        (any::<u16>(), any::<u32>()).prop_map(|(a, v)| Mutation::WriteMemory(a, v)),
        (any::<u16>(), 0u8..32).prop_map(|(a, b)| Mutation::FlipMemoryBit(a, b)),
        (any::<u8>(), any::<u16>()).prop_map(|(c, b)| Mutation::FlipChainBit(c, b)),
        any::<u32>().prop_map(Mutation::WriteInputPort),
    ]
}

fn apply(target: &mut ThorTarget, mutation: &Mutation) {
    match *mutation {
        Mutation::Run(steps) => {
            let _ = target.run_workload(RunBudget {
                max_instructions: u64::from(steps),
            });
        }
        Mutation::WriteMemory(addr, value) => {
            let addr = u32::from(addr) % target.memory_size();
            target.write_memory(addr, &[value]).unwrap();
        }
        Mutation::FlipMemoryBit(addr, bit) => {
            let addr = u32::from(addr) % target.memory_size();
            target.flip_memory_bit(addr, bit).unwrap();
        }
        Mutation::FlipChainBit(chain, bit) => {
            let layouts = target.chain_layouts();
            let layout = &layouts[chain as usize % layouts.len()];
            let name = layout.name().to_string();
            let mut bits = target.read_scan_chain(&name).unwrap();
            let idx = bit as usize % bits.len();
            bits.flip(idx);
            // Read-only cells silently keep their value; the write itself
            // must still succeed and be undone by restore.
            target.write_scan_chain(&name, &bits).unwrap();
        }
        Mutation::WriteInputPort(value) => {
            target.write_input_ports(&[value]).unwrap();
        }
    }
}

/// Everything an experiment can observe about the target.
fn observe(target: &mut ThorTarget) -> (Vec<u32>, Vec<(String, String)>, u64, u64, u64, Vec<u32>) {
    let memory = target
        .read_memory(0, target.memory_size() as usize)
        .unwrap();
    let mut chains = Vec::new();
    for layout in target.chain_layouts() {
        let name = layout.name().to_string();
        let bits = target.read_scan_chain(&name).unwrap();
        chains.push((name, bits.to_bit_string()));
    }
    (
        memory,
        chains,
        target.instructions_executed(),
        target.cycles_executed(),
        target.iterations_completed(),
        target.read_output_ports().unwrap(),
    )
}

proptest! {
    fn snapshot_mutate_restore_is_identity(
        workload in prop_oneof![Just("bubblesort"), Just("crc32"), Just("fibonacci")],
        prefix in 0u64..400,
        mutations in proptest::collection::vec(mutation(), 1..8),
    ) {
        let mut target = ready(workload);
        if prefix > 0 {
            let _ = target.run_workload(RunBudget { max_instructions: prefix }).unwrap();
        }
        let before = observe(&mut target);
        let snap = target.snapshot().unwrap();

        for m in &mutations {
            apply(&mut target, m);
        }

        target.restore(&snap).unwrap();
        let after = observe(&mut target);
        prop_assert_eq!(before, after);

        // A restored target is live, not a frozen copy: it can keep
        // executing from the captured point.
        let _ = target.run_workload(RunBudget { max_instructions: 10 }).unwrap();
    }

    fn memoized_memory_digest_matches_flat_digest(
        workload in prop_oneof![Just("bubblesort"), Just("crc32")],
        prefix in 0u64..400,
        mutations in proptest::collection::vec(mutation(), 0..8),
    ) {
        let mut target = ready(workload);
        if prefix > 0 {
            let _ = target.run_workload(RunBudget { max_instructions: prefix }).unwrap();
        }
        let len = target.memory_size() as usize;
        // Prime the per-page digest cache, then mutate: stale cache
        // entries must be invalidated by every mutation path.
        prop_assert_eq!(
            target.memory_digest(len).unwrap(),
            digest_words(&target.read_memory(0, len).unwrap())
        );
        let snap = target.snapshot().unwrap();
        for m in &mutations {
            apply(&mut target, m);
            prop_assert_eq!(
                target.memory_digest(len).unwrap(),
                digest_words(&target.read_memory(0, len).unwrap())
            );
        }
        // The digest survives a restore, including its cached pages.
        target.restore(&snap).unwrap();
        prop_assert_eq!(
            target.memory_digest(len).unwrap(),
            digest_words(&target.read_memory(0, len).unwrap())
        );
    }
}
