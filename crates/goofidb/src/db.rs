//! The database: a set of tables with enforced referential integrity.

use crate::schema::TableSchema;
use crate::table::{Row, Table};
use crate::value::Value;
use crate::DbError;
use std::collections::BTreeMap;
use std::fmt;

/// The result of a `SELECT`: output column names and rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl QueryResult {
    /// Value at (`row`, named column).
    pub fn get(&self, row: usize, column: &str) -> Option<&Value> {
        let idx = self.columns.iter().position(|c| c == column)?;
        self.rows.get(row)?.get(idx)
    }

    /// First row's first value — convenient for aggregates.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first()?.first()
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for QueryResult {
    /// Renders the result as an ASCII table (the GOOFI analysis reports).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "+")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "|")?;
        for (c, w) in self.columns.iter().zip(&widths) {
            write!(f, " {c:<w$} |")?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &rendered {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |")?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// An in-memory relational database.
///
/// See the crate docs for an example.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table from a schema.
    ///
    /// # Errors
    ///
    /// Fails if the table exists, or a foreign key references a missing
    /// table/non-primary-key column.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), DbError> {
        if self.tables.contains_key(&schema.name) {
            return Err(DbError::TableExists(schema.name));
        }
        for fk in &schema.foreign_keys {
            let target = self
                .tables
                .get(&fk.ref_table)
                .ok_or_else(|| DbError::NoSuchTable(fk.ref_table.clone()))?;
            let pk = target.schema().primary_key_index();
            let ok = pk
                .map(|i| target.schema().columns[i].name == fk.ref_column)
                .unwrap_or(false);
            if !ok {
                return Err(DbError::Execution(format!(
                    "foreign key {fk} must reference the primary key of `{}`",
                    fk.ref_table
                )));
            }
        }
        self.tables.insert(schema.name.clone(), Table::new(schema));
        Ok(())
    }

    /// Drops a table.
    ///
    /// # Errors
    ///
    /// Fails if other tables hold foreign keys into it, or it is missing.
    pub fn drop_table(&mut self, name: &str) -> Result<(), DbError> {
        if !self.tables.contains_key(name) {
            return Err(DbError::NoSuchTable(name.to_string()));
        }
        for t in self.tables.values() {
            for fk in &t.schema().foreign_keys {
                if fk.ref_table == name && t.schema().name != name {
                    return Err(DbError::Execution(format!(
                        "cannot drop `{name}`: referenced by `{}` ({fk})",
                        t.schema().name
                    )));
                }
            }
        }
        self.tables.remove(name);
        Ok(())
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Read access to a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Inserts a row, enforcing foreign keys.
    ///
    /// # Errors
    ///
    /// Fails on schema violations (see [`Table::insert`]) or when a non-NULL
    /// foreign-key value has no referent.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<(), DbError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        let fks: Vec<_> = t.schema().foreign_keys.clone();
        for fk in &fks {
            let idx = t
                .schema()
                .column_index(&fk.column)
                .ok_or_else(|| DbError::NoSuchColumn(fk.column.clone()))?;
            let v = row.get(idx).cloned().unwrap_or(Value::Null);
            if v.is_null() {
                continue; // NULL foreign keys are permitted.
            }
            let target = self
                .tables
                .get(&fk.ref_table)
                .ok_or_else(|| DbError::NoSuchTable(fk.ref_table.clone()))?;
            if !target.contains_key(&v) {
                return Err(DbError::ForeignKeyViolation {
                    constraint: format!("{}.{fk}", table),
                    key: v.to_string(),
                });
            }
        }
        self.table_mut(table)?.insert(row)
    }

    /// Deletes rows matching `pred`, enforcing RESTRICT semantics: a row
    /// whose primary key is referenced from another table cannot go.
    ///
    /// # Errors
    ///
    /// Fails when a victim row is still referenced; nothing is deleted then.
    pub fn delete_where(
        &mut self,
        table: &str,
        pred: impl Fn(&Row) -> bool,
    ) -> Result<usize, DbError> {
        let t = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?;
        // The predicate is evaluated exactly once per row, in table order,
        // so stateful predicates (e.g. precomputed masks) work.
        let mask: Vec<bool> = t.iter().map(&pred).collect();
        if let Some(pk) = t.schema().primary_key_index() {
            let victims: Vec<Value> = t
                .iter()
                .zip(&mask)
                .filter(|(_, &m)| m)
                .map(|(r, _)| r[pk].clone())
                .collect();
            for (other_name, other) in &self.tables {
                for fk in &other.schema().foreign_keys {
                    if fk.ref_table != table {
                        continue;
                    }
                    let col = other
                        .schema()
                        .column_index(&fk.column)
                        .ok_or_else(|| DbError::NoSuchColumn(fk.column.clone()))?;
                    for key in &victims {
                        if other.iter().any(|r| r[col] == *key) {
                            return Err(DbError::ForeignKeyViolation {
                                constraint: format!("{other_name}.{fk}"),
                                key: key.to_string(),
                            });
                        }
                    }
                }
            }
        }
        let mut i = 0;
        Ok(self.table_mut(table)?.delete_where(|_| {
            let m = mask.get(i).copied().unwrap_or(false);
            i += 1;
            m
        }))
    }

    /// Applies `update` to rows matching `pred`, then re-checks every
    /// invariant (types, primary keys, all foreign keys); on violation the
    /// table is restored and the error returned.
    ///
    /// # Errors
    ///
    /// Fails when the update breaks any integrity constraint.
    pub fn update_where(
        &mut self,
        table: &str,
        pred: impl Fn(&Row) -> bool,
        update: impl FnMut(&mut Row),
    ) -> Result<usize, DbError> {
        let backup = self
            .tables
            .get(table)
            .ok_or_else(|| DbError::NoSuchTable(table.to_string()))?
            .clone();
        let changed = self.table_mut(table)?.update_where(|r| pred(r), update);
        if changed > 0 {
            if let Err(e) = self.check_integrity() {
                *self.table_mut(table)? = backup;
                return Err(e);
            }
        }
        Ok(changed)
    }

    /// Full integrity check: per-table invariants plus all foreign keys.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_integrity(&self) -> Result<(), DbError> {
        for (name, t) in &self.tables {
            t.revalidate()?;
            for fk in &t.schema().foreign_keys {
                let col = t
                    .schema()
                    .column_index(&fk.column)
                    .ok_or_else(|| DbError::NoSuchColumn(fk.column.clone()))?;
                let target = self
                    .tables
                    .get(&fk.ref_table)
                    .ok_or_else(|| DbError::NoSuchTable(fk.ref_table.clone()))?;
                for row in t.iter() {
                    let v = &row[col];
                    if !v.is_null() && !target.contains_key(v) {
                        return Err(DbError::ForeignKeyViolation {
                            constraint: format!("{name}.{fk}"),
                            key: v.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes a SQL statement (`CREATE TABLE`, `INSERT`, `UPDATE`,
    /// `DELETE`, `DROP TABLE`); returns the number of affected rows.
    ///
    /// # Errors
    ///
    /// Parse errors, schema violations and integrity violations.
    pub fn execute(&mut self, sql: &str) -> Result<usize, DbError> {
        crate::sql::execute(self, sql)
    }

    /// Runs a `SELECT` query.
    ///
    /// # Errors
    ///
    /// Parse errors and unknown tables/columns.
    pub fn query(&self, sql: &str) -> Result<QueryResult, DbError> {
        crate::sql::query(self, sql)
    }

    /// Serialises the whole database to the text persistence format.
    pub fn save_to_string(&self) -> String {
        crate::persist::save(self)
    }

    /// Restores a database from [`Database::save_to_string`] output.
    ///
    /// # Errors
    ///
    /// Fails on malformed input, integrity violations in the data, or a
    /// table whose `CHECK` checksum footer disagrees with its rows
    /// ([`DbError::Corrupt`]).
    pub fn load_from_string(text: &str) -> Result<Database, DbError> {
        crate::persist::load(text)
    }

    /// Best-effort restore from damaged [`Database::save_to_string`]
    /// output: decodable tables and rows are kept; every skipped piece is
    /// reported as a [`crate::PersistIssue`]. An empty issue list means
    /// the file was pristine.
    pub fn load_from_string_lenient(text: &str) -> (Database, Vec<crate::PersistIssue>) {
        crate::persist::load_lenient(text)
    }

    /// Atomically writes the database to `path`.
    ///
    /// The serialised text is first written to a sibling `<path>.tmp` file,
    /// flushed to stable storage with `fsync`, and then renamed over `path`.
    /// A crash at any point leaves either the old file or the new file — never
    /// a torn, half-written database. The containing directory is synced
    /// best-effort so the rename itself is durable.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when any filesystem step fails; the temporary
    /// file is removed on a failed rename.
    pub fn save_to_path(&self, path: impl AsRef<std::path::Path>) -> Result<(), DbError> {
        use std::io::Write;

        let path = path.as_ref();
        let io_err = |stage: &str, e: std::io::Error| {
            DbError::Io(format!("{stage} {}: {e}", path.display()))
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        let write_result = (|| {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.save_to_string().as_bytes())?;
            file.sync_all()
        })();
        if let Err(e) = write_result {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err("writing", e));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io_err("renaming temporary file over", e));
        }
        // Make the rename durable; not all filesystems support opening a
        // directory for sync, so failure here is not fatal.
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            if let Ok(d) = std::fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reads a database previously written with [`Database::save_to_path`].
    ///
    /// # Errors
    ///
    /// Returns [`DbError::Io`] when the file cannot be read, or any
    /// [`Database::load_from_string`] error on malformed content.
    pub fn load_from_path(path: impl AsRef<std::path::Path>) -> Result<Database, DbError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| DbError::Io(format!("reading {}: {e}", path.display())))?;
        Database::load_from_string(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType, ForeignKey};

    fn two_table_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "targets",
                vec![
                    ColumnDef::primary("name", ColumnType::Text),
                    ColumnDef::new("chains", ColumnType::Integer),
                ],
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "campaigns",
                vec![
                    ColumnDef::primary("id", ColumnType::Integer),
                    ColumnDef::new("target", ColumnType::Text),
                ],
                vec![ForeignKey {
                    column: "target".into(),
                    ref_table: "targets".into(),
                    ref_column: "name".into(),
                }],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn fk_enforced_on_insert() {
        let mut db = two_table_db();
        let e = db
            .insert("campaigns", vec![Value::Int(1), Value::text("thor")])
            .unwrap_err();
        assert!(matches!(e, DbError::ForeignKeyViolation { .. }));
        db.insert("targets", vec![Value::text("thor"), Value::Int(5)])
            .unwrap();
        db.insert("campaigns", vec![Value::Int(1), Value::text("thor")])
            .unwrap();
    }

    #[test]
    fn null_fk_allowed() {
        let mut db = two_table_db();
        db.insert("campaigns", vec![Value::Int(1), Value::Null])
            .unwrap();
    }

    #[test]
    fn delete_restricted_when_referenced() {
        let mut db = two_table_db();
        db.insert("targets", vec![Value::text("thor"), Value::Int(5)])
            .unwrap();
        db.insert("campaigns", vec![Value::Int(1), Value::text("thor")])
            .unwrap();
        let e = db
            .delete_where("targets", |r| r[0] == Value::text("thor"))
            .unwrap_err();
        assert!(matches!(e, DbError::ForeignKeyViolation { .. }));
        // Remove the referent first, then the target row can go.
        db.delete_where("campaigns", |_| true).unwrap();
        assert_eq!(
            db.delete_where("targets", |r| r[0] == Value::text("thor"))
                .unwrap(),
            1
        );
    }

    #[test]
    fn fk_must_reference_primary_key() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "a",
                vec![
                    ColumnDef::primary("id", ColumnType::Integer),
                    ColumnDef::new("other", ColumnType::Integer),
                ],
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        let e = db
            .create_table(
                TableSchema::new(
                    "b",
                    vec![ColumnDef::new("aref", ColumnType::Integer)],
                    vec![ForeignKey {
                        column: "aref".into(),
                        ref_table: "a".into(),
                        ref_column: "other".into(),
                    }],
                )
                .unwrap(),
            )
            .unwrap_err();
        assert!(matches!(e, DbError::Execution(_)));
    }

    #[test]
    fn update_that_breaks_fk_rolls_back() {
        let mut db = two_table_db();
        db.insert("targets", vec![Value::text("thor"), Value::Int(5)])
            .unwrap();
        db.insert("campaigns", vec![Value::Int(1), Value::text("thor")])
            .unwrap();
        let e = db
            .update_where("campaigns", |_| true, |r| r[1] = Value::text("missing"))
            .unwrap_err();
        assert!(matches!(e, DbError::ForeignKeyViolation { .. }));
        // Rolled back.
        assert_eq!(
            db.table("campaigns").unwrap().iter().next().unwrap()[1],
            Value::text("thor")
        );
    }

    #[test]
    fn drop_table_restricted() {
        let mut db = two_table_db();
        let e = db.drop_table("targets").unwrap_err();
        assert!(matches!(e, DbError::Execution(_)));
        db.drop_table("campaigns").unwrap();
        db.drop_table("targets").unwrap();
        assert!(db.table_names().is_empty());
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("goofidb-dbtest-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn save_to_path_roundtrips() {
        let mut db = two_table_db();
        db.insert("targets", vec![Value::text("thor"), Value::Int(5)])
            .unwrap();
        let path = temp_path("roundtrip.gdb");
        db.save_to_path(&path).unwrap();
        let loaded = Database::load_from_path(&path).unwrap();
        assert_eq!(loaded.save_to_string(), db.save_to_string());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_to_path_leaves_no_temporary_file() {
        let db = two_table_db();
        let path = temp_path("clean.gdb");
        db.save_to_path(&path).unwrap();
        // Overwrite an existing file too — still atomic, still no leftovers.
        db.save_to_path(&path).unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn save_to_path_reports_io_errors() {
        let db = Database::new();
        let mut dir = temp_path("no-such-dir");
        dir.push("db.gdb");
        let e = db.save_to_path(&dir).unwrap_err();
        assert!(matches!(e, DbError::Io(_)));
        let e = Database::load_from_path(&dir).unwrap_err();
        assert!(matches!(e, DbError::Io(_)));
    }

    #[test]
    fn query_result_display_is_table_shaped() {
        let r = QueryResult {
            columns: vec!["outcome".into(), "n".into()],
            rows: vec![
                vec![Value::text("detected"), Value::Int(42)],
                vec![Value::text("latent"), Value::Int(7)],
            ],
        };
        let s = r.to_string();
        assert!(s.contains("| outcome  | n  |"));
        assert!(s.contains("| detected | 42 |"));
        assert_eq!(r.get(1, "n"), Some(&Value::Int(7)));
        assert_eq!(r.get(1, "nope"), None);
    }
}
