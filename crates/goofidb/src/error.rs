//! Database error type.

use std::error::Error;
use std::fmt;

/// Errors reported by database operations and SQL execution.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Referenced table does not exist.
    NoSuchTable(String),
    /// Referenced column does not exist.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A row with the same primary key already exists.
    DuplicateKey {
        /// Table holding the conflict.
        table: String,
        /// Display form of the conflicting key.
        key: String,
    },
    /// Primary-key column received NULL or a REAL value.
    BadPrimaryKey {
        /// Table being inserted into.
        table: String,
        /// Explanation.
        reason: String,
    },
    /// A foreign-key constraint failed.
    ForeignKeyViolation {
        /// Constraint description, e.g. `campaign.testCardName -> targets.name`.
        constraint: String,
        /// Display form of the missing/blocking key.
        key: String,
    },
    /// A value's type does not match its column type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Expected SQL type.
        expected: &'static str,
        /// Actual SQL type supplied.
        got: &'static str,
    },
    /// Wrong number of values for the column list.
    ArityMismatch {
        /// Columns expected.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// SQL text failed to parse.
    Parse(String),
    /// Any other execution failure.
    Execution(String),
    /// A filesystem operation failed while loading or saving a database.
    ///
    /// Carries the rendered [`std::io::Error`] (which is neither `Clone` nor
    /// `PartialEq`) together with the path involved.
    Io(String),
    /// A persisted table's rows do not match its `CHECK` checksum footer —
    /// on-disk corruption (bit rot, torn write), not a semantic error.
    Corrupt {
        /// Table whose checksum failed.
        table: String,
        /// What disagreed.
        detail: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table `{t}`"),
            DbError::NoSuchColumn(c) => write!(f, "no such column `{c}`"),
            DbError::TableExists(t) => write!(f, "table `{t}` already exists"),
            DbError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            DbError::BadPrimaryKey { table, reason } => {
                write!(f, "bad primary key for table `{table}`: {reason}")
            }
            DbError::ForeignKeyViolation { constraint, key } => {
                write!(f, "foreign key violation ({constraint}) for key {key}")
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(f, "column `{column}` expects {expected}, got {got}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} values, got {got}")
            }
            DbError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            DbError::Execution(msg) => write!(f, "execution error: {msg}"),
            DbError::Io(msg) => write!(f, "I/O error: {msg}"),
            DbError::Corrupt { table, detail } => {
                write!(f, "table `{table}` is corrupt: {detail}")
            }
        }
    }
}

impl Error for DbError {}
