//! An embedded, SQL-compatible relational database.
//!
//! GOOFI stores everything — target-system descriptions, campaign
//! configurations and per-experiment logs — in "a SQL compatible database"
//! (paper §1), with foreign keys between the `TargetSystemData`,
//! `CampaignData` and `LoggedSystemState` tables (Figure 4) so that "we
//! prevent inconsistencies in the database … while still being able to track
//! all information about the campaign and the target system" (§2.3). The
//! analysis phase is then performed by "tailor made scripts or programs that
//! query the database" (§3.4).
//!
//! This crate is the from-scratch substitute for the commercial database the
//! paper used: an in-memory relational engine with
//!
//! * typed columns ([`ColumnType`]: `INTEGER`, `REAL`, `TEXT`),
//! * primary keys with index-backed uniqueness,
//! * foreign keys with referential-integrity enforcement on insert and
//!   delete,
//! * a SQL dialect covering `CREATE TABLE`, `INSERT`, `SELECT` (with
//!   `JOIN … ON`, `WHERE`, `GROUP BY`, aggregates, `ORDER BY`, `LIMIT`),
//!   `UPDATE` and `DELETE`,
//! * text-file persistence ([`Database::save_to_string`] /
//!   [`Database::load_from_string`]).
//!
//! # Example
//!
//! ```
//! use goofidb::{Database, Value};
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)").unwrap();
//! db.execute("INSERT INTO t (id, name) VALUES (1, 'thor')").unwrap();
//! let result = db.query("SELECT name FROM t WHERE id = 1").unwrap();
//! assert_eq!(result.rows[0][0], Value::Text("thor".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod error;
mod persist;
mod schema;
pub mod sql;
mod table;
mod value;

pub use db::{Database, QueryResult};
pub use error::DbError;
pub use persist::{IssueKind, PersistIssue};
pub use schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
pub use table::{Row, Table};
pub use value::Value;
