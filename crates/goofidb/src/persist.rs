//! Text persistence: a line-oriented dump/load format.
//!
//! The paper keeps all campaign data "in a portable SQL-database"; this
//! module provides the portability half — a database can be saved to a text
//! file next to the experiment results and reloaded for later analysis.
//! Tables are emitted in foreign-key dependency order so a load replays
//! cleanly through the integrity checks.

use crate::schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use crate::{Database, DbError};

/// Serialises a database.
pub(crate) fn save(db: &Database) -> String {
    let mut out = String::from("#goofidb v1\n");
    for name in topo_order(db) {
        // `topo_order` only yields names from `db.table_names()`, but stay
        // panic-free regardless: a missing table is simply skipped.
        let Some(table) = db.table(&name) else {
            continue;
        };
        out.push_str(&format!("TABLE {name}\n"));
        for c in &table.schema().columns {
            out.push_str(&format!(
                "COLUMN {} {}{}\n",
                c.name,
                c.ty.keyword(),
                if c.primary_key { " PK" } else { "" }
            ));
        }
        for fk in &table.schema().foreign_keys {
            out.push_str(&format!(
                "FK {} {} {}\n",
                fk.column, fk.ref_table, fk.ref_column
            ));
        }
        for row in table.iter() {
            out.push_str("ROW");
            for v in row {
                out.push('\t');
                out.push_str(&encode_value(v));
            }
            out.push('\n');
        }
        out.push_str("END\n");
    }
    out
}

/// Restores a database from [`save`] output.
pub(crate) fn load(text: &str) -> Result<Database, DbError> {
    let mut db = Database::new();
    let mut lines = text.lines().peekable();
    match lines.next() {
        Some(header) if header.starts_with("#goofidb") => {}
        other => {
            return Err(DbError::Execution(format!(
                "bad persistence header: {other:?}"
            )))
        }
    }
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("TABLE ")
            .ok_or_else(|| DbError::Execution(format!("expected TABLE, got `{line}`")))?
            .to_string();
        let mut columns = Vec::new();
        let mut fks = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        loop {
            let line = lines
                .next()
                .ok_or_else(|| DbError::Execution("unterminated TABLE block".into()))?;
            if line == "END" {
                break;
            }
            if let Some(rest) = line.strip_prefix("COLUMN ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 2 {
                    return Err(DbError::Execution(format!("bad COLUMN line `{line}`")));
                }
                let ty = ColumnType::parse(parts[1])
                    .ok_or_else(|| DbError::Execution(format!("bad type `{}`", parts[1])))?;
                columns.push(ColumnDef {
                    name: parts[0].to_string(),
                    ty,
                    primary_key: parts.get(2) == Some(&"PK"),
                });
            } else if let Some(rest) = line.strip_prefix("FK ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(DbError::Execution(format!("bad FK line `{line}`")));
                }
                fks.push(ForeignKey {
                    column: parts[0].to_string(),
                    ref_table: parts[1].to_string(),
                    ref_column: parts[2].to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("ROW") {
                let mut row = Vec::new();
                for field in rest.split('\t').skip(1) {
                    row.push(decode_value(field)?);
                }
                rows.push(row);
            } else {
                return Err(DbError::Execution(format!("bad line `{line}`")));
            }
        }
        db.create_table(TableSchema::new(name.clone(), columns, fks)?)?;
        for row in rows {
            db.insert(&name, row)?;
        }
    }
    Ok(db)
}

/// Orders tables so every table appears after the tables it references.
fn topo_order(db: &Database) -> Vec<String> {
    let names = db.table_names();
    let mut out: Vec<String> = Vec::new();
    let mut remaining = names;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|name| {
            let deps_done = db
                .table(name)
                .map(|t| {
                    t.schema()
                        .foreign_keys
                        .iter()
                        .all(|fk| fk.ref_table == *name || out.contains(&fk.ref_table))
                })
                .unwrap_or(true);
            if deps_done {
                out.push(name.clone());
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            // FK cycle: emit the rest in name order (load will fail loudly).
            out.append(&mut remaining);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        // Bit-exact float round trip.
        Value::Real(r) => format!("R:{}", r.to_bits()),
        Value::Text(s) => format!("T:{}", escape(s)),
    }
}

fn decode_value(field: &str) -> Result<Value, DbError> {
    if field == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = field
        .split_once(':')
        .ok_or_else(|| DbError::Execution(format!("bad value field `{field}`")))?;
    match tag {
        "I" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::Execution(format!("bad integer `{body}`"))),
        "R" => body
            .parse::<u64>()
            .map(|bits| Value::Real(f64::from_bits(bits)))
            .map_err(|_| DbError::Execution(format!("bad real `{body}`"))),
        "T" => Ok(Value::Text(unescape(body)?)),
        _ => Err(DbError::Execution(format!("bad value tag `{tag}`"))),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, DbError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(DbError::Execution(format!(
                    "bad escape `\\{}`",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    #[test]
    fn roundtrip_with_fk_and_special_chars() {
        let mut db = Database::new();
        db.execute("CREATE TABLE targets (name TEXT PRIMARY KEY, chains INTEGER)")
            .unwrap();
        db.execute(
            "CREATE TABLE campaigns (id INTEGER PRIMARY KEY, target TEXT, score REAL,
             FOREIGN KEY (target) REFERENCES targets(name))",
        )
        .unwrap();
        db.execute("INSERT INTO targets (name, chains) VALUES ('thor', 5)")
            .unwrap();
        db.insert(
            "campaigns",
            vec![
                Value::Int(1),
                Value::text("thor"),
                Value::Real(0.1 + 0.2), // non-representable decimal
            ],
        )
        .unwrap();
        db.insert("campaigns", vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        // Text with tabs/newlines/backslashes survives.
        db.execute("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
            .unwrap();
        db.insert("notes", vec![Value::Int(1), Value::text("a\tb\nc\\d")])
            .unwrap();

        let text = db.save_to_string();
        let restored = Database::load_from_string(&text).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
        assert_eq!(
            restored.table("campaigns").unwrap().len(),
            db.table("campaigns").unwrap().len()
        );
        assert_eq!(
            restored
                .table("campaigns")
                .unwrap()
                .find_by_key(&Value::Int(1))
                .unwrap()[2],
            Value::Real(0.1 + 0.2)
        );
        assert_eq!(
            restored
                .table("notes")
                .unwrap()
                .find_by_key(&Value::Int(1))
                .unwrap()[1],
            Value::text("a\tb\nc\\d")
        );
        restored.check_integrity().unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Database::load_from_string("nope").is_err());
        assert!(Database::load_from_string("#goofidb v1\nGARBAGE x\n").is_err());
        assert!(Database::load_from_string("#goofidb v1\nTABLE t\nCOLUMN a INTEGER\n").is_err());
    }

    #[test]
    fn topo_order_puts_referenced_tables_first() {
        let mut db = Database::new();
        // Alphabetically `aaa` sorts before `zzz`, but `aaa` references it.
        db.create_table(
            TableSchema::new(
                "zzz",
                vec![ColumnDef::primary("id", ColumnType::Integer)],
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "aaa",
                vec![ColumnDef::new("zref", ColumnType::Integer)],
                vec![ForeignKey {
                    column: "zref".into(),
                    ref_table: "zzz".into(),
                    ref_column: "id".into(),
                }],
            )
            .unwrap(),
        )
        .unwrap();
        let order = topo_order(&db);
        let zi = order.iter().position(|n| n == "zzz").unwrap();
        let ai = order.iter().position(|n| n == "aaa").unwrap();
        assert!(zi < ai);
        // And the save/load roundtrip works despite the name order.
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
    }
}
