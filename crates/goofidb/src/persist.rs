//! Text persistence: a line-oriented dump/load format.
//!
//! The paper keeps all campaign data "in a portable SQL-database"; this
//! module provides the portability half — a database can be saved to a text
//! file next to the experiment results and reloaded for later analysis.
//! Tables are emitted in foreign-key dependency order so a load replays
//! cleanly through the integrity checks.
//!
//! Each table block ends with a `CHECK <fnv32>` footer over its ROW lines:
//! the strict [`load`] verifies it (detecting bit rot and torn rewrites)
//! and [`load_lenient`] salvages around damage row by row, reporting every
//! skipped piece as a [`PersistIssue`] so `goofi fsck` can classify and
//! quarantine rather than silently drop data. Files written before the
//! footer existed (no CHECK line) still load.

use crate::schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use crate::{Database, DbError};

/// Serialises a database.
pub(crate) fn save(db: &Database) -> String {
    let mut out = String::from("#goofidb v1\n");
    for name in topo_order(db) {
        // `topo_order` only yields names from `db.table_names()`, but stay
        // panic-free regardless: a missing table is simply skipped.
        let Some(table) = db.table(&name) else {
            continue;
        };
        out.push_str(&format!("TABLE {name}\n"));
        for c in &table.schema().columns {
            out.push_str(&format!(
                "COLUMN {} {}{}\n",
                c.name,
                c.ty.keyword(),
                if c.primary_key { " PK" } else { "" }
            ));
        }
        for fk in &table.schema().foreign_keys {
            out.push_str(&format!(
                "FK {} {} {}\n",
                fk.column, fk.ref_table, fk.ref_column
            ));
        }
        let mut rows = String::new();
        for row in table.iter() {
            rows.push_str("ROW");
            for v in row {
                rows.push('\t');
                rows.push_str(&encode_value(v));
            }
            rows.push('\n');
        }
        out.push_str(&rows);
        out.push_str(&format!("CHECK {:08x}\n", fnv1a(rows.as_bytes())));
        out.push_str("END\n");
    }
    out
}

/// Restores a database from [`save`] output.
pub(crate) fn load(text: &str) -> Result<Database, DbError> {
    let mut db = Database::new();
    let mut lines = text.lines().peekable();
    match lines.next() {
        Some(header) if header.starts_with("#goofidb") => {}
        other => {
            return Err(DbError::Execution(format!(
                "bad persistence header: {other:?}"
            )))
        }
    }
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let name = line
            .strip_prefix("TABLE ")
            .ok_or_else(|| DbError::Execution(format!("expected TABLE, got `{line}`")))?
            .to_string();
        let mut columns = Vec::new();
        let mut fks = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut row_bytes = String::new();
        loop {
            let line = lines
                .next()
                .ok_or_else(|| DbError::Execution("unterminated TABLE block".into()))?;
            if line == "END" {
                break;
            }
            if let Some(sum) = line.strip_prefix("CHECK ") {
                // Checksum footer over the ROW lines (absent in files
                // written before it existed).
                let want = u32::from_str_radix(sum.trim(), 16)
                    .map_err(|_| DbError::Execution(format!("bad CHECK line `{line}`")))?;
                let got = fnv1a(row_bytes.as_bytes());
                if want != got {
                    return Err(DbError::Corrupt {
                        table: name.clone(),
                        detail: format!("row checksum {got:08x} != recorded {want:08x}"),
                    });
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix("COLUMN ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() < 2 {
                    return Err(DbError::Execution(format!("bad COLUMN line `{line}`")));
                }
                let ty = ColumnType::parse(parts[1])
                    .ok_or_else(|| DbError::Execution(format!("bad type `{}`", parts[1])))?;
                columns.push(ColumnDef {
                    name: parts[0].to_string(),
                    ty,
                    primary_key: parts.get(2) == Some(&"PK"),
                });
            } else if let Some(rest) = line.strip_prefix("FK ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(DbError::Execution(format!("bad FK line `{line}`")));
                }
                fks.push(ForeignKey {
                    column: parts[0].to_string(),
                    ref_table: parts[1].to_string(),
                    ref_column: parts[2].to_string(),
                });
            } else if let Some(rest) = line.strip_prefix("ROW") {
                row_bytes.push_str(line);
                row_bytes.push('\n');
                let mut row = Vec::new();
                for field in rest.split('\t').skip(1) {
                    row.push(decode_value(field)?);
                }
                rows.push(row);
            } else {
                return Err(DbError::Execution(format!("bad line `{line}`")));
            }
        }
        db.create_table(TableSchema::new(name.clone(), columns, fks)?)?;
        for row in rows {
            db.insert(&name, row)?;
        }
    }
    Ok(db)
}

/// What kind of damage a lenient load worked around.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueKind {
    /// A table's `CHECK` footer disagreed with its rows (bit rot or a
    /// torn rewrite); the decodable rows were kept.
    ChecksumMismatch,
    /// A ROW line failed to decode; the row was skipped. [`PersistIssue::
    /// recovered`] carries whatever fields did decode.
    BadRow,
    /// A decodable row was rejected by the schema or integrity checks
    /// (duplicate key, foreign-key violation, type mismatch).
    InsertFailed,
    /// A line that is neither TABLE/COLUMN/FK/ROW/CHECK/END; skipped.
    BadLine,
    /// The file ended inside a table block (truncation); rows up to the
    /// cut were kept.
    Truncated,
}

impl IssueKind {
    /// Stable text form for reports.
    pub fn encode(self) -> &'static str {
        match self {
            IssueKind::ChecksumMismatch => "checksum-mismatch",
            IssueKind::BadRow => "bad-row",
            IssueKind::InsertFailed => "insert-failed",
            IssueKind::BadLine => "bad-line",
            IssueKind::Truncated => "truncated",
        }
    }
}

/// One piece of damage a [`load_lenient`] call salvaged around.
#[derive(Debug, Clone, PartialEq)]
pub struct PersistIssue {
    /// Table the damage was found in (empty for file-level damage).
    pub table: String,
    /// What kind of damage.
    pub kind: IssueKind,
    /// For row-level damage: each field that still decoded (`None` where
    /// garbled), so a repair can identify the row by its surviving key.
    pub recovered: Vec<Option<Value>>,
    /// Human-readable description.
    pub detail: String,
}

/// Best-effort restore from damaged [`save`] output: decodable tables and
/// rows are kept, everything else is skipped and reported. The header must
/// still identify the file as a goofidb dump — a missing header means this
/// is not a database, and one issue with an empty database is returned.
pub(crate) fn load_lenient(text: &str) -> (Database, Vec<PersistIssue>) {
    let mut db = Database::new();
    let mut issues = Vec::new();
    let mut lines = text.lines().peekable();
    match lines.next() {
        Some(header) if header.starts_with("#goofidb") => {}
        other => {
            issues.push(PersistIssue {
                table: String::new(),
                kind: IssueKind::BadLine,
                recovered: Vec::new(),
                detail: format!("bad persistence header: {other:?}"),
            });
            return (db, issues);
        }
    }
    while let Some(line) = lines.next() {
        if line.trim().is_empty() {
            continue;
        }
        let Some(name) = line.strip_prefix("TABLE ") else {
            issues.push(PersistIssue {
                table: String::new(),
                kind: IssueKind::BadLine,
                recovered: Vec::new(),
                detail: format!("expected TABLE, got `{}`", clip(line)),
            });
            continue;
        };
        let name = name.to_string();
        let mut columns = Vec::new();
        let mut fks = Vec::new();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut bad_rows: Vec<PersistIssue> = Vec::new();
        let mut row_bytes = String::new();
        let mut terminated = false;
        for line in lines.by_ref() {
            if line == "END" {
                terminated = true;
                break;
            }
            if let Some(sum) = line.strip_prefix("CHECK ") {
                let want = u32::from_str_radix(sum.trim(), 16).unwrap_or(0);
                let got = fnv1a(row_bytes.as_bytes());
                if want != got {
                    issues.push(PersistIssue {
                        table: name.clone(),
                        kind: IssueKind::ChecksumMismatch,
                        recovered: Vec::new(),
                        detail: format!("row checksum {got:08x} != recorded {want:08x}"),
                    });
                }
            } else if let Some(rest) = line.strip_prefix("COLUMN ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                match parts
                    .get(1)
                    .and_then(|t| ColumnType::parse(t))
                    .filter(|_| parts.len() >= 2)
                {
                    Some(ty) => columns.push(ColumnDef {
                        name: parts[0].to_string(),
                        ty,
                        primary_key: parts.get(2) == Some(&"PK"),
                    }),
                    None => issues.push(PersistIssue {
                        table: name.clone(),
                        kind: IssueKind::BadLine,
                        recovered: Vec::new(),
                        detail: format!("bad COLUMN line `{}`", clip(line)),
                    }),
                }
            } else if let Some(rest) = line.strip_prefix("FK ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() == 3 {
                    fks.push(ForeignKey {
                        column: parts[0].to_string(),
                        ref_table: parts[1].to_string(),
                        ref_column: parts[2].to_string(),
                    });
                } else {
                    issues.push(PersistIssue {
                        table: name.clone(),
                        kind: IssueKind::BadLine,
                        recovered: Vec::new(),
                        detail: format!("bad FK line `{}`", clip(line)),
                    });
                }
            } else if let Some(rest) = line.strip_prefix("ROW") {
                row_bytes.push_str(line);
                row_bytes.push('\n');
                let fields: Vec<Option<Value>> = rest
                    .split('\t')
                    .skip(1)
                    .map(|f| decode_value(f).ok())
                    .collect();
                if fields.iter().all(Option::is_some) {
                    rows.push(fields.into_iter().flatten().collect());
                } else {
                    bad_rows.push(PersistIssue {
                        table: name.clone(),
                        kind: IssueKind::BadRow,
                        recovered: fields,
                        detail: format!("undecodable row `{}`", clip(line)),
                    });
                }
            } else {
                issues.push(PersistIssue {
                    table: name.clone(),
                    kind: IssueKind::BadLine,
                    recovered: Vec::new(),
                    detail: format!("bad line `{}` in table block", clip(line)),
                });
            }
        }
        if !terminated {
            issues.push(PersistIssue {
                table: name.clone(),
                kind: IssueKind::Truncated,
                recovered: Vec::new(),
                detail: "file ends inside table block".into(),
            });
        }
        issues.append(&mut bad_rows);
        match TableSchema::new(name.clone(), columns, fks).and_then(|s| db.create_table(s)) {
            Ok(()) => {
                for row in rows {
                    let recovered: Vec<Option<Value>> = row.iter().cloned().map(Some).collect();
                    if let Err(e) = db.insert(&name, row) {
                        issues.push(PersistIssue {
                            table: name.clone(),
                            kind: IssueKind::InsertFailed,
                            recovered,
                            detail: e.to_string(),
                        });
                    }
                }
            }
            Err(e) => issues.push(PersistIssue {
                table: name.clone(),
                kind: IssueKind::BadLine,
                recovered: Vec::new(),
                detail: format!("table unusable: {e}"),
            }),
        }
    }
    (db, issues)
}

fn clip(line: &str) -> String {
    if line.len() <= 80 {
        return line.to_string();
    }
    let mut out: String = line.chars().take(80).collect();
    out.push('…');
    out
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Orders tables so every table appears after the tables it references.
fn topo_order(db: &Database) -> Vec<String> {
    let names = db.table_names();
    let mut out: Vec<String> = Vec::new();
    let mut remaining = names;
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|name| {
            let deps_done = db
                .table(name)
                .map(|t| {
                    t.schema()
                        .foreign_keys
                        .iter()
                        .all(|fk| fk.ref_table == *name || out.contains(&fk.ref_table))
                })
                .unwrap_or(true);
            if deps_done {
                out.push(name.clone());
                false
            } else {
                true
            }
        });
        if remaining.len() == before {
            // FK cycle: emit the rest in name order (load will fail loudly).
            out.append(&mut remaining);
        }
    }
    out
}

fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "N".to_string(),
        Value::Int(i) => format!("I:{i}"),
        // Bit-exact float round trip.
        Value::Real(r) => format!("R:{}", r.to_bits()),
        Value::Text(s) => format!("T:{}", escape(s)),
    }
}

fn decode_value(field: &str) -> Result<Value, DbError> {
    if field == "N" {
        return Ok(Value::Null);
    }
    let (tag, body) = field
        .split_once(':')
        .ok_or_else(|| DbError::Execution(format!("bad value field `{field}`")))?;
    match tag {
        "I" => body
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::Execution(format!("bad integer `{body}`"))),
        "R" => body
            .parse::<u64>()
            .map(|bits| Value::Real(f64::from_bits(bits)))
            .map_err(|_| DbError::Execution(format!("bad real `{body}`"))),
        "T" => Ok(Value::Text(unescape(body)?)),
        _ => Err(DbError::Execution(format!("bad value tag `{tag}`"))),
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Result<String, DbError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(DbError::Execution(format!(
                    "bad escape `\\{}`",
                    other.map(String::from).unwrap_or_default()
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    #[test]
    fn roundtrip_with_fk_and_special_chars() {
        let mut db = Database::new();
        db.execute("CREATE TABLE targets (name TEXT PRIMARY KEY, chains INTEGER)")
            .unwrap();
        db.execute(
            "CREATE TABLE campaigns (id INTEGER PRIMARY KEY, target TEXT, score REAL,
             FOREIGN KEY (target) REFERENCES targets(name))",
        )
        .unwrap();
        db.execute("INSERT INTO targets (name, chains) VALUES ('thor', 5)")
            .unwrap();
        db.insert(
            "campaigns",
            vec![
                Value::Int(1),
                Value::text("thor"),
                Value::Real(0.1 + 0.2), // non-representable decimal
            ],
        )
        .unwrap();
        db.insert("campaigns", vec![Value::Int(2), Value::Null, Value::Null])
            .unwrap();
        // Text with tabs/newlines/backslashes survives.
        db.execute("CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT)")
            .unwrap();
        db.insert("notes", vec![Value::Int(1), Value::text("a\tb\nc\\d")])
            .unwrap();

        let text = db.save_to_string();
        let restored = Database::load_from_string(&text).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
        assert_eq!(
            restored.table("campaigns").unwrap().len(),
            db.table("campaigns").unwrap().len()
        );
        assert_eq!(
            restored
                .table("campaigns")
                .unwrap()
                .find_by_key(&Value::Int(1))
                .unwrap()[2],
            Value::Real(0.1 + 0.2)
        );
        assert_eq!(
            restored
                .table("notes")
                .unwrap()
                .find_by_key(&Value::Int(1))
                .unwrap()[1],
            Value::text("a\tb\nc\\d")
        );
        restored.check_integrity().unwrap();
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(Database::load_from_string("nope").is_err());
        assert!(Database::load_from_string("#goofidb v1\nGARBAGE x\n").is_err());
        assert!(Database::load_from_string("#goofidb v1\nTABLE t\nCOLUMN a INTEGER\n").is_err());
    }

    #[test]
    fn topo_order_puts_referenced_tables_first() {
        let mut db = Database::new();
        // Alphabetically `aaa` sorts before `zzz`, but `aaa` references it.
        db.create_table(
            TableSchema::new(
                "zzz",
                vec![ColumnDef::primary("id", ColumnType::Integer)],
                vec![],
            )
            .unwrap(),
        )
        .unwrap();
        db.create_table(
            TableSchema::new(
                "aaa",
                vec![ColumnDef::new("zref", ColumnType::Integer)],
                vec![ForeignKey {
                    column: "zref".into(),
                    ref_table: "zzz".into(),
                    ref_column: "id".into(),
                }],
            )
            .unwrap(),
        )
        .unwrap();
        let order = topo_order(&db);
        let zi = order.iter().position(|n| n == "zzz").unwrap();
        let ai = order.iter().position(|n| n == "aaa").unwrap();
        assert!(zi < ai);
        // And the save/load roundtrip works despite the name order.
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        assert_eq!(restored.table_names(), db.table_names());
    }
}
