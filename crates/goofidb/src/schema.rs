//! Table schemas: columns, types, primary and foreign keys.

use crate::value::Value;
use crate::DbError;
use std::fmt;

/// SQL column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Integer,
    /// Double-precision float.
    Real,
    /// UTF-8 string.
    Text,
}

impl ColumnType {
    /// SQL keyword for this type.
    pub fn keyword(self) -> &'static str {
        match self {
            ColumnType::Integer => "INTEGER",
            ColumnType::Real => "REAL",
            ColumnType::Text => "TEXT",
        }
    }

    /// Parses a SQL type keyword (case-insensitive).
    pub fn parse(s: &str) -> Option<ColumnType> {
        match s.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" => Some(ColumnType::Integer),
            "REAL" | "FLOAT" | "DOUBLE" => Some(ColumnType::Real),
            "TEXT" | "VARCHAR" | "STRING" => Some(ColumnType::Text),
            _ => None,
        }
    }

    /// Whether `value` is acceptable in a column of this type.
    ///
    /// NULL is accepted by every type; integers widen to REAL.
    pub fn accepts(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Integer, Value::Int(_))
                | (ColumnType::Real, Value::Real(_) | Value::Int(_))
                | (ColumnType::Text, Value::Text(_))
        )
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// Whether this column is the table's primary key.
    pub primary_key: bool,
}

impl ColumnDef {
    /// Creates a plain column.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            primary_key: false,
        }
    }

    /// Creates a primary-key column.
    pub fn primary(name: impl Into<String>, ty: ColumnType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
            primary_key: true,
        }
    }
}

/// A foreign-key constraint: `column` must reference an existing value of
/// `ref_column` in `ref_table` (which must be that table's primary key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced (primary key) column.
    pub ref_column: String,
}

impl fmt::Display for ForeignKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {}.{}",
            self.column, self.ref_table, self.ref_column
        )
    }
}

/// The schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a schema.
    ///
    /// # Errors
    ///
    /// Rejects empty/duplicate column lists, more than one primary key, a
    /// REAL primary key, and foreign keys naming unknown local columns.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<ColumnDef>,
        foreign_keys: Vec<ForeignKey>,
    ) -> Result<Self, DbError> {
        let name = name.into();
        if columns.is_empty() {
            return Err(DbError::Execution(format!("table `{name}` has no columns")));
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(DbError::Execution(format!(
                    "duplicate column `{}` in table `{name}`",
                    c.name
                )));
            }
        }
        let pk_count = columns.iter().filter(|c| c.primary_key).count();
        if pk_count > 1 {
            return Err(DbError::Execution(format!(
                "table `{name}` declares {pk_count} primary keys"
            )));
        }
        if let Some(pk) = columns.iter().find(|c| c.primary_key) {
            if pk.ty == ColumnType::Real {
                return Err(DbError::BadPrimaryKey {
                    table: name,
                    reason: "REAL columns cannot be primary keys".into(),
                });
            }
        }
        for fk in &foreign_keys {
            if !columns.iter().any(|c| c.name == fk.column) {
                return Err(DbError::NoSuchColumn(fk.column.clone()));
            }
        }
        Ok(TableSchema {
            name,
            columns,
            foreign_keys,
        })
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The primary-key column index, if the table has one.
    pub fn primary_key_index(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.primary_key)
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_acceptance() {
        assert!(ColumnType::Integer.accepts(&Value::Int(1)));
        assert!(!ColumnType::Integer.accepts(&Value::Real(1.0)));
        assert!(ColumnType::Real.accepts(&Value::Int(1)));
        assert!(ColumnType::Real.accepts(&Value::Real(1.0)));
        assert!(ColumnType::Text.accepts(&Value::text("x")));
        assert!(!ColumnType::Text.accepts(&Value::Int(1)));
        assert!(ColumnType::Text.accepts(&Value::Null));
    }

    #[test]
    fn type_parsing() {
        assert_eq!(ColumnType::parse("integer"), Some(ColumnType::Integer));
        assert_eq!(ColumnType::parse("VARCHAR"), Some(ColumnType::Text));
        assert_eq!(ColumnType::parse("blob"), None);
    }

    #[test]
    fn schema_validation() {
        let ok = TableSchema::new(
            "t",
            vec![
                ColumnDef::primary("id", ColumnType::Integer),
                ColumnDef::new("x", ColumnType::Real),
            ],
            vec![],
        );
        assert!(ok.is_ok());

        let dup = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", ColumnType::Integer),
                ColumnDef::new("a", ColumnType::Text),
            ],
            vec![],
        );
        assert!(dup.is_err());

        let two_pks = TableSchema::new(
            "t",
            vec![
                ColumnDef::primary("a", ColumnType::Integer),
                ColumnDef::primary("b", ColumnType::Integer),
            ],
            vec![],
        );
        assert!(two_pks.is_err());

        let real_pk =
            TableSchema::new("t", vec![ColumnDef::primary("a", ColumnType::Real)], vec![]);
        assert!(matches!(real_pk, Err(DbError::BadPrimaryKey { .. })));

        let bad_fk = TableSchema::new(
            "t",
            vec![ColumnDef::new("a", ColumnType::Integer)],
            vec![ForeignKey {
                column: "zzz".into(),
                ref_table: "other".into(),
                ref_column: "id".into(),
            }],
        );
        assert!(matches!(bad_fk, Err(DbError::NoSuchColumn(_))));
    }

    #[test]
    fn lookups() {
        let s = TableSchema::new(
            "t",
            vec![
                ColumnDef::primary("id", ColumnType::Integer),
                ColumnDef::new("x", ColumnType::Text),
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(s.column_index("x"), Some(1));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.primary_key_index(), Some(0));
        assert_eq!(s.column_names(), vec!["id", "x"]);
    }
}
