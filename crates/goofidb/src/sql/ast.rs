//! Abstract syntax of the SQL dialect.

use crate::schema::TableSchema;
use crate::value::Value;

/// A parsed statement.
///
/// `Select` is by far the largest variant; statements are parsed once and
/// executed immediately, so the size skew has no practical cost.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE …`
    CreateTable(TableSchema),
    /// `DROP TABLE name`
    DropTable(String),
    /// `INSERT INTO t (cols) VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list (empty = all columns in order).
        columns: Vec<String>,
        /// One literal row per `VALUES` tuple.
        values: Vec<Vec<Expr>>,
    },
    /// `SELECT …`
    Select(SelectStmt),
    /// `UPDATE t SET c = e, … WHERE …`
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        sets: Vec<(String, Expr)>,
        /// Row filter (`None` = all rows).
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM t WHERE …`
    Delete {
        /// Target table.
        table: String,
        /// Row filter (`None` = all rows).
        where_clause: Option<Expr>,
    },
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Whether duplicate output rows are removed (`SELECT DISTINCT`).
    pub distinct: bool,
    /// Projected expressions.
    pub projections: Vec<Projection>,
    /// Source table.
    pub from: String,
    /// Alias for the source table.
    pub from_alias: Option<String>,
    /// Optional inner join.
    pub join: Option<JoinClause>,
    /// Row filter.
    pub where_clause: Option<Expr>,
    /// Grouping expressions.
    pub group_by: Vec<Expr>,
    /// Output orderings: (output column name, descending).
    pub order_by: Vec<(String, bool)>,
    /// Row-count cap.
    pub limit: Option<usize>,
}

/// `JOIN table [AS alias] ON left = right` (inner, equi-join).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Joined table.
    pub table: String,
    /// Alias for the joined table.
    pub alias: Option<String>,
    /// Left side of the equality.
    pub on_left: Expr,
    /// Right side of the equality.
    pub on_right: Expr,
}

/// One projected output.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// `*`
    Star,
    /// An expression, optionally `AS alias`.
    Expr(Expr, Option<String>),
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Parses a function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Lower-case name for default output column labels.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified: `t.c` or `c`.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT e`
    Not(Box<Expr>),
    /// `e IS NULL` / `e IS NOT NULL` (`negated` = NOT form).
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// Whether this is the `IS NOT NULL` form.
        negated: bool,
    },
    /// `e LIKE 'pat%'`
    Like {
        /// Tested expression.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
    },
    /// Aggregate call: `COUNT(*)` has `arg = None`.
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Argument (`None` = `*`).
        arg: Option<Box<Expr>>,
    },
    /// `e IN (v1, v2, …)`
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
    },
    /// `e BETWEEN lo AND hi` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
    },
}

impl Expr {
    /// Whether the expression contains an aggregate call.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Binary { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Expr::Not(e) => e.has_aggregate(),
            Expr::IsNull { expr, .. } => expr.has_aggregate(),
            Expr::Like { expr, .. } => expr.has_aggregate(),
            Expr::InList { expr, list } => {
                expr.has_aggregate() || list.iter().any(Expr::has_aggregate)
            }
            Expr::Between { expr, low, high } => {
                expr.has_aggregate() || low.has_aggregate() || high.has_aggregate()
            }
            Expr::Literal(_) | Expr::Column { .. } => false,
        }
    }

    /// Default output label for this expression.
    pub fn default_label(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name(), a.default_label()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Literal(v) => v.to_string(),
            _ => "expr".to_string(),
        }
    }
}
