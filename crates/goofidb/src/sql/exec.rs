//! Executor: evaluates parsed statements against a [`Database`].

use super::ast::*;
use crate::db::{Database, QueryResult};
use crate::table::Row;
use crate::value::Value;
use crate::DbError;
use std::cell::Cell;
use std::cmp::Ordering;

/// Executes a non-`SELECT` statement.
pub(super) fn execute(db: &mut Database, stmt: Stmt) -> Result<usize, DbError> {
    match stmt {
        Stmt::CreateTable(schema) => {
            db.create_table(schema)?;
            Ok(0)
        }
        Stmt::DropTable(name) => {
            db.drop_table(&name)?;
            Ok(0)
        }
        Stmt::Insert {
            table,
            columns,
            values,
        } => {
            let schema = db
                .table(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?
                .schema()
                .clone();
            let indices: Vec<usize> = if columns.is_empty() {
                (0..schema.columns.len()).collect()
            } else {
                columns
                    .iter()
                    .map(|c| {
                        schema
                            .column_index(c)
                            .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                    })
                    .collect::<Result<_, _>>()?
            };
            let mut inserted = 0;
            for tuple in values {
                if tuple.len() != indices.len() {
                    return Err(DbError::ArityMismatch {
                        expected: indices.len(),
                        got: tuple.len(),
                    });
                }
                let mut row = vec![Value::Null; schema.columns.len()];
                for (i, expr) in indices.iter().zip(tuple) {
                    row[*i] = eval_literal(&expr)?;
                }
                db.insert(&table, row)?;
                inserted += 1;
            }
            Ok(inserted)
        }
        Stmt::Update {
            table,
            sets,
            where_clause,
        } => {
            let t = db
                .table(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            let scope = Scope::for_table(t.schema().name.as_str(), None, t.schema());
            let set_indices: Vec<usize> = sets
                .iter()
                .map(|(c, _)| {
                    t.schema()
                        .column_index(c)
                        .ok_or_else(|| DbError::NoSuchColumn(c.clone()))
                })
                .collect::<Result<_, _>>()?;
            // Precompute per-row decisions so evaluation errors propagate.
            let mut plan: Vec<Option<Vec<(usize, Value)>>> = Vec::with_capacity(t.len());
            for row in t.iter() {
                let matches = match &where_clause {
                    Some(e) => eval_bool(e, &scope, row)? == Some(true),
                    None => true,
                };
                if matches {
                    let mut assignments = Vec::with_capacity(sets.len());
                    for ((_, expr), idx) in sets.iter().zip(&set_indices) {
                        assignments.push((*idx, eval_value(expr, &scope, row)?));
                    }
                    plan.push(Some(assignments));
                } else {
                    plan.push(None);
                }
            }
            let counter = Cell::new(0usize);
            let plan_pred = plan.clone();
            db.update_where(
                &table,
                move |_| {
                    let i = counter.get();
                    counter.set(i + 1);
                    plan_pred.get(i).is_some_and(|p| p.is_some())
                },
                {
                    let applied = Cell::new(0usize);
                    let updates: Vec<Vec<(usize, Value)>> = plan.into_iter().flatten().collect();
                    move |row: &mut Row| {
                        let i = applied.get();
                        applied.set(i + 1);
                        if let Some(assignments) = updates.get(i) {
                            for (idx, v) in assignments {
                                row[*idx] = v.clone();
                            }
                        }
                    }
                },
            )
        }
        Stmt::Delete {
            table,
            where_clause,
        } => {
            let t = db
                .table(&table)
                .ok_or_else(|| DbError::NoSuchTable(table.clone()))?;
            let scope = Scope::for_table(t.schema().name.as_str(), None, t.schema());
            let mut mask = Vec::with_capacity(t.len());
            for row in t.iter() {
                mask.push(match &where_clause {
                    Some(e) => eval_bool(e, &scope, row)? == Some(true),
                    None => true,
                });
            }
            let counter = Cell::new(0usize);
            db.delete_where(&table, move |_| {
                let i = counter.get();
                counter.set(i + 1);
                mask.get(i).copied().unwrap_or(false)
            })
        }
        Stmt::Select(_) => unreachable!("routed to select()"),
    }
}

/// Runs a `SELECT`.
pub(super) fn select(db: &Database, stmt: &SelectStmt) -> Result<QueryResult, DbError> {
    let base = db
        .table(&stmt.from)
        .ok_or_else(|| DbError::NoSuchTable(stmt.from.clone()))?;
    let base_qual = stmt.from_alias.as_deref().unwrap_or(&stmt.from).to_string();
    let mut scope = Scope::for_table(&base_qual, Some(&stmt.from), base.schema());
    let mut rows: Vec<Row> = base.iter().cloned().collect();

    if let Some(join) = &stmt.join {
        let right = db
            .table(&join.table)
            .ok_or_else(|| DbError::NoSuchTable(join.table.clone()))?;
        let right_qual = join.alias.as_deref().unwrap_or(&join.table).to_string();
        scope.extend(&right_qual, Some(&join.table), right.schema());
        let mut joined = Vec::new();
        for l in &rows {
            for r in right.iter() {
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                let lv = eval_value(&join.on_left, &scope, &combined)?;
                let rv = eval_value(&join.on_right, &scope, &combined)?;
                if lv.compare(&rv) == Some(Ordering::Equal) {
                    joined.push(combined);
                }
            }
        }
        rows = joined;
    }

    if let Some(w) = &stmt.where_clause {
        let mut kept = Vec::new();
        for row in rows {
            if eval_bool(w, &scope, &row)? == Some(true) {
                kept.push(row);
            }
        }
        rows = kept;
    }

    let has_aggregate = stmt.projections.iter().any(|p| match p {
        Projection::Expr(e, _) => e.has_aggregate(),
        Projection::Star => false,
    });

    // Output column labels.
    let mut columns = Vec::new();
    for p in &stmt.projections {
        match p {
            Projection::Star => columns.extend(scope.names()),
            Projection::Expr(e, alias) => {
                columns.push(alias.clone().unwrap_or_else(|| e.default_label()));
            }
        }
    }

    let mut out_rows: Vec<Row> = Vec::new();
    if has_aggregate || !stmt.group_by.is_empty() {
        // Group rows.
        let mut groups: Vec<(Vec<Value>, Vec<Row>)> = Vec::new();
        for row in rows {
            let key: Vec<Value> = stmt
                .group_by
                .iter()
                .map(|e| eval_value(e, &scope, &row))
                .collect::<Result<_, _>>()?;
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, members)) => members.push(row),
                None => groups.push((key, vec![row])),
            }
        }
        if groups.is_empty() && stmt.group_by.is_empty() {
            // Aggregates over an empty input still produce one row.
            groups.push((Vec::new(), Vec::new()));
        }
        for (_, members) in &groups {
            let mut out = Vec::new();
            for p in &stmt.projections {
                match p {
                    Projection::Star => {
                        return Err(DbError::Execution(
                            "SELECT * cannot be combined with aggregates".into(),
                        ))
                    }
                    Projection::Expr(e, _) => {
                        out.push(eval_aggregated(e, &scope, members)?);
                    }
                }
            }
            out_rows.push(out);
        }
    } else {
        for row in &rows {
            let mut out = Vec::new();
            for p in &stmt.projections {
                match p {
                    Projection::Star => out.extend(row.iter().cloned()),
                    Projection::Expr(e, _) => out.push(eval_value(e, &scope, row)?),
                }
            }
            out_rows.push(out);
        }
    }

    // SELECT DISTINCT: drop duplicate output rows, keeping first
    // occurrences (before ORDER BY, as SQL does).
    if stmt.distinct {
        let mut unique: Vec<Row> = Vec::with_capacity(out_rows.len());
        for row in out_rows {
            if !unique.contains(&row) {
                unique.push(row);
            }
        }
        out_rows = unique;
    }

    // ORDER BY output columns.
    for (name, desc) in stmt.order_by.iter().rev() {
        let idx = columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DbError::NoSuchColumn(format!("ORDER BY {name}")))?;
        out_rows.sort_by(|a, b| {
            let o = a[idx].order_key(&b[idx]);
            if *desc {
                o.reverse()
            } else {
                o
            }
        });
    }
    if let Some(limit) = stmt.limit {
        out_rows.truncate(limit);
    }
    Ok(QueryResult {
        columns,
        rows: out_rows,
    })
}

// ---------------------------------------------------------------------------
// Scopes and evaluation.

/// Column-name resolution scope over (possibly joined) rows.
struct Scope {
    /// (qualifier, real table name, column name) per row slot.
    cols: Vec<(String, Option<String>, String)>,
}

impl Scope {
    fn for_table(qualifier: &str, real: Option<&str>, schema: &crate::TableSchema) -> Scope {
        let mut s = Scope { cols: Vec::new() };
        s.extend(qualifier, real, schema);
        s
    }

    fn extend(&mut self, qualifier: &str, real: Option<&str>, schema: &crate::TableSchema) {
        for c in &schema.columns {
            self.cols.push((
                qualifier.to_string(),
                real.map(str::to_string),
                c.name.clone(),
            ));
        }
    }

    fn names(&self) -> Vec<String> {
        self.cols.iter().map(|(_, _, n)| n.clone()).collect()
    }

    fn resolve(&self, table: Option<&str>, name: &str) -> Result<usize, DbError> {
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (qual, real, col))| {
                col == name && table.is_none_or(|t| qual == t || real.as_deref() == Some(t))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(DbError::NoSuchColumn(match table {
                Some(t) => format!("{t}.{name}"),
                None => name.to_string(),
            })),
            _ => Err(DbError::Execution(format!("ambiguous column `{name}`"))),
        }
    }
}

fn eval_literal(expr: &Expr) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        other => Err(DbError::Execution(format!(
            "expected a literal value, found {other:?}"
        ))),
    }
}

fn eval_value(expr: &Expr, scope: &Scope, row: &Row) -> Result<Value, DbError> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, name } => {
            let idx = scope.resolve(table.as_deref(), name)?;
            Ok(row[idx].clone())
        }
        Expr::Aggregate { .. } => Err(DbError::Execution(
            "aggregate used outside of an aggregating SELECT".into(),
        )),
        // Boolean-valued expressions materialise as 0/1/NULL.
        other => Ok(match eval_bool(other, scope, row)? {
            Some(b) => Value::Int(b as i64),
            None => Value::Null,
        }),
    }
}

/// Three-valued boolean evaluation (`None` = SQL UNKNOWN).
fn eval_bool(expr: &Expr, scope: &Scope, row: &Row) -> Result<Option<bool>, DbError> {
    match expr {
        Expr::Binary { op, left, right } => match op {
            BinOp::And => {
                let l = eval_bool(left, scope, row)?;
                let r = eval_bool(right, scope, row)?;
                Ok(match (l, r) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            BinOp::Or => {
                let l = eval_bool(left, scope, row)?;
                let r = eval_bool(right, scope, row)?;
                Ok(match (l, r) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            cmp => {
                let l = eval_value(left, scope, row)?;
                let r = eval_value(right, scope, row)?;
                Ok(l.compare(&r).map(|o| match cmp {
                    BinOp::Eq => o == Ordering::Equal,
                    BinOp::Ne => o != Ordering::Equal,
                    BinOp::Lt => o == Ordering::Less,
                    BinOp::Le => o != Ordering::Greater,
                    BinOp::Gt => o == Ordering::Greater,
                    BinOp::Ge => o != Ordering::Less,
                    BinOp::And | BinOp::Or => unreachable!(),
                }))
            }
        },
        Expr::Not(inner) => Ok(eval_bool(inner, scope, row)?.map(|b| !b)),
        Expr::IsNull { expr, negated } => {
            let v = eval_value(expr, scope, row)?;
            Ok(Some(v.is_null() != *negated))
        }
        Expr::InList { expr, list } => {
            let v = eval_value(expr, scope, row)?;
            if v.is_null() {
                return Ok(None);
            }
            let mut unknown = false;
            for candidate in list {
                let c = eval_value(candidate, scope, row)?;
                match v.compare(&c) {
                    Some(Ordering::Equal) => return Ok(Some(true)),
                    Some(_) => {}
                    None => unknown = true,
                }
            }
            Ok(if unknown { None } else { Some(false) })
        }
        Expr::Between { expr, low, high } => {
            let v = eval_value(expr, scope, row)?;
            let lo = eval_value(low, scope, row)?;
            let hi = eval_value(high, scope, row)?;
            match (v.compare(&lo), v.compare(&hi)) {
                (Some(a), Some(b)) => Ok(Some(a != Ordering::Less && b != Ordering::Greater)),
                _ => Ok(None),
            }
        }
        Expr::Like { expr, pattern } => {
            let v = eval_value(expr, scope, row)?;
            match v {
                Value::Null => Ok(None),
                Value::Text(s) => Ok(Some(like_match(pattern, &s))),
                other => Err(DbError::Execution(format!(
                    "LIKE needs TEXT, got {}",
                    other.type_name()
                ))),
            }
        }
        // A bare value in boolean position: nonzero numbers are true.
        other => {
            let v = eval_value(other, scope, row)?;
            Ok(match v {
                Value::Null => None,
                Value::Int(i) => Some(i != 0),
                Value::Real(r) => Some(r != 0.0),
                Value::Text(_) => Some(false),
            })
        }
    }
}

/// Evaluates a projection expression over a whole group.
fn eval_aggregated(expr: &Expr, scope: &Scope, group: &[Row]) -> Result<Value, DbError> {
    match expr {
        Expr::Aggregate { func, arg } => {
            let values: Vec<Value> = match arg {
                None => return Ok(Value::Int(group.len() as i64)),
                Some(a) => group
                    .iter()
                    .map(|r| eval_value(a, scope, r))
                    .collect::<Result<_, _>>()?,
            };
            let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
            match func {
                AggFunc::Count => Ok(Value::Int(non_null.len() as i64)),
                AggFunc::Sum | AggFunc::Avg => {
                    if non_null.is_empty() {
                        return Ok(Value::Null);
                    }
                    let all_int = non_null.iter().all(|v| matches!(v, Value::Int(_)));
                    let sum: f64 = non_null
                        .iter()
                        .map(|v| {
                            v.as_real().ok_or_else(|| {
                                DbError::Execution(format!(
                                    "{} over non-numeric value",
                                    func.name()
                                ))
                            })
                        })
                        .sum::<Result<f64, _>>()?;
                    if *func == AggFunc::Avg {
                        Ok(Value::Real(sum / non_null.len() as f64))
                    } else if all_int {
                        Ok(Value::Int(sum as i64))
                    } else {
                        Ok(Value::Real(sum))
                    }
                }
                AggFunc::Min | AggFunc::Max => Ok(non_null
                    .into_iter()
                    .cloned()
                    .reduce(|a, b| {
                        let keep_a = match a.order_key(&b) {
                            Ordering::Less | Ordering::Equal => *func == AggFunc::Min,
                            Ordering::Greater => *func == AggFunc::Max,
                        };
                        if keep_a {
                            a
                        } else {
                            b
                        }
                    })
                    .unwrap_or(Value::Null)),
            }
        }
        Expr::Literal(v) => Ok(v.clone()),
        // Non-aggregate projections take their value from the first group
        // member (they should appear in GROUP BY).
        other => match group.first() {
            Some(row) => eval_value(other, scope, row),
            None => Ok(Value::Null),
        },
    }
}

/// SQL `LIKE`: `%` matches any run, `_` any single character.
fn like_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[char], t: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => (0..=t.len()).any(|i| rec(rest, &t[i..])),
            Some(('_', rest)) => !t.is_empty() && rec(rest, &t[1..]),
            Some((c, rest)) => t.first() == Some(c) && rec(rest, &t[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let t: Vec<char> = text.chars().collect();
    rec(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn like_matching() {
        assert!(like_match("exp%", "exp_001"));
        assert!(like_match("%001", "exp_001"));
        assert!(like_match("e_p%1", "exp_001"));
        assert!(!like_match("exp", "exp_001"));
        assert!(like_match("%", ""));
        assert!(!like_match("_", ""));
    }
}
