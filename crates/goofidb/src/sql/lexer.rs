//! SQL tokenizer.

use crate::DbError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (original case preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Real(f64),
    /// Single-quoted string literal ('' escapes a quote).
    Str(String),
    /// Punctuation / operator.
    Sym(Sym),
}

/// Punctuation and operator symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Semicolon,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Token {
    /// Whether the token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenizes SQL text.
///
/// # Errors
///
/// Returns a parse error on unterminated strings or stray characters.
pub fn lex(sql: &str) -> Result<Vec<Token>, DbError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::Sym(Sym::LParen));
                i += 1;
            }
            ')' => {
                out.push(Token::Sym(Sym::RParen));
                i += 1;
            }
            ',' => {
                out.push(Token::Sym(Sym::Comma));
                i += 1;
            }
            '.' => {
                out.push(Token::Sym(Sym::Dot));
                i += 1;
            }
            '*' => {
                out.push(Token::Sym(Sym::Star));
                i += 1;
            }
            ';' => {
                out.push(Token::Sym(Sym::Semicolon));
                i += 1;
            }
            '=' => {
                out.push(Token::Sym(Sym::Eq));
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym(Sym::Ne));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym(Sym::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Sym(Sym::Ne));
                    i += 2;
                } else {
                    out.push(Token::Sym(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym(Sym::Ge));
                    i += 2;
                } else {
                    out.push(Token::Sym(Sym::Gt));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            '-' if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                let (tok, next) = lex_number(&bytes, i + 1, true)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(&bytes, i, false)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => {
                return Err(DbError::Parse(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

fn lex_number(bytes: &[char], mut i: usize, negative: bool) -> Result<(Token, usize), DbError> {
    let start = i;
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_real = false;
    if i < bytes.len() && bytes[i] == '.' && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        is_real = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    let text: String = bytes[start..i].iter().collect();
    let tok = if is_real {
        let v: f64 = text
            .parse()
            .map_err(|_| DbError::Parse(format!("bad number `{text}`")))?;
        Token::Real(if negative { -v } else { v })
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| DbError::Parse(format!("bad number `{text}`")))?;
        Token::Int(if negative { -v } else { v })
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = lex("SELECT a.b, -3, 2.5, 'it''s' FROM t WHERE x >= 1;").unwrap();
        assert!(toks.contains(&Token::Int(-3)));
        assert!(toks.contains(&Token::Real(2.5)));
        assert!(toks.contains(&Token::Str("it's".into())));
        assert!(toks.contains(&Token::Sym(Sym::Ge)));
        assert!(toks[0].is_kw("select"));
    }

    #[test]
    fn ne_forms() {
        assert!(lex("a != b").unwrap().contains(&Token::Sym(Sym::Ne)));
        assert!(lex("a <> b").unwrap().contains(&Token::Sym(Sym::Ne)));
    }

    #[test]
    fn errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("a ? b").is_err());
    }
}
