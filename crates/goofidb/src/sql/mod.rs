//! The SQL dialect: lexer, parser and executor.
//!
//! Supported statements (keywords are case-insensitive):
//!
//! ```sql
//! CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL, name TEXT,
//!                 FOREIGN KEY (name) REFERENCES other(name));
//! INSERT INTO t (id, x, name) VALUES (1, 2.5, 'a'), (2, NULL, 'b');
//! SELECT a.id, COUNT(*) AS n FROM t AS a JOIN u ON a.name = u.name
//!   WHERE x >= 2 AND name LIKE 'exp%' GROUP BY a.id
//!   ORDER BY n DESC LIMIT 10;
//! UPDATE t SET x = 3.5 WHERE id = 1;
//! DELETE FROM t WHERE name = 'b';
//! DROP TABLE t;
//! ```
//!
//! Aggregates: `COUNT(*)`, `COUNT(col)`, `SUM`, `AVG`, `MIN`, `MAX`.
//! `ORDER BY` references output columns (by name or alias).

mod ast;
mod exec;
mod lexer;
mod parser;

pub use ast::{AggFunc, BinOp, Expr, Projection, SelectStmt, Stmt};
pub use parser::parse;

use crate::{Database, DbError, QueryResult};

/// Parses and executes a non-`SELECT` statement; returns affected rows.
///
/// # Errors
///
/// Parse errors and any integrity violation raised by the operation.
pub fn execute(db: &mut Database, sql: &str) -> Result<usize, DbError> {
    let stmt = parse(sql)?;
    match stmt {
        Stmt::Select(_) => Err(DbError::Execution(
            "use `query` for SELECT statements".into(),
        )),
        other => exec::execute(db, other),
    }
}

/// Parses and runs a `SELECT`.
///
/// # Errors
///
/// Parse errors, unknown tables/columns.
pub fn query(db: &Database, sql: &str) -> Result<QueryResult, DbError> {
    match parse(sql)? {
        Stmt::Select(s) => exec::select(db, &s),
        _ => Err(DbError::Execution(
            "use `execute` for non-SELECT statements".into(),
        )),
    }
}
