//! Recursive-descent parser for the SQL dialect.

use super::ast::*;
use super::lexer::{lex, Sym, Token};
use crate::schema::{ColumnDef, ColumnType, ForeignKey, TableSchema};
use crate::value::Value;
use crate::DbError;

/// Parses one SQL statement.
///
/// # Errors
///
/// Returns [`DbError::Parse`] describing the first syntax problem.
pub fn parse(sql: &str) -> Result<Stmt, DbError> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semicolon); // optional trailing semicolon
    if !p.at_end() {
        return Err(DbError::Parse(format!(
            "unexpected trailing input at token {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        if self.kw(kw) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if self.peek() == Some(&Token::Sym(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<(), DbError> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(DbError::Parse(format!(
                "expected {sym:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> Result<Stmt, DbError> {
        if self.kw("CREATE") {
            self.expect_kw("TABLE")?;
            return self.create_table();
        }
        if self.kw("DROP") {
            self.expect_kw("TABLE")?;
            return Ok(Stmt::DropTable(self.ident()?));
        }
        if self.kw("INSERT") {
            self.expect_kw("INTO")?;
            return self.insert();
        }
        if self.kw("SELECT") {
            return Ok(Stmt::Select(self.select()?));
        }
        if self.kw("UPDATE") {
            return self.update();
        }
        if self.kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let where_clause = if self.kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Stmt::Delete {
                table,
                where_clause,
            });
        }
        Err(DbError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn create_table(&mut self) -> Result<Stmt, DbError> {
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        let mut fks = Vec::new();
        loop {
            if self.kw("FOREIGN") {
                self.expect_kw("KEY")?;
                self.expect_sym(Sym::LParen)?;
                let column = self.ident()?;
                self.expect_sym(Sym::RParen)?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                self.expect_sym(Sym::LParen)?;
                let ref_column = self.ident()?;
                self.expect_sym(Sym::RParen)?;
                fks.push(ForeignKey {
                    column,
                    ref_table,
                    ref_column,
                });
            } else {
                let col_name = self.ident()?;
                let ty_name = self.ident()?;
                let ty = ColumnType::parse(&ty_name)
                    .ok_or_else(|| DbError::Parse(format!("unknown type `{ty_name}`")))?;
                let mut primary = false;
                if self.kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    primary = true;
                }
                columns.push(ColumnDef {
                    name: col_name,
                    ty,
                    primary_key: primary,
                });
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Stmt::CreateTable(TableSchema::new(name, columns, fks)?))
    }

    fn insert(&mut self) -> Result<Stmt, DbError> {
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_sym(Sym::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut values = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            values.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Stmt::Insert {
            table,
            columns,
            values,
        })
    }

    fn select(&mut self) -> Result<SelectStmt, DbError> {
        let distinct = self.kw("DISTINCT");
        let mut projections = Vec::new();
        loop {
            if self.eat_sym(Sym::Star) {
                projections.push(Projection::Star);
            } else {
                let e = self.expr()?;
                let alias = if self.kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                projections.push(Projection::Expr(e, alias));
            }
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let from = self.ident()?;
        let from_alias = if self.kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        let join = if self.kw("JOIN") {
            let table = self.ident()?;
            let alias = if self.kw("AS") {
                Some(self.ident()?)
            } else {
                None
            };
            self.expect_kw("ON")?;
            let on_left = self.primary()?;
            self.expect_sym(Sym::Eq)?;
            let on_right = self.primary()?;
            Some(JoinClause {
                table,
                alias,
                on_left,
                on_right,
            })
        } else {
            None
        };
        let where_clause = if self.kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.primary()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let name = self.ident()?;
                let desc = if self.kw("DESC") {
                    true
                } else {
                    self.kw("ASC");
                    false
                };
                order_by.push((name, desc));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.kw("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            projections,
            from,
            from_alias,
            join,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn update(&mut self) -> Result<Stmt, DbError> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_sym(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let where_clause = if self.kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Stmt::Update {
            table,
            sets,
            where_clause,
        })
    }

    // expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.and_expr()?;
        while self.kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    // and_expr := not_expr (AND not_expr)*
    fn and_expr(&mut self) -> Result<Expr, DbError> {
        let mut left = self.not_expr()?;
        while self.kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, DbError> {
        if self.kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    // comparison := primary [(op primary) | IS [NOT] NULL | LIKE 'pat']
    fn comparison(&mut self) -> Result<Expr, DbError> {
        let left = self.primary()?;
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::Ne)) => Some(BinOp::Ne),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::Le)) => Some(BinOp::Le),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::Ge)) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.primary()?;
            return Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        if self.kw("IS") {
            let negated = self.kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        if self.kw("LIKE") {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern,
                    })
                }
                other => return Err(DbError::Parse(format!("bad LIKE pattern {other:?}"))),
            }
        }
        if self.kw("IN") {
            self.expect_sym(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.primary()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
            });
        }
        if self.kw("BETWEEN") {
            let low = self.primary()?;
            self.expect_kw("AND")?;
            let high = self.primary()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        Ok(left)
    }

    // primary := literal | agg(expr|*) | [table.]column | ( expr )
    fn primary(&mut self) -> Result<Expr, DbError> {
        if self.eat_sym(Sym::LParen) {
            let e = self.expr()?;
            self.expect_sym(Sym::RParen)?;
            return Ok(e);
        }
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::Literal(Value::Int(i))),
            Some(Token::Real(r)) => Ok(Expr::Literal(Value::Real(r))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Text(s))),
            Some(Token::Ident(id)) if id.eq_ignore_ascii_case("NULL") => {
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Ident(id)) => {
                // Aggregate call?
                if let Some(func) = AggFunc::parse(&id) {
                    if self.eat_sym(Sym::LParen) {
                        let arg = if self.eat_sym(Sym::Star) {
                            None
                        } else {
                            Some(Box::new(self.primary()?))
                        };
                        self.expect_sym(Sym::RParen)?;
                        return Ok(Expr::Aggregate { func, arg });
                    }
                }
                // Qualified column?
                if self.eat_sym(Sym::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(id),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    table: None,
                    name: id,
                })
            }
            other => Err(DbError::Parse(format!(
                "expected expression, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_with_fk() {
        let s = parse(
            "CREATE TABLE c (id INTEGER PRIMARY KEY, t TEXT,
             FOREIGN KEY (t) REFERENCES targets(name))",
        )
        .unwrap();
        match s {
            Stmt::CreateTable(sch) => {
                assert_eq!(sch.name, "c");
                assert_eq!(sch.columns.len(), 2);
                assert!(sch.columns[0].primary_key);
                assert_eq!(sch.foreign_keys.len(), 1);
                assert_eq!(sch.foreign_keys[0].ref_table, "targets");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn insert_multi_row() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Stmt::Insert {
                table,
                columns,
                values,
            } => {
                assert_eq!(table, "t");
                assert_eq!(columns, vec!["a", "b"]);
                assert_eq!(values.len(), 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn full_select() {
        let s = parse(
            "SELECT a.x, COUNT(*) AS n FROM t AS a JOIN u ON a.id = u.id
             WHERE x >= 2 AND name LIKE 'e%' GROUP BY a.x
             ORDER BY n DESC LIMIT 5;",
        )
        .unwrap();
        match s {
            Stmt::Select(sel) => {
                assert_eq!(sel.projections.len(), 2);
                assert_eq!(sel.from, "t");
                assert_eq!(sel.from_alias.as_deref(), Some("a"));
                assert!(sel.join.is_some());
                assert!(sel.where_clause.is_some());
                assert_eq!(sel.group_by.len(), 1);
                assert_eq!(sel.order_by, vec![("n".to_string(), true)]);
                assert_eq!(sel.limit, Some(5));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn where_precedence() {
        // a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3)
        let s = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        match s {
            Stmt::Select(sel) => match sel.where_clause.unwrap() {
                Expr::Binary {
                    op: BinOp::Or,
                    right,
                    ..
                } => match *right {
                    Expr::Binary { op: BinOp::And, .. } => {}
                    _ => panic!("AND should bind tighter"),
                },
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn is_null_and_not() {
        let s = parse("SELECT * FROM t WHERE NOT a IS NULL AND b IS NOT NULL").unwrap();
        match s {
            Stmt::Select(sel) => {
                assert!(sel.where_clause.is_some());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn update_and_delete() {
        assert!(matches!(
            parse("UPDATE t SET a = 1, b = 'x' WHERE id = 3").unwrap(),
            Stmt::Update { .. }
        ));
        assert!(matches!(
            parse("DELETE FROM t").unwrap(),
            Stmt::Delete {
                where_clause: None,
                ..
            }
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse("INSERT t VALUES (1)").is_err());
        assert!(parse("SELECT * FROM t WHERE a LIKE 5").is_err());
        assert!(parse("SELECT * FROM t; garbage").is_err());
    }
}
