//! Row storage with a primary-key index.

use crate::schema::TableSchema;
use crate::value::{KeyValue, Value};
use crate::DbError;
use std::collections::HashMap;

/// One row: values in schema column order.
pub type Row = Vec<Value>;

/// A table: schema + rows + primary-key index.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
    pk_index: HashMap<KeyValue, usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            pk_index: HashMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.rows.iter()
    }

    /// Validates a row against the schema (arity, types, PK key-ability);
    /// returns the primary-key column index and key for indexed tables.
    fn validate(&self, row: &Row) -> Result<Option<(usize, KeyValue)>, DbError> {
        if row.len() != self.schema.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.schema.columns.iter().zip(row) {
            if !col.ty.accepts(v) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty.keyword(),
                    got: v.type_name(),
                });
            }
        }
        match self.schema.primary_key_index() {
            Some(pk) => {
                let key = KeyValue::from_value(&row[pk]).ok_or_else(|| DbError::BadPrimaryKey {
                    table: self.schema.name.clone(),
                    reason: format!("key value {} is not indexable", row[pk]),
                })?;
                Ok(Some((pk, key)))
            }
            None => Ok(None),
        }
    }

    /// Inserts a row.
    ///
    /// # Errors
    ///
    /// Fails on arity/type mismatch, NULL/REAL primary keys and duplicate
    /// primary keys. Foreign keys are checked by the
    /// [`Database`](crate::Database), which can see the referenced tables.
    pub fn insert(&mut self, row: Row) -> Result<(), DbError> {
        if let Some((pk, key)) = self.validate(&row)? {
            if self.pk_index.contains_key(&key) {
                return Err(DbError::DuplicateKey {
                    table: self.schema.name.clone(),
                    key: row[pk].to_string(),
                });
            }
            self.pk_index.insert(key, self.rows.len());
        }
        self.rows.push(row);
        Ok(())
    }

    /// Point lookup by primary key.
    pub fn find_by_key(&self, key: &Value) -> Option<&Row> {
        let key = KeyValue::from_value(key)?;
        self.pk_index.get(&key).map(|&i| &self.rows[i])
    }

    /// Whether a primary-key value exists (foreign-key checks).
    pub fn contains_key(&self, key: &Value) -> bool {
        self.find_by_key(key).is_some()
    }

    /// Deletes all rows matching `pred`; returns how many were removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        let removed = before - self.rows.len();
        if removed > 0 {
            self.rebuild_index();
        }
        removed
    }

    /// Applies `update` to all rows matching `pred`; returns how many
    /// changed. The caller must re-validate PK/type invariants via
    /// [`Database`](crate::Database)-level update, which funnels here.
    pub(crate) fn update_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> bool,
        mut update: impl FnMut(&mut Row),
    ) -> usize {
        let mut changed = 0;
        for row in &mut self.rows {
            if pred(row) {
                update(row);
                changed += 1;
            }
        }
        if changed > 0 {
            self.rebuild_index();
        }
        changed
    }

    /// Re-validates every row after a bulk mutation.
    pub(crate) fn revalidate(&self) -> Result<(), DbError> {
        let mut seen = HashMap::new();
        for row in &self.rows {
            if let Some((pk, key)) = self.validate(row)? {
                if seen.insert(key, ()).is_some() {
                    return Err(DbError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: row[pk].to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    fn rebuild_index(&mut self) {
        self.pk_index.clear();
        if let Some(pk) = self.schema.primary_key_index() {
            for (i, row) in self.rows.iter().enumerate() {
                if let Some(key) = KeyValue::from_value(&row[pk]) {
                    self.pk_index.insert(key, i);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, ColumnType};

    fn table() -> Table {
        Table::new(
            TableSchema::new(
                "t",
                vec![
                    ColumnDef::primary("id", ColumnType::Integer),
                    ColumnDef::new("name", ColumnType::Text),
                ],
                vec![],
            )
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_lookup() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::text("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.find_by_key(&Value::Int(2)).unwrap()[1], Value::text("b"));
        assert!(t.find_by_key(&Value::Int(3)).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::text("a")]).unwrap();
        let e = t.insert(vec![Value::Int(1), Value::text("b")]).unwrap_err();
        assert!(matches!(e, DbError::DuplicateKey { .. }));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn null_key_rejected() {
        let mut t = table();
        let e = t.insert(vec![Value::Null, Value::text("a")]).unwrap_err();
        assert!(matches!(e, DbError::BadPrimaryKey { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = table();
        let e = t.insert(vec![Value::Int(1), Value::Int(2)]).unwrap_err();
        assert!(matches!(e, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = table();
        let e = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(
            e,
            DbError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn delete_rebuilds_index() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::text(format!("n{i}"))])
                .unwrap();
        }
        let removed = t.delete_where(|r| r[0].as_int().unwrap() % 2 == 0);
        assert_eq!(removed, 3);
        assert!(t.find_by_key(&Value::Int(0)).is_none());
        assert!(t.find_by_key(&Value::Int(3)).is_some());
    }

    #[test]
    fn update_rebuilds_index() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::text("a")]).unwrap();
        let n = t.update_where(|r| r[0] == Value::Int(1), |r| r[0] = Value::Int(99));
        assert_eq!(n, 1);
        assert!(t.find_by_key(&Value::Int(99)).is_some());
        assert!(t.find_by_key(&Value::Int(1)).is_none());
        t.revalidate().unwrap();
    }
}
