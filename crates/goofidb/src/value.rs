//! SQL values and their comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Double-precision float.
    Real(f64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// Convenience constructor from anything stringy.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Real` coerce to `f64`.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// The text content, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison with numeric coercion between `Int` and `Real`.
    ///
    /// Returns `None` when either side is NULL or the types are
    /// incomparable (number vs text) — such comparisons are "unknown" and
    /// filter rows out, as in SQL.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_real()?, b.as_real()?);
                Some(x.total_cmp(&y))
            }
        }
    }

    /// Total ordering used by `ORDER BY`: NULL < numbers < text.
    pub fn order_key(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Real(_) => 1,
                Value::Text(_) => 2,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => self.compare(other).unwrap_or(Ordering::Equal),
            o => o,
        }
    }

    /// SQL type name of the value, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INTEGER",
            Value::Real(_) => "REAL",
            Value::Text(_) => "TEXT",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Real(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

/// A hashable key derived from a value, used for primary-key indexes.
///
/// Only integer and text values may be primary keys (floats make unreliable
/// keys and are rejected at insert time).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    /// Integer key.
    Int(i64),
    /// Text key.
    Text(String),
}

impl KeyValue {
    /// Builds a key from a value; `None` for NULL/REAL.
    pub fn from_value(v: &Value) -> Option<KeyValue> {
        match v {
            Value::Int(i) => Some(KeyValue::Int(*i)),
            Value::Text(s) => Some(KeyValue::Text(s.clone())),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coerced_numeric_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::Real(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Real(1.5).compare(&Value::Int(2)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
    }

    #[test]
    fn text_vs_number_is_unknown() {
        assert_eq!(Value::text("a").compare(&Value::Int(1)), None);
    }

    #[test]
    fn order_key_total_order() {
        let mut vals = vec![
            Value::text("b"),
            Value::Int(10),
            Value::Null,
            Value::Real(2.5),
            Value::text("a"),
        ];
        vals.sort_by(|a, b| a.order_key(b));
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Real(2.5),
                Value::Int(10),
                Value::text("a"),
                Value::text("b"),
            ]
        );
    }

    #[test]
    fn key_values() {
        assert_eq!(KeyValue::from_value(&Value::Int(3)), Some(KeyValue::Int(3)));
        assert_eq!(
            KeyValue::from_value(&Value::text("x")),
            Some(KeyValue::Text("x".into()))
        );
        assert_eq!(KeyValue::from_value(&Value::Real(1.0)), None);
        assert_eq!(KeyValue::from_value(&Value::Null), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Real(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5u32), Value::Int(5));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(0.5), Value::Real(0.5));
    }
}
