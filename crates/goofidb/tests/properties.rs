//! Property-based tests for the database substrate.

use goofidb::{Database, Value};
use proptest::prelude::*;
use std::cmp::Ordering;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Real),
        // Text including separators and escapes the persistence layer
        // must survive.
        "[ -~\\t\\n]{0,24}".prop_map(Value::Text),
    ]
}

proptest! {
    #[test]
    fn insert_then_count_and_point_lookup(
        rows in proptest::collection::btree_map(any::<i64>(), arb_value(), 0..40),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
        let mut inserted = 0i64;
        for (id, v) in &rows {
            let text = match v {
                Value::Text(_) => v.clone(),
                other => Value::Text(other.to_string()),
            };
            db.insert("t", vec![Value::Int(*id), text]).unwrap();
            inserted += 1;
        }
        let r = db.query("SELECT COUNT(*) AS n FROM t").unwrap();
        prop_assert_eq!(r.scalar(), Some(&Value::Int(inserted)));
        for id in rows.keys() {
            prop_assert!(db.table("t").unwrap().find_by_key(&Value::Int(*id)).is_some());
        }
        db.check_integrity().unwrap();
    }

    #[test]
    fn duplicate_pk_always_rejected(id: i64) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)").unwrap();
        db.insert("t", vec![Value::Int(id)]).unwrap();
        prop_assert!(db.insert("t", vec![Value::Int(id)]).is_err());
        prop_assert_eq!(db.table("t").unwrap().len(), 1);
    }

    #[test]
    fn persistence_roundtrip_arbitrary_values(
        rows in proptest::collection::vec((any::<i64>(), arb_value()), 0..30),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, b REAL, c TEXT)")
            .unwrap();
        for (next_id, (_seed, v)) in rows.into_iter().enumerate() {
            let (a, b, c) = match v {
                Value::Int(x) => (Value::Int(x), Value::Null, Value::Null),
                Value::Real(x) => (Value::Null, Value::Real(x), Value::Null),
                Value::Text(x) => (Value::Null, Value::Null, Value::Text(x)),
                Value::Null => (Value::Null, Value::Null, Value::Null),
            };
            db.insert("t", vec![Value::Int(next_id as i64), a, b, c]).unwrap();
        }
        let restored = Database::load_from_string(&db.save_to_string()).unwrap();
        let orig = db.table("t").unwrap();
        let back = restored.table("t").unwrap();
        prop_assert_eq!(orig.len(), back.len());
        for (a, b) in orig.iter().zip(back.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                match (x, y) {
                    // NaN round-trips bit-exactly but NaN != NaN.
                    (Value::Real(p), Value::Real(q)) => {
                        prop_assert_eq!(p.to_bits(), q.to_bits());
                    }
                    _ => prop_assert_eq!(x, y),
                }
            }
        }
    }

    #[test]
    fn order_key_is_total_and_antisymmetric(a in arb_value(), b in arb_value(), c in arb_value()) {
        // Antisymmetry.
        match a.order_key(&b) {
            Ordering::Less => prop_assert_eq!(b.order_key(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.order_key(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.order_key(&a), Ordering::Equal),
        }
        // Transitivity of <=.
        if a.order_key(&b) != Ordering::Greater && b.order_key(&c) != Ordering::Greater {
            prop_assert_ne!(a.order_key(&c), Ordering::Greater);
        }
    }

    #[test]
    fn order_by_sorts_consistently(values in proptest::collection::vec(any::<i64>(), 0..30)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)").unwrap();
        for (i, v) in values.iter().enumerate() {
            db.insert("t", vec![Value::Int(i as i64), Value::Int(*v)]).unwrap();
        }
        let r = db.query("SELECT v FROM t ORDER BY v").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|row| row[0].as_int().unwrap()).collect();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn delete_preserves_integrity_with_fk(
        keep in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE parents (id INTEGER PRIMARY KEY)").unwrap();
        db.execute(
            "CREATE TABLE children (id INTEGER PRIMARY KEY, p INTEGER,
             FOREIGN KEY (p) REFERENCES parents(id))",
        )
        .unwrap();
        for i in 0..10i64 {
            db.insert("parents", vec![Value::Int(i)]).unwrap();
        }
        // Children reference the parents we intend to keep.
        let mut child_id = 0i64;
        for (i, k) in keep.iter().enumerate() {
            if *k {
                db.insert("children", vec![Value::Int(child_id), Value::Int(i as i64)]).unwrap();
                child_id += 1;
            }
        }
        // Deleting unreferenced parents succeeds; referenced ones fail.
        for (i, k) in keep.iter().enumerate() {
            let result = db.delete_where("parents", |r| r[0] == Value::Int(i as i64));
            prop_assert_eq!(result.is_err(), *k, "parent {}", i);
        }
        db.check_integrity().unwrap();
    }
}
