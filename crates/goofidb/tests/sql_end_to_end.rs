//! End-to-end SQL tests: the exact query shapes the GOOFI analysis phase
//! runs over `LoggedSystemState`.

use goofidb::{Database, DbError, Value};

fn campaign_db() -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE campaigns (name TEXT PRIMARY KEY, target TEXT, experiments INTEGER)")
        .unwrap();
    db.execute(
        "CREATE TABLE logged (experiment TEXT PRIMARY KEY, campaign TEXT,
         outcome TEXT, mechanism TEXT, cycles INTEGER, score REAL,
         FOREIGN KEY (campaign) REFERENCES campaigns(name))",
    )
    .unwrap();
    db.execute("INSERT INTO campaigns (name, target, experiments) VALUES ('c1', 'thor', 6)")
        .unwrap();
    db.execute("INSERT INTO campaigns (name, target, experiments) VALUES ('c2', 'thor', 2)")
        .unwrap();
    db.execute(
        "INSERT INTO logged (experiment, campaign, outcome, mechanism, cycles, score) VALUES
         ('e1', 'c1', 'detected', 'parity_icache', 100, 0.5),
         ('e2', 'c1', 'detected', 'parity_dcache', 150, 0.25),
         ('e3', 'c1', 'escaped',  NULL,            900, 0.0),
         ('e4', 'c1', 'latent',   NULL,            500, NULL),
         ('e5', 'c1', 'overwritten', NULL,         400, 1.0),
         ('e6', 'c1', 'detected', 'parity_icache', 120, 0.75),
         ('e7', 'c2', 'overwritten', NULL,         300, 0.5),
         ('e8', 'c2', 'escaped',  NULL,            800, 0.5)",
    )
    .unwrap();
    db
}

#[test]
fn outcome_distribution_group_by() {
    let db = campaign_db();
    let r = db
        .query(
            "SELECT outcome, COUNT(*) AS n FROM logged
             WHERE campaign = 'c1' GROUP BY outcome ORDER BY n DESC, outcome",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["outcome", "n"]);
    assert_eq!(r.rows[0], vec![Value::text("detected"), Value::Int(3)]);
    assert_eq!(r.len(), 4);
}

#[test]
fn per_mechanism_breakdown() {
    let db = campaign_db();
    let r = db
        .query(
            "SELECT mechanism, COUNT(*) AS n FROM logged
             WHERE outcome = 'detected' GROUP BY mechanism ORDER BY n DESC",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::text("parity_icache"));
    assert_eq!(r.rows[0][1], Value::Int(2));
}

#[test]
fn join_campaigns_to_logs() {
    let db = campaign_db();
    let r = db
        .query(
            "SELECT campaigns.target, logged.experiment FROM logged
             JOIN campaigns ON logged.campaign = campaigns.name
             WHERE campaigns.name = 'c2' ORDER BY experiment",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0], vec![Value::text("thor"), Value::text("e7")]);
}

#[test]
fn aliased_join() {
    let db = campaign_db();
    let r = db
        .query(
            "SELECT c.experiments AS total, COUNT(*) AS logged_n
             FROM logged AS l JOIN campaigns AS c ON l.campaign = c.name
             WHERE c.name = 'c1'",
        )
        .unwrap();
    assert_eq!(r.get(0, "total"), Some(&Value::Int(6)));
    assert_eq!(r.get(0, "logged_n"), Some(&Value::Int(6)));
}

#[test]
fn aggregates_sum_avg_min_max() {
    let db = campaign_db();
    let r = db
        .query(
            "SELECT SUM(cycles) AS s, AVG(cycles) AS a, MIN(cycles) AS lo, MAX(cycles) AS hi
             FROM logged WHERE campaign = 'c2'",
        )
        .unwrap();
    assert_eq!(r.get(0, "s"), Some(&Value::Int(1100)));
    assert_eq!(r.get(0, "a"), Some(&Value::Real(550.0)));
    assert_eq!(r.get(0, "lo"), Some(&Value::Int(300)));
    assert_eq!(r.get(0, "hi"), Some(&Value::Int(800)));
}

#[test]
fn count_column_skips_nulls() {
    let db = campaign_db();
    let r = db
        .query("SELECT COUNT(mechanism) AS m, COUNT(*) AS n FROM logged")
        .unwrap();
    assert_eq!(r.get(0, "m"), Some(&Value::Int(3)));
    assert_eq!(r.get(0, "n"), Some(&Value::Int(8)));
}

#[test]
fn aggregate_over_empty_input() {
    let db = campaign_db();
    let r = db
        .query("SELECT COUNT(*) AS n, SUM(cycles) AS s FROM logged WHERE outcome = 'nope'")
        .unwrap();
    assert_eq!(r.get(0, "n"), Some(&Value::Int(0)));
    assert_eq!(r.get(0, "s"), Some(&Value::Null));
}

#[test]
fn like_and_is_null_filters() {
    let db = campaign_db();
    let r = db
        .query("SELECT experiment FROM logged WHERE experiment LIKE 'e_' AND mechanism IS NULL ORDER BY experiment")
        .unwrap();
    assert_eq!(r.len(), 5);
    let r = db
        .query("SELECT experiment FROM logged WHERE mechanism IS NOT NULL ORDER BY experiment")
        .unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn null_comparisons_filter_rows_out() {
    let db = campaign_db();
    // score = 0.5 must not match NULL scores.
    let r = db
        .query("SELECT experiment FROM logged WHERE score = 0.5 ORDER BY experiment")
        .unwrap();
    assert_eq!(r.len(), 3);
    // NOT (score = 0.5) also excludes NULLs (three-valued logic).
    let r = db
        .query("SELECT experiment FROM logged WHERE NOT score = 0.5")
        .unwrap();
    assert_eq!(r.len(), 4);
}

#[test]
fn order_by_and_limit() {
    let db = campaign_db();
    let r = db
        .query("SELECT experiment, cycles FROM logged ORDER BY cycles DESC LIMIT 2")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::text("e3"));
    assert_eq!(r.rows[1][0], Value::text("e8"));
}

#[test]
fn select_star() {
    let db = campaign_db();
    let r = db.query("SELECT * FROM campaigns ORDER BY name").unwrap();
    assert_eq!(r.columns, vec!["name", "target", "experiments"]);
    assert_eq!(r.len(), 2);
}

#[test]
fn update_via_sql() {
    let mut db = campaign_db();
    let n = db
        .execute("UPDATE logged SET outcome = 'effective' WHERE outcome = 'escaped'")
        .unwrap();
    assert_eq!(n, 2);
    let r = db
        .query("SELECT COUNT(*) AS n FROM logged WHERE outcome = 'effective'")
        .unwrap();
    assert_eq!(r.get(0, "n"), Some(&Value::Int(2)));
}

#[test]
fn update_can_reference_row_values() {
    let mut db = campaign_db();
    db.execute("UPDATE logged SET cycles = mechanism WHERE experiment = 'e1'")
        .unwrap_err(); // type mismatch rolls back
    let r = db
        .query("SELECT cycles FROM logged WHERE experiment = 'e1'")
        .unwrap();
    assert_eq!(r.scalar(), Some(&Value::Int(100)));
}

#[test]
fn delete_via_sql_respects_fk() {
    let mut db = campaign_db();
    let e = db
        .execute("DELETE FROM campaigns WHERE name = 'c1'")
        .unwrap_err();
    assert!(matches!(e, DbError::ForeignKeyViolation { .. }));
    let n = db
        .execute("DELETE FROM logged WHERE campaign = 'c1'")
        .unwrap();
    assert_eq!(n, 6);
    let n = db
        .execute("DELETE FROM campaigns WHERE name = 'c1'")
        .unwrap();
    assert_eq!(n, 1);
}

#[test]
fn insert_via_sql_respects_fk() {
    let mut db = campaign_db();
    let e = db
        .execute(
            "INSERT INTO logged (experiment, campaign, outcome, mechanism, cycles, score)
             VALUES ('e9', 'missing', 'latent', NULL, 1, NULL)",
        )
        .unwrap_err();
    assert!(matches!(e, DbError::ForeignKeyViolation { .. }));
}

#[test]
fn select_statement_routing() {
    let mut db = campaign_db();
    assert!(db.execute("SELECT * FROM campaigns").is_err());
    assert!(db.query("DELETE FROM logged").is_err());
}

#[test]
fn ambiguous_column_reported() {
    let db = campaign_db();
    // `campaign` exists only in logged, `name` only in campaigns — ok.
    db.query("SELECT name FROM logged JOIN campaigns ON campaign = name")
        .unwrap();
    // But a column present in both sides without a qualifier must error
    // (construct one by self-joining).
    let e = db
        .query("SELECT outcome FROM logged AS a JOIN logged AS b ON a.experiment = b.experiment")
        .unwrap_err();
    assert!(matches!(e, DbError::Execution(_)));
}

#[test]
fn unknown_entities_reported() {
    let db = campaign_db();
    assert!(matches!(
        db.query("SELECT x FROM nope").unwrap_err(),
        DbError::NoSuchTable(_)
    ));
    assert!(matches!(
        db.query("SELECT nope FROM logged").unwrap_err(),
        DbError::NoSuchColumn(_)
    ));
    assert!(matches!(
        db.query("SELECT outcome FROM logged ORDER BY nope")
            .unwrap_err(),
        DbError::NoSuchColumn(_)
    ));
}

#[test]
fn persistence_roundtrip_of_campaign_db() {
    let db = campaign_db();
    let restored = Database::load_from_string(&db.save_to_string()).unwrap();
    let a = restored
        .query("SELECT outcome, COUNT(*) AS n FROM logged GROUP BY outcome ORDER BY outcome")
        .unwrap();
    let b = db
        .query("SELECT outcome, COUNT(*) AS n FROM logged GROUP BY outcome ORDER BY outcome")
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn select_distinct_removes_duplicates() {
    let db = campaign_db();
    let r = db
        .query("SELECT DISTINCT outcome FROM logged ORDER BY outcome")
        .unwrap();
    assert_eq!(r.len(), 4);
    let all = db.query("SELECT outcome FROM logged").unwrap();
    assert_eq!(all.len(), 8);
}

#[test]
fn in_list_filter() {
    let db = campaign_db();
    let r = db
        .query("SELECT experiment FROM logged WHERE outcome IN ('escaped', 'latent') ORDER BY experiment")
        .unwrap();
    assert_eq!(r.len(), 3); // e3, e4, e8
                            // NULL never matches an IN list.
    let r = db
        .query("SELECT experiment FROM logged WHERE mechanism IN ('parity_icache')")
        .unwrap();
    assert_eq!(r.len(), 2);
}

#[test]
fn between_is_inclusive() {
    let db = campaign_db();
    let r = db
        .query("SELECT experiment, cycles FROM logged WHERE cycles BETWEEN 100 AND 400 ORDER BY cycles")
        .unwrap();
    // Inclusive on both ends: 100, 120, 150, 300, 400.
    assert_eq!(r.len(), 5);
    assert_eq!(r.rows[0][1], Value::Int(100));
    assert_eq!(r.rows[4][1], Value::Int(400));
}

#[test]
fn distinct_with_aggregate_groups() {
    let db = campaign_db();
    // DISTINCT over an already-grouped result is a no-op but must parse.
    let r = db
        .query("SELECT DISTINCT campaign FROM logged ORDER BY campaign")
        .unwrap();
    assert_eq!(r.len(), 2);
}
