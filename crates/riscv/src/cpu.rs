//! The RV32I core: fetch/decode/execute, detections, ports, watchdog,
//! debug unit.
//!
//! # The ECALL environment convention
//!
//! Thor has dedicated `halt`/`sync`/`in`/`out`/`trap` instructions; RV32I
//! reserves all environment interaction for `ecall`. The call code lives in
//! `a7` (x17), arguments in `a0`/`a1`:
//!
//! | `a7`                | effect                                          |
//! |---------------------|-------------------------------------------------|
//! | [`ECALL_HALT`]  (0) | stop: the workload is complete                  |
//! | [`ECALL_SYNC`]  (1) | iteration boundary, tag = `a0` (environment exchange point) |
//! | [`ECALL_IN`]    (2) | `a0 = in_port[a0 % 4]`                          |
//! | [`ECALL_OUT`]   (3) | `out_port[a0 % 4] = a1`                         |
//! | [`ECALL_ASSERT`](4) | executable assertion failed, id = `a0`          |
//!
//! Unknown codes latch an assertion detection carrying the code — an
//! environment call the environment does not know is itself an error the
//! workload's software EDM layer reports.

use crate::isa::{decode, AluImmOp, AluOp, BranchCond, Instr, LoadWidth, Reg, ShiftOp, StoreWidth};
use crate::memory::{Memory, MemoryError};
use scanchain::{BusEvent, DebugEvent, DebugUnit};
use std::fmt;

/// Number of I/O ports in each direction.
pub const PORT_COUNT: usize = 4;

/// `ecall` code: halt the workload.
pub const ECALL_HALT: u32 = 0;
/// `ecall` code: iteration boundary (control-loop workloads).
pub const ECALL_SYNC: u32 = 1;
/// `ecall` code: read an input port into `a0`.
pub const ECALL_IN: u32 = 2;
/// `ecall` code: write `a1` to an output port.
pub const ECALL_OUT: u32 = 3;
/// `ecall` code: executable assertion failure, id in `a0`.
pub const ECALL_ASSERT: u32 = 4;

/// A loadable RV32I program image.
///
/// `words` are placed at byte address 0; `code_words` marks the
/// write-protected code segment in words; `entry` is the initial PC in
/// *bytes* (RV32I PCs are byte addresses, unlike Thor's word PCs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Program and initial data, word 0 first.
    pub words: Vec<u32>,
    /// Length of the write-protected code prefix, in words.
    pub code_words: u32,
    /// Initial program counter, in bytes (word-aligned).
    pub entry: u32,
}

/// Construction-time CPU configuration.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Main memory size in words.
    pub mem_words: usize,
    /// Watchdog budget in cycles; `None` disables the watchdog.
    pub watchdog_cycles: Option<u64>,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            mem_words: crate::memory::DEFAULT_WORDS,
            watchdog_cycles: Some(2_000_000),
        }
    }
}

/// An error detected by one of the core's mechanisms.
///
/// RV32I folds what Thor spreads over a PSW-maskable EDM set into the
/// architectural trap causes; none of them are maskable here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Detection {
    /// A reserved or corrupted encoding reached the decoder.
    IllegalInstr,
    /// Misaligned load/store/fetch or jump target.
    Misaligned,
    /// Out-of-range access or store into the protected code segment.
    AccessFault,
    /// Fetch or jump target outside the code segment.
    ControlFlow,
    /// The program executed `ebreak`.
    Ebreak,
    /// Software assertion (`ecall` with [`ECALL_ASSERT`]) with this id.
    Assertion(u16),
}

impl Detection {
    /// Stable mechanism name used in database logs and report tables.
    pub fn mechanism(&self) -> &'static str {
        match self {
            Detection::IllegalInstr => "illegal_instr",
            Detection::Misaligned => "misaligned",
            Detection::AccessFault => "access_fault",
            Detection::ControlFlow => "control_flow",
            Detection::Ebreak => "ebreak",
            Detection::Assertion(_) => "assertion",
        }
    }

    /// Whether this is a hardware mechanism (as opposed to a software
    /// assertion embedded in the workload).
    pub fn is_hardware(&self) -> bool {
        !matches!(self, Detection::Assertion(_))
    }

    /// Encodes to a compact code for the scan-visible status register.
    pub fn encode(&self) -> u32 {
        match self {
            Detection::IllegalInstr => 1,
            Detection::Misaligned => 2,
            Detection::AccessFault => 3,
            Detection::ControlFlow => 4,
            Detection::Ebreak => 5,
            Detection::Assertion(id) => 6 | ((*id as u32) << 8),
        }
    }

    /// Decodes a status-register value; 0 means "no detection".
    pub fn decode(code: u32) -> Option<Detection> {
        match code & 0xFF {
            1 => Some(Detection::IllegalInstr),
            2 => Some(Detection::Misaligned),
            3 => Some(Detection::AccessFault),
            4 => Some(Detection::ControlFlow),
            5 => Some(Detection::Ebreak),
            6 => Some(Detection::Assertion((code >> 8) as u16)),
            _ => None,
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detection::Assertion(id) => write!(f, "assertion({id})"),
            other => f.write_str(other.mechanism()),
        }
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `ecall` with [`ECALL_HALT`].
    Halted,
    /// An error detection mechanism fired.
    Detected(Detection),
    /// An armed debug condition fired (breakpoint reached).
    DebugEvent(DebugEvent),
    /// The workload executed `ecall` with [`ECALL_SYNC`] — an iteration
    /// boundary at which the tool exchanges data with the environment.
    Sync {
        /// The tag passed in `a0`.
        tag: u16,
        /// Completed loop iterations so far.
        iteration: u64,
    },
    /// The watchdog cycle budget was exhausted (time-out termination).
    Timeout,
    /// The per-call instruction budget of [`Cpu::run`] was exhausted.
    InstrLimit,
}

/// Record of the architectural reads/writes of one instruction, used by
/// the pre-injection (liveness) analysis. Register indices skip the
/// hardwired `x0`; memory addresses are in words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessLog {
    /// Program counter of the instruction, in bytes.
    pub pc: u32,
    /// Registers read.
    pub reg_reads: Vec<Reg>,
    /// Registers written.
    pub reg_writes: Vec<Reg>,
    /// Memory words read.
    pub mem_reads: Vec<u32>,
    /// Memory words written.
    pub mem_writes: Vec<u32>,
}

impl AccessLog {
    fn clear(&mut self) {
        self.pc = 0;
        self.reg_reads.clear();
        self.reg_writes.clear();
        self.mem_reads.clear();
        self.mem_writes.clear();
    }
}

/// The simulated RV32I processor.
///
/// See the crate docs for an end-to-end example. The scan-chain view of
/// the core lives in [`crate::scan`].
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) regs: [u32; Reg::COUNT],
    /// Byte-addressed program counter, word-aligned while executing.
    pub(crate) pc: u32,
    pub(crate) mem: Memory,
    pub(crate) in_ports: [u32; PORT_COUNT],
    pub(crate) out_ports: [u32; PORT_COUNT],
    pub(crate) cycles: u64,
    pub(crate) instret: u64,
    pub(crate) iterations: u64,
    pub(crate) debug: DebugUnit,
    pub(crate) detection: Option<Detection>,
    pub(crate) halted: bool,
    watchdog: Option<u64>,
    entry: u32,
    initial_sp: u32,
    scratch_log: AccessLog,
    pub(crate) chains: crate::scan::ChainSet,
}

impl Cpu {
    /// Creates a CPU with zeroed state.
    ///
    /// # Panics
    ///
    /// Panics if the configured memory does not fit the 32-bit byte
    /// address space (`mem_words > u32::MAX / 4`).
    pub fn new(config: CpuConfig) -> Self {
        assert!(
            config.mem_words <= (u32::MAX / 4) as usize,
            "memory exceeds the 32-bit byte address space"
        );
        let initial_sp = config.mem_words as u32 * 4 - 4;
        let mut regs = [0; Reg::COUNT];
        regs[Reg::SP.index()] = initial_sp;
        Cpu {
            regs,
            pc: 0,
            mem: Memory::new(config.mem_words),
            in_ports: [0; PORT_COUNT],
            out_ports: [0; PORT_COUNT],
            cycles: 0,
            instret: 0,
            iterations: 0,
            debug: DebugUnit::new(),
            detection: None,
            halted: false,
            watchdog: config.watchdog_cycles,
            entry: 0,
            initial_sp,
            scratch_log: AccessLog::default(),
            chains: crate::scan::ChainSet::new(),
        }
    }

    /// Downloads an image: code at word 0, protection boundary at the
    /// image's code/data split, then resets the core.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the image does not fit.
    pub fn load_image(&mut self, image: &Image) -> Result<(), MemoryError> {
        self.mem.clear();
        self.mem.load_block(0, &image.words)?;
        self.mem.set_code_segment(image.code_words);
        self.entry = image.entry;
        self.reset();
        Ok(())
    }

    /// Resets the core (registers, counters, detection latch, ports)
    /// while leaving main memory intact. Equivalent to pulsing reset.
    pub fn reset(&mut self) {
        self.regs = [0; Reg::COUNT];
        self.regs[Reg::SP.index()] = self.initial_sp;
        self.pc = self.entry;
        self.in_ports = [0; PORT_COUNT];
        self.out_ports = [0; PORT_COUNT];
        self.cycles = 0;
        self.instret = 0;
        self.iterations = 0;
        self.debug.reset_counters();
        self.detection = None;
        self.halted = false;
    }

    /// Main memory (tool-side access).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable main memory (tool-side access, used by SWIFI).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The debug-event unit.
    pub fn debug_unit(&self) -> &DebugUnit {
        &self.debug
    }

    /// Mutable debug-event unit (breakpoint programming).
    pub fn debug_unit_mut(&mut self) -> &mut DebugUnit {
        &mut self.debug
    }

    /// Reads a register (`x0` always reads 0).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (tool-side; writes to `x0` are dropped).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        if r != Reg::X0 {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter, in bytes.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (tool-side), in bytes.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Cycle count since reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired since reset.
    pub fn instructions(&self) -> u64 {
        self.instret
    }

    /// Completed sync iterations since reset.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Latched detection, if any.
    pub fn detection(&self) -> Option<Detection> {
        self.detection
    }

    /// Whether the core has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Drives an input port (environment simulator → target).
    ///
    /// # Panics
    ///
    /// Panics if `port >= PORT_COUNT`.
    pub fn set_in_port(&mut self, port: usize, value: u32) {
        self.in_ports[port] = value;
    }

    /// Reads an output port latch (target → environment simulator).
    ///
    /// # Panics
    ///
    /// Panics if `port >= PORT_COUNT`.
    pub fn out_port(&self, port: usize) -> u32 {
        self.out_ports[port]
    }

    /// Runs until a stop condition, retiring at most `max_instructions`.
    pub fn run(&mut self, max_instructions: u64) -> StopReason {
        for _ in 0..max_instructions {
            if let Some(stop) = self.step() {
                return stop;
            }
        }
        StopReason::InstrLimit
    }

    /// Executes one instruction; `None` means execution continues.
    pub fn step(&mut self) -> Option<StopReason> {
        self.step_inner(false)
    }

    /// Executes one instruction and fills `log` with its architectural
    /// reads and writes (reference-trace collection for the pre-injection
    /// analysis).
    pub fn step_logged(&mut self, log: &mut AccessLog) -> Option<StopReason> {
        self.scratch_log.clear();
        let r = self.step_inner(true);
        std::mem::swap(log, &mut self.scratch_log);
        r
    }

    fn step_inner(&mut self, want_log: bool) -> Option<StopReason> {
        if self.halted {
            return Some(StopReason::Halted);
        }
        if let Some(d) = self.detection {
            return Some(StopReason::Detected(d));
        }
        if let Some(budget) = self.watchdog {
            if self.cycles >= budget {
                return Some(StopReason::Timeout);
            }
        }
        // Breakpoint check on fetch, before the instruction executes.
        if let Some(ev) = self.debug.observe(BusEvent::Fetch { pc: self.pc }) {
            return Some(StopReason::DebugEvent(ev));
        }
        if want_log {
            self.scratch_log.pc = self.pc;
        }

        // Fetch-address checks: alignment, then control flow.
        if !self.pc.is_multiple_of(4) {
            return Some(self.detect(Detection::Misaligned));
        }
        let word_addr = self.pc / 4;
        if word_addr >= self.mem.code_segment() {
            return Some(self.detect(Detection::ControlFlow));
        }
        let word = match self.mem.read(word_addr) {
            Ok(w) => w,
            Err(_) => return Some(self.detect(Detection::AccessFault)),
        };

        // Decode (strict: any reserved encoding traps).
        let instr = match decode(word) {
            Ok(i) => i,
            Err(_) => return Some(self.detect(Detection::IllegalInstr)),
        };

        // Execute.
        let stop = self.execute(instr, want_log);
        self.instret += 1;
        if stop.is_some() {
            return stop;
        }
        // Surface any debug event latched by a data-access/branch/call/
        // cycle trigger during execution.
        self.debug.pending().map(StopReason::DebugEvent)
    }

    fn detect(&mut self, d: Detection) -> StopReason {
        self.detection = Some(d);
        StopReason::Detected(d)
    }

    fn log_reg_read(&mut self, want_log: bool, r: Reg) -> u32 {
        if want_log && r != Reg::X0 {
            self.scratch_log.reg_reads.push(r);
        }
        self.regs[r.index()]
    }

    fn log_reg_write(&mut self, want_log: bool, r: Reg, v: u32) {
        if r == Reg::X0 {
            return; // x0 is hardwired to zero
        }
        if want_log {
            self.scratch_log.reg_writes.push(r);
        }
        self.regs[r.index()] = v;
    }

    /// Loads through the data bus. Byte addresses; returns `Err(stop)` on
    /// detection.
    fn data_load(
        &mut self,
        width: LoadWidth,
        addr: u32,
        want_log: bool,
    ) -> Result<u32, StopReason> {
        let align = match width {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        };
        if !addr.is_multiple_of(align) {
            return Err(self.detect(Detection::Misaligned));
        }
        let word_addr = addr / 4;
        let word = match self.mem.read(word_addr) {
            Ok(w) => w,
            Err(_) => return Err(self.detect(Detection::AccessFault)),
        };
        if want_log {
            self.scratch_log.mem_reads.push(word_addr);
        }
        self.debug.observe(BusEvent::DataRead { addr: word_addr });
        let value = match width {
            LoadWidth::W => word,
            LoadWidth::B => (word >> (8 * (addr % 4))) as u8 as i8 as i32 as u32,
            LoadWidth::Bu => (word >> (8 * (addr % 4))) as u8 as u32,
            LoadWidth::H => (word >> (8 * (addr % 4))) as u16 as i16 as i32 as u32,
            LoadWidth::Hu => (word >> (8 * (addr % 4))) as u16 as u32,
        };
        Ok(value)
    }

    /// Stores through the data bus (read-modify-write for sub-word
    /// widths). Returns `Err(stop)` on detection.
    fn data_store(
        &mut self,
        width: StoreWidth,
        addr: u32,
        value: u32,
        want_log: bool,
    ) -> Result<(), StopReason> {
        let align = match width {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        };
        if !addr.is_multiple_of(align) {
            return Err(self.detect(Detection::Misaligned));
        }
        let word_addr = addr / 4;
        let merged = match width {
            StoreWidth::W => value,
            StoreWidth::B | StoreWidth::H => {
                let old = match self.mem.read(word_addr) {
                    Ok(w) => w,
                    Err(_) => return Err(self.detect(Detection::AccessFault)),
                };
                let (mask, shift) = match width {
                    StoreWidth::B => (0xFFu32, 8 * (addr % 4)),
                    StoreWidth::H => (0xFFFFu32, 8 * (addr % 4)),
                    StoreWidth::W => unreachable!(),
                };
                (old & !(mask << shift)) | ((value & mask) << shift)
            }
        };
        if self.mem.write(word_addr, merged).is_err() {
            // Out of range or a store into the protected code segment:
            // both surface as an access fault.
            return Err(self.detect(Detection::AccessFault));
        }
        if want_log {
            self.scratch_log.mem_writes.push(word_addr);
        }
        self.debug.observe(BusEvent::DataWrite { addr: word_addr });
        Ok(())
    }

    /// Transfers control to `target` (branch/jal/jalr). Returns
    /// `Err(stop)` when the target is rejected.
    fn jump(&mut self, target: u32, is_call: bool) -> Result<(), StopReason> {
        if !target.is_multiple_of(4) {
            return Err(self.detect(Detection::Misaligned));
        }
        if target / 4 >= self.mem.code_segment() {
            return Err(self.detect(Detection::ControlFlow));
        }
        self.pc = target;
        let ev = if is_call {
            BusEvent::Call { target }
        } else {
            BusEvent::Branch { target }
        };
        self.debug.observe(ev);
        Ok(())
    }

    fn execute(&mut self, instr: Instr, want_log: bool) -> Option<StopReason> {
        let next_pc = self.pc.wrapping_add(4);
        let mut pc_set = false;
        let mut cost = 1u64;

        macro_rules! stop_on {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(stop) => {
                        self.debug.on_cycles(cost);
                        return Some(stop);
                    }
                }
            };
        }

        match instr {
            Instr::Lui { rd, imm20 } => {
                self.log_reg_write(want_log, rd, imm20 << 12);
            }
            Instr::Auipc { rd, imm20 } => {
                self.log_reg_write(want_log, rd, self.pc.wrapping_add(imm20 << 12));
            }
            Instr::Jal { rd, offset } => {
                cost += 2;
                let target = self.pc.wrapping_add(offset as u32);
                self.log_reg_write(want_log, rd, next_pc);
                stop_on!(self.jump(target, rd == Reg::RA));
                pc_set = true;
            }
            Instr::Jalr { rd, rs1, offset } => {
                cost += 2;
                let base = self.log_reg_read(want_log, rs1);
                let target = base.wrapping_add(offset as u32) & !1;
                self.log_reg_write(want_log, rd, next_pc);
                stop_on!(self.jump(target, rd == Reg::RA));
                pc_set = true;
            }
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.log_reg_read(want_log, rs1);
                let b = self.log_reg_read(want_log, rs2);
                let taken = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i32) < (b as i32),
                    BranchCond::Ge => (a as i32) >= (b as i32),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if taken {
                    cost += 1;
                    let target = self.pc.wrapping_add(offset as u32);
                    stop_on!(self.jump(target, false));
                    pc_set = true;
                }
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                cost += 2;
                let base = self.log_reg_read(want_log, rs1);
                let addr = base.wrapping_add(offset as u32);
                let v = stop_on!(self.data_load(width, addr, want_log));
                self.log_reg_write(want_log, rd, v);
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                cost += 2;
                let base = self.log_reg_read(want_log, rs1);
                let addr = base.wrapping_add(offset as u32);
                let v = self.log_reg_read(want_log, rs2);
                stop_on!(self.data_store(width, addr, v, want_log));
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let a = self.log_reg_read(want_log, rs1);
                let simm = imm as u32;
                let r = match op {
                    AluImmOp::Addi => a.wrapping_add(simm),
                    AluImmOp::Slti => ((a as i32) < imm) as u32,
                    AluImmOp::Sltiu => (a < simm) as u32,
                    AluImmOp::Xori => a ^ simm,
                    AluImmOp::Ori => a | simm,
                    AluImmOp::Andi => a & simm,
                };
                self.log_reg_write(want_log, rd, r);
            }
            Instr::Shift { op, rd, rs1, shamt } => {
                let a = self.log_reg_read(want_log, rs1);
                let r = match op {
                    ShiftOp::Sll => a << shamt,
                    ShiftOp::Srl => a >> shamt,
                    ShiftOp::Sra => ((a as i32) >> shamt) as u32,
                };
                self.log_reg_write(want_log, rd, r);
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let a = self.log_reg_read(want_log, rs1);
                let b = self.log_reg_read(want_log, rs2);
                let r = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Sll => a.wrapping_shl(b & 31),
                    AluOp::Slt => ((a as i32) < (b as i32)) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Xor => a ^ b,
                    AluOp::Srl => a.wrapping_shr(b & 31),
                    AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
                    AluOp::Or => a | b,
                    AluOp::And => a & b,
                };
                self.log_reg_write(want_log, rd, r);
            }
            Instr::Fence => {}
            Instr::Ecall => {
                let code = self.log_reg_read(want_log, Reg::A7);
                match code {
                    ECALL_HALT => {
                        self.halted = true;
                        self.cycles += cost;
                        self.debug.on_cycles(cost);
                        return Some(StopReason::Halted);
                    }
                    ECALL_SYNC => {
                        let tag = self.log_reg_read(want_log, Reg::A0) as u16;
                        self.iterations += 1;
                        self.pc = next_pc;
                        self.cycles += cost;
                        self.debug.on_cycles(cost);
                        return Some(StopReason::Sync {
                            tag,
                            iteration: self.iterations,
                        });
                    }
                    ECALL_IN => {
                        let port = self.log_reg_read(want_log, Reg::A0) as usize % PORT_COUNT;
                        let v = self.in_ports[port];
                        self.log_reg_write(want_log, Reg::A0, v);
                    }
                    ECALL_OUT => {
                        let port = self.log_reg_read(want_log, Reg::A0) as usize % PORT_COUNT;
                        let v = self.log_reg_read(want_log, Reg::A1);
                        self.out_ports[port] = v;
                    }
                    ECALL_ASSERT => {
                        let id = self.log_reg_read(want_log, Reg::A0) as u16;
                        return Some(self.detect(Detection::Assertion(id)));
                    }
                    unknown => {
                        return Some(self.detect(Detection::Assertion(unknown as u16)));
                    }
                }
            }
            Instr::Ebreak => {
                return Some(self.detect(Detection::Ebreak));
            }
        }

        if !pc_set {
            self.pc = next_pc;
        }
        self.cycles += cost;
        self.debug.on_cycles(cost);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::encode;

    // Terse machine-code builders for the tests.
    fn addi(rd: u8, rs1: u8, imm: i32) -> u32 {
        encode(Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            imm,
        })
    }

    fn ecall(code: u32, words: &mut Vec<u32>) {
        words.push(addi(17, 0, code as i32));
        words.push(encode(Instr::Ecall));
    }

    fn image(words: Vec<u32>) -> Image {
        let code_words = words.len() as u32;
        Image {
            words,
            code_words,
            entry: 0,
        }
    }

    fn run_words(words: Vec<u32>) -> (Cpu, StopReason) {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        let stop = cpu.run(1_000_000);
        (cpu, stop)
    }

    fn halting(mut words: Vec<u32>) -> Vec<u32> {
        ecall(ECALL_HALT, &mut words);
        words
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, stop) = run_words(halting(vec![
            addi(5, 0, 6),
            addi(6, 0, 7),
            encode(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(7),
                rs1: Reg::new(5),
                rs2: Reg::new(6),
            }),
        ]));
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(7)), 13);
        assert_eq!(cpu.instructions(), 5);
        assert!(cpu.cycles() >= 5);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, stop) = run_words(halting(vec![addi(0, 0, 99)]));
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::X0), 0);
    }

    #[test]
    fn loop_with_branch_sums() {
        // x5 = 10; x6 = 0; loop: x6 += x5; x5 -= 1; bne x5, x0, loop; halt.
        let (cpu, stop) = run_words(halting(vec![
            addi(5, 0, 10),
            addi(6, 0, 0),
            encode(Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(6),
                rs1: Reg::new(6),
                rs2: Reg::new(5),
            }),
            addi(5, 5, -1),
            encode(Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::new(5),
                rs2: Reg::X0,
                offset: -8,
            }),
        ]));
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(6)), 55);
    }

    #[test]
    fn word_load_store_roundtrip() {
        let (cpu, stop) = run_words(halting(vec![
            addi(5, 0, 123),
            encode(Instr::Store {
                width: StoreWidth::W,
                rs1: Reg::X0,
                rs2: Reg::new(5),
                offset: 800,
            }),
            encode(Instr::Load {
                width: LoadWidth::W,
                rd: Reg::new(6),
                rs1: Reg::X0,
                offset: 800,
            }),
        ]));
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(6)), 123);
        assert_eq!(cpu.memory().read_raw(200).unwrap(), 123);
    }

    #[test]
    fn byte_and_half_accesses_sign_extend() {
        let (cpu, stop) = run_words(halting(vec![
            addi(5, 0, -1), // 0xFFFF_FFFF
            encode(Instr::Store {
                width: StoreWidth::B,
                rs1: Reg::X0,
                rs2: Reg::new(5),
                offset: 801, // byte 1 of word 200
            }),
            encode(Instr::Load {
                width: LoadWidth::B,
                rd: Reg::new(6),
                rs1: Reg::X0,
                offset: 801,
            }),
            encode(Instr::Load {
                width: LoadWidth::Bu,
                rd: Reg::new(7),
                rs1: Reg::X0,
                offset: 801,
            }),
            encode(Instr::Load {
                width: LoadWidth::Hu,
                rd: Reg::new(8),
                rs1: Reg::X0,
                offset: 800,
            }),
        ]));
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.memory().read_raw(200).unwrap(), 0x0000_FF00);
        assert_eq!(cpu.reg(Reg::new(6)), 0xFFFF_FFFF); // lb sign-extends
        assert_eq!(cpu.reg(Reg::new(7)), 0xFF); // lbu zero-extends
        assert_eq!(cpu.reg(Reg::new(8)), 0xFF00);
    }

    #[test]
    fn jal_and_jalr_call_return() {
        // jal ra, +12 (to the double routine); after return halt.
        // double: x5 += x5; jalr x0, ra, 0.
        let mut words = vec![
            addi(5, 0, 21),
            encode(Instr::Jal {
                rd: Reg::RA,
                offset: 12, // jal is at byte 4; the routine at byte 16
            }),
        ];
        ecall(ECALL_HALT, &mut words); // words 2,3
        words.push(encode(Instr::Alu {
            op: AluOp::Add,
            rd: Reg::new(5),
            rs1: Reg::new(5),
            rs2: Reg::new(5),
        })); // word 4 (byte 16)
        words.push(encode(Instr::Jalr {
            rd: Reg::X0,
            rs1: Reg::RA,
            offset: 0,
        }));
        let (cpu, stop) = run_words(words);
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(5)), 42);
    }

    #[test]
    fn ecall_io_ports_roundtrip() {
        // a0 = 0 (port); ecall IN; a1 = a0 + 1; a0 = 2 (port); ecall OUT.
        let mut words = vec![addi(10, 0, 0)];
        ecall(ECALL_IN, &mut words);
        words.push(addi(11, 10, 1));
        words.push(addi(10, 0, 2));
        ecall(ECALL_OUT, &mut words);
        let words = halting(words);
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        cpu.set_in_port(0, 41);
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.out_port(2), 42);
    }

    #[test]
    fn sync_reports_iterations() {
        // loop: a0 = 7; ecall SYNC; jal x0, loop.
        let mut words = vec![addi(10, 0, 7)];
        ecall(ECALL_SYNC, &mut words);
        words.push(encode(Instr::Jal {
            rd: Reg::X0,
            offset: -12,
        }));
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        assert_eq!(
            cpu.run(100),
            StopReason::Sync {
                tag: 7,
                iteration: 1
            }
        );
        assert_eq!(
            cpu.run(100),
            StopReason::Sync {
                tag: 7,
                iteration: 2
            }
        );
        assert_eq!(cpu.iterations(), 2);
    }

    #[test]
    fn assertion_and_unknown_ecall_detected() {
        let mut words = vec![addi(10, 0, 9)];
        ecall(ECALL_ASSERT, &mut words);
        let (_, stop) = run_words(words);
        assert_eq!(stop, StopReason::Detected(Detection::Assertion(9)));

        let mut words = Vec::new();
        ecall(77, &mut words);
        let (_, stop) = run_words(words);
        assert_eq!(stop, StopReason::Detected(Detection::Assertion(77)));
    }

    #[test]
    fn ebreak_detected() {
        let (_, stop) = run_words(vec![encode(Instr::Ebreak)]);
        assert_eq!(stop, StopReason::Detected(Detection::Ebreak));
    }

    #[test]
    fn illegal_instruction_detected() {
        let (_, stop) = run_words(vec![0xFFFF_FFFF]);
        assert_eq!(stop, StopReason::Detected(Detection::IllegalInstr));
        // The all-zero word (wild jump into zeroed data) also traps.
        let (_, stop) = run_words(vec![0x0000_0000]);
        assert_eq!(stop, StopReason::Detected(Detection::IllegalInstr));
    }

    #[test]
    fn misaligned_load_detected() {
        let (_, stop) = run_words(halting(vec![encode(Instr::Load {
            width: LoadWidth::W,
            rd: Reg::new(5),
            rs1: Reg::X0,
            offset: 802,
        })]));
        assert_eq!(stop, StopReason::Detected(Detection::Misaligned));
    }

    #[test]
    fn store_to_code_is_access_fault() {
        let (_, stop) = run_words(halting(vec![
            addi(5, 0, 1),
            encode(Instr::Store {
                width: StoreWidth::W,
                rs1: Reg::X0,
                rs2: Reg::new(5),
                offset: 0,
            }),
        ]));
        assert_eq!(stop, StopReason::Detected(Detection::AccessFault));
    }

    #[test]
    fn wild_jump_is_control_flow_error() {
        let (_, stop) = run_words(halting(vec![encode(Instr::Jalr {
            rd: Reg::X0,
            rs1: Reg::X0,
            offset: 2040, // far outside the code segment
        })]));
        assert_eq!(stop, StopReason::Detected(Detection::ControlFlow));
    }

    #[test]
    fn watchdog_times_out_infinite_loop() {
        let words = vec![encode(Instr::Jal {
            rd: Reg::X0,
            offset: 0,
        })];
        let mut cpu = Cpu::new(CpuConfig {
            watchdog_cycles: Some(500),
            ..CpuConfig::default()
        });
        cpu.load_image(&image(words)).unwrap();
        assert_eq!(cpu.run(u64::MAX), StopReason::Timeout);
    }

    #[test]
    fn instr_limit_stops_run() {
        let words = vec![encode(Instr::Jal {
            rd: Reg::X0,
            offset: 0,
        })];
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        assert_eq!(cpu.run(10), StopReason::InstrLimit);
    }

    #[test]
    fn pc_breakpoint_halts_before_execution() {
        use scanchain::DebugCondition;
        let words = halting(vec![addi(5, 0, 1), addi(6, 0, 2)]);
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        // PCs are byte addresses: the second instruction is at byte 4.
        cpu.debug_unit_mut().arm(DebugCondition::PcEquals(4));
        match cpu.run(100) {
            StopReason::DebugEvent(ev) => {
                assert_eq!(ev.condition, DebugCondition::PcEquals(4));
            }
            other => panic!("expected debug event, got {other:?}"),
        }
        assert_eq!(cpu.reg(Reg::new(6)), 0);
        cpu.debug_unit_mut().disarm_all();
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(6)), 2);
    }

    #[test]
    fn reset_preserves_memory_but_clears_state() {
        let words = halting(vec![
            addi(5, 0, 5),
            encode(Instr::Store {
                width: StoreWidth::W,
                rs1: Reg::X0,
                rs2: Reg::new(5),
                offset: 400,
            }),
        ]);
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        cpu.run(100);
        cpu.reset();
        assert_eq!(cpu.reg(Reg::new(5)), 0);
        assert_eq!(cpu.pc(), 0);
        assert!(!cpu.is_halted());
        assert_eq!(cpu.memory().read_raw(100).unwrap(), 5);
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(5)), 5);
    }

    #[test]
    fn step_logged_records_accesses() {
        let words = halting(vec![
            addi(5, 0, 3),
            encode(Instr::Store {
                width: StoreWidth::W,
                rs1: Reg::X0,
                rs2: Reg::new(5),
                offset: 400,
            }),
            encode(Instr::Load {
                width: LoadWidth::W,
                rd: Reg::new(6),
                rs1: Reg::X0,
                offset: 400,
            }),
        ]);
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image(words)).unwrap();
        let mut log = AccessLog::default();

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.reg_writes, vec![Reg::new(5)]);

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.mem_writes, vec![100]);
        assert!(log.reg_reads.contains(&Reg::new(5)));

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.mem_reads, vec![100]);
        assert_eq!(log.reg_writes, vec![Reg::new(6)]);
    }

    #[test]
    fn deterministic_execution() {
        let build = || {
            halting(vec![
                addi(5, 0, 100),
                addi(6, 0, 0),
                encode(Instr::Alu {
                    op: AluOp::Add,
                    rd: Reg::new(6),
                    rs1: Reg::new(6),
                    rs2: Reg::new(5),
                }),
                addi(5, 5, -1),
                encode(Instr::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::new(5),
                    rs2: Reg::X0,
                    offset: -8,
                }),
            ])
        };
        let (cpu1, _) = run_words(build());
        let (cpu2, _) = run_words(build());
        assert_eq!(cpu1.regs, cpu2.regs);
        assert_eq!(cpu1.cycles(), cpu2.cycles());
        assert_eq!(cpu1.instructions(), cpu2.instructions());
    }

    #[test]
    fn detection_encode_decode_roundtrip() {
        for d in [
            Detection::IllegalInstr,
            Detection::Misaligned,
            Detection::AccessFault,
            Detection::ControlFlow,
            Detection::Ebreak,
            Detection::Assertion(0),
            Detection::Assertion(513),
        ] {
            assert_eq!(Detection::decode(d.encode()), Some(d), "{d:?}");
        }
        assert_eq!(Detection::decode(0), None);
    }
}
