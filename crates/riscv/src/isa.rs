//! The RV32I instruction set: registers, encoding and strict decoding.
//!
//! Exactly the 40 instructions of the RV32I base ISA are implemented. The
//! decoder is *strict*: every word either decodes to one canonical
//! [`Instr`] whose re-encoding reproduces the word bit-for-bit, or fails
//! with [`DecodeError`] — there are no "don't care" bits that survive a
//! decode→encode round trip changed. Strictness is what makes
//! illegal-instruction detection deterministic (any reserved encoding
//! traps) and what the decoder property tests assert.
//!
//! Two deliberate canonicalisations, documented here because real
//! assemblers emit looser forms:
//!
//! * `FENCE` is accepted only as the canonical word `0x0000_000F`
//!   (fm/pred/succ/rs1/rd all zero) — this core has no memory reordering
//!   to order, so the hint bits carry no information;
//! * `ECALL`/`EBREAK` are accepted only as their exact SYSTEM words.

use std::error::Error;
use std::fmt;

/// One of the 32 integer registers, `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Number of integer registers.
    pub const COUNT: usize = 32;
    /// The hardwired-zero register `x0`.
    pub const X0: Reg = Reg(0);
    /// The return-address register `x1` (`ra`).
    pub const RA: Reg = Reg(1);
    /// The stack pointer `x2` (`sp`).
    pub const SP: Reg = Reg(2);
    /// Argument register `x10` (`a0`).
    pub const A0: Reg = Reg(10);
    /// Argument register `x11` (`a1`).
    pub const A1: Reg = Reg(11);
    /// Argument register `x12` (`a2`).
    pub const A2: Reg = Reg(12);
    /// The environment-call code register `x17` (`a7`).
    pub const A7: Reg = Reg(17);

    /// Register by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register x{index} out of range"
        );
        Reg(index)
    }

    /// The register's index, 0–31.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterator over all 32 registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Branch comparison (the funct3 of the BRANCH opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// `beq` — equal.
    Eq,
    /// `bne` — not equal.
    Ne,
    /// `blt` — signed less-than.
    Lt,
    /// `bge` — signed greater-or-equal.
    Ge,
    /// `bltu` — unsigned less-than.
    Ltu,
    /// `bgeu` — unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }

    fn from_funct3(f: u32) -> Option<Self> {
        match f {
            0b000 => Some(BranchCond::Eq),
            0b001 => Some(BranchCond::Ne),
            0b100 => Some(BranchCond::Lt),
            0b101 => Some(BranchCond::Ge),
            0b110 => Some(BranchCond::Ltu),
            0b111 => Some(BranchCond::Geu),
            _ => None,
        }
    }

    /// All six conditions.
    pub fn all() -> [BranchCond; 6] {
        [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ]
    }
}

/// Load width/signedness (the funct3 of the LOAD opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadWidth {
    /// `lb` — sign-extended byte.
    B,
    /// `lh` — sign-extended halfword.
    H,
    /// `lw` — word.
    W,
    /// `lbu` — zero-extended byte.
    Bu,
    /// `lhu` — zero-extended halfword.
    Hu,
}

impl LoadWidth {
    fn funct3(self) -> u32 {
        match self {
            LoadWidth::B => 0b000,
            LoadWidth::H => 0b001,
            LoadWidth::W => 0b010,
            LoadWidth::Bu => 0b100,
            LoadWidth::Hu => 0b101,
        }
    }

    fn from_funct3(f: u32) -> Option<Self> {
        match f {
            0b000 => Some(LoadWidth::B),
            0b001 => Some(LoadWidth::H),
            0b010 => Some(LoadWidth::W),
            0b100 => Some(LoadWidth::Bu),
            0b101 => Some(LoadWidth::Hu),
            _ => None,
        }
    }

    /// All five widths.
    pub fn all() -> [LoadWidth; 5] {
        [
            LoadWidth::B,
            LoadWidth::H,
            LoadWidth::W,
            LoadWidth::Bu,
            LoadWidth::Hu,
        ]
    }
}

/// Store width (the funct3 of the STORE opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreWidth {
    /// `sb` — byte.
    B,
    /// `sh` — halfword.
    H,
    /// `sw` — word.
    W,
}

impl StoreWidth {
    fn funct3(self) -> u32 {
        match self {
            StoreWidth::B => 0b000,
            StoreWidth::H => 0b001,
            StoreWidth::W => 0b010,
        }
    }

    fn from_funct3(f: u32) -> Option<Self> {
        match f {
            0b000 => Some(StoreWidth::B),
            0b001 => Some(StoreWidth::H),
            0b010 => Some(StoreWidth::W),
            _ => None,
        }
    }

    /// All three widths.
    pub fn all() -> [StoreWidth; 3] {
        [StoreWidth::B, StoreWidth::H, StoreWidth::W]
    }
}

/// Register-immediate ALU operation (OP-IMM, excluding shifts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`.
    Addi,
    /// `slti` — set if less-than, signed.
    Slti,
    /// `sltiu` — set if less-than, unsigned.
    Sltiu,
    /// `xori`.
    Xori,
    /// `ori`.
    Ori,
    /// `andi`.
    Andi,
}

impl AluImmOp {
    fn funct3(self) -> u32 {
        match self {
            AluImmOp::Addi => 0b000,
            AluImmOp::Slti => 0b010,
            AluImmOp::Sltiu => 0b011,
            AluImmOp::Xori => 0b100,
            AluImmOp::Ori => 0b110,
            AluImmOp::Andi => 0b111,
        }
    }

    fn from_funct3(f: u32) -> Option<Self> {
        match f {
            0b000 => Some(AluImmOp::Addi),
            0b010 => Some(AluImmOp::Slti),
            0b011 => Some(AluImmOp::Sltiu),
            0b100 => Some(AluImmOp::Xori),
            0b110 => Some(AluImmOp::Ori),
            0b111 => Some(AluImmOp::Andi),
            _ => None,
        }
    }

    /// All six operations.
    pub fn all() -> [AluImmOp; 6] {
        [
            AluImmOp::Addi,
            AluImmOp::Slti,
            AluImmOp::Sltiu,
            AluImmOp::Xori,
            AluImmOp::Ori,
            AluImmOp::Andi,
        ]
    }
}

/// Immediate shift operation (OP-IMM, funct3 001/101).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftOp {
    /// `slli` — logical left.
    Sll,
    /// `srli` — logical right.
    Srl,
    /// `srai` — arithmetic right.
    Sra,
}

impl ShiftOp {
    /// All three shifts.
    pub fn all() -> [ShiftOp; 3] {
        [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra]
    }
}

/// Register-register ALU operation (the OP opcode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll` — logical left shift by `rs2 & 31`.
    Sll,
    /// `slt` — set if less-than, signed.
    Slt,
    /// `sltu` — set if less-than, unsigned.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl` — logical right shift.
    Srl,
    /// `sra` — arithmetic right shift.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
}

impl AluOp {
    /// (funct3, funct7) per the RV32I OP encoding table.
    fn functs(self) -> (u32, u32) {
        match self {
            AluOp::Add => (0b000, 0b0000000),
            AluOp::Sub => (0b000, 0b0100000),
            AluOp::Sll => (0b001, 0b0000000),
            AluOp::Slt => (0b010, 0b0000000),
            AluOp::Sltu => (0b011, 0b0000000),
            AluOp::Xor => (0b100, 0b0000000),
            AluOp::Srl => (0b101, 0b0000000),
            AluOp::Sra => (0b101, 0b0100000),
            AluOp::Or => (0b110, 0b0000000),
            AluOp::And => (0b111, 0b0000000),
        }
    }

    fn from_functs(funct3: u32, funct7: u32) -> Option<Self> {
        match (funct3, funct7) {
            (0b000, 0b0000000) => Some(AluOp::Add),
            (0b000, 0b0100000) => Some(AluOp::Sub),
            (0b001, 0b0000000) => Some(AluOp::Sll),
            (0b010, 0b0000000) => Some(AluOp::Slt),
            (0b011, 0b0000000) => Some(AluOp::Sltu),
            (0b100, 0b0000000) => Some(AluOp::Xor),
            (0b101, 0b0000000) => Some(AluOp::Srl),
            (0b101, 0b0100000) => Some(AluOp::Sra),
            (0b110, 0b0000000) => Some(AluOp::Or),
            (0b111, 0b0000000) => Some(AluOp::And),
            _ => None,
        }
    }

    /// All ten operations.
    pub fn all() -> [AluOp; 10] {
        [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Sll,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Xor,
            AluOp::Srl,
            AluOp::Sra,
            AluOp::Or,
            AluOp::And,
        ]
    }
}

/// A decoded RV32I instruction.
///
/// Immediates are held in their natural signed byte units: branch and jump
/// offsets are byte offsets relative to the instruction's own PC, load and
/// store offsets are byte offsets from `rs1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm20` — `rd = imm20 << 12`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper 20 immediate bits (0–0xFFFFF).
        imm20: u32,
    },
    /// `auipc rd, imm20` — `rd = pc + (imm20 << 12)`.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper 20 immediate bits (0–0xFFFFF).
        imm20: u32,
    },
    /// `jal rd, offset` — `rd = pc + 4; pc += offset`.
    Jal {
        /// Link register.
        rd: Reg,
        /// Byte offset, even, within ±1 MiB.
        offset: i32,
    },
    /// `jalr rd, rs1, offset` — `rd = pc + 4; pc = (rs1 + offset) & !1`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Conditional branch, `pc += offset` when the comparison holds.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand register.
        rs1: Reg,
        /// Right operand register.
        rs2: Reg,
        /// Byte offset, even, within ±4 KiB.
        offset: i32,
    },
    /// Memory load, `rd = mem[rs1 + offset]`.
    Load {
        /// Width and sign extension.
        width: LoadWidth,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Memory store, `mem[rs1 + offset] = rs2`.
    Store {
        /// Width.
        width: StoreWidth,
        /// Base register.
        rs1: Reg,
        /// Source register.
        rs2: Reg,
        /// Signed 12-bit byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed 12-bit immediate.
        imm: i32,
    },
    /// Immediate shift (`slli`/`srli`/`srai`).
    Shift {
        /// Shift kind.
        op: ShiftOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Shift amount, 0–31.
        shamt: u8,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left operand register.
        rs1: Reg,
        /// Right operand register.
        rs2: Reg,
    },
    /// `fence` — a no-op on this in-order core (canonical word only).
    Fence,
    /// `ecall` — environment call (see the ECALL convention in [`crate::Cpu`]).
    Ecall,
    /// `ebreak` — debugger breakpoint; latches a detection.
    Ebreak,
}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const WORD_FENCE: u32 = 0x0000_000F;
const WORD_ECALL: u32 = 0x0000_0073;
const WORD_EBREAK: u32 = 0x0010_0073;

/// A word that is not a legal RV32I instruction under the strict decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

fn reg_at(word: u32, lsb: u32) -> Reg {
    Reg(((word >> lsb) & 0x1F) as u8)
}

/// Sign-extends the low `bits` bits of `value`.
fn sext(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn i_imm(word: u32) -> i32 {
    sext(word >> 20, 12)
}

fn s_imm(word: u32) -> i32 {
    sext(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
}

fn b_imm(word: u32) -> i32 {
    let imm = ((word >> 31) & 1) << 12
        | ((word >> 7) & 1) << 11
        | ((word >> 25) & 0x3F) << 5
        | ((word >> 8) & 0xF) << 1;
    sext(imm, 13)
}

fn j_imm(word: u32) -> i32 {
    let imm = ((word >> 31) & 1) << 20
        | ((word >> 12) & 0xFF) << 12
        | ((word >> 20) & 1) << 11
        | ((word >> 21) & 0x3FF) << 1;
    sext(imm, 21)
}

/// Range-checks a signed immediate that must fit `bits` bits.
fn check_signed(value: i32, bits: u32, what: &str) -> u32 {
    let min = -(1i32 << (bits - 1));
    let max = (1i32 << (bits - 1)) - 1;
    assert!(
        (min..=max).contains(&value),
        "{what} {value} does not fit {bits} signed bits"
    );
    (value as u32) & ((1u32 << bits) - 1)
}

/// Encodes an instruction to its unique RV32I word.
///
/// # Panics
///
/// Panics when a field is out of range: a 20-bit upper immediate above
/// `0xFFFFF`, a signed immediate that does not fit its field, an odd
/// branch/jump offset, or a shift amount above 31. (Construction through
/// [`decode`] always yields in-range fields.)
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::Lui { rd, imm20 } => {
            assert!(imm20 <= 0xF_FFFF, "upper immediate {imm20:#x} too wide");
            (imm20 << 12) | ((rd.0 as u32) << 7) | OPC_LUI
        }
        Instr::Auipc { rd, imm20 } => {
            assert!(imm20 <= 0xF_FFFF, "upper immediate {imm20:#x} too wide");
            (imm20 << 12) | ((rd.0 as u32) << 7) | OPC_AUIPC
        }
        Instr::Jal { rd, offset } => {
            assert!(offset % 2 == 0, "jal offset {offset} is odd");
            let imm = check_signed(offset, 21, "jal offset");
            let word = ((imm >> 20) & 1) << 31
                | ((imm >> 1) & 0x3FF) << 21
                | ((imm >> 11) & 1) << 20
                | ((imm >> 12) & 0xFF) << 12;
            word | ((rd.0 as u32) << 7) | OPC_JAL
        }
        Instr::Jalr { rd, rs1, offset } => {
            let imm = check_signed(offset, 12, "jalr offset");
            (imm << 20) | ((rs1.0 as u32) << 15) | ((rd.0 as u32) << 7) | OPC_JALR
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            offset,
        } => {
            assert!(offset % 2 == 0, "branch offset {offset} is odd");
            let imm = check_signed(offset, 13, "branch offset");
            ((imm >> 12) & 1) << 31
                | ((imm >> 5) & 0x3F) << 25
                | ((rs2.0 as u32) << 20)
                | ((rs1.0 as u32) << 15)
                | (cond.funct3() << 12)
                | ((imm >> 1) & 0xF) << 8
                | ((imm >> 11) & 1) << 7
                | OPC_BRANCH
        }
        Instr::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            let imm = check_signed(offset, 12, "load offset");
            (imm << 20)
                | ((rs1.0 as u32) << 15)
                | (width.funct3() << 12)
                | ((rd.0 as u32) << 7)
                | OPC_LOAD
        }
        Instr::Store {
            width,
            rs1,
            rs2,
            offset,
        } => {
            let imm = check_signed(offset, 12, "store offset");
            ((imm >> 5) << 25)
                | ((rs2.0 as u32) << 20)
                | ((rs1.0 as u32) << 15)
                | (width.funct3() << 12)
                | ((imm & 0x1F) << 7)
                | OPC_STORE
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let imm = check_signed(imm, 12, "immediate");
            (imm << 20)
                | ((rs1.0 as u32) << 15)
                | (op.funct3() << 12)
                | ((rd.0 as u32) << 7)
                | OPC_OP_IMM
        }
        Instr::Shift { op, rd, rs1, shamt } => {
            assert!(shamt < 32, "shift amount {shamt} out of range");
            let (funct3, funct7) = match op {
                ShiftOp::Sll => (0b001, 0b0000000),
                ShiftOp::Srl => (0b101, 0b0000000),
                ShiftOp::Sra => (0b101, 0b0100000),
            };
            (funct7 << 25)
                | ((shamt as u32) << 20)
                | ((rs1.0 as u32) << 15)
                | (funct3 << 12)
                | ((rd.0 as u32) << 7)
                | OPC_OP_IMM
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = op.functs();
            (funct7 << 25)
                | ((rs2.0 as u32) << 20)
                | ((rs1.0 as u32) << 15)
                | (funct3 << 12)
                | ((rd.0 as u32) << 7)
                | OPC_OP
        }
        Instr::Fence => WORD_FENCE,
        Instr::Ecall => WORD_ECALL,
        Instr::Ebreak => WORD_EBREAK,
    }
}

/// Decodes an RV32I word; strict, so `encode(decode(w)?) == w`.
///
/// # Errors
///
/// Returns [`DecodeError`] for every word outside the 40-instruction set,
/// including reserved funct fields and non-canonical FENCE/SYSTEM forms.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word });
    let opcode = word & 0x7F;
    let rd = reg_at(word, 7);
    let rs1 = reg_at(word, 15);
    let rs2 = reg_at(word, 20);
    let funct3 = (word >> 12) & 0x7;
    let funct7 = word >> 25;
    match opcode {
        OPC_LUI => Ok(Instr::Lui {
            rd,
            imm20: word >> 12,
        }),
        OPC_AUIPC => Ok(Instr::Auipc {
            rd,
            imm20: word >> 12,
        }),
        OPC_JAL => Ok(Instr::Jal {
            rd,
            offset: j_imm(word),
        }),
        OPC_JALR => {
            if funct3 != 0 {
                return err;
            }
            Ok(Instr::Jalr {
                rd,
                rs1,
                offset: i_imm(word),
            })
        }
        OPC_BRANCH => match BranchCond::from_funct3(funct3) {
            Some(cond) => Ok(Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: b_imm(word),
            }),
            None => err,
        },
        OPC_LOAD => match LoadWidth::from_funct3(funct3) {
            Some(width) => Ok(Instr::Load {
                width,
                rd,
                rs1,
                offset: i_imm(word),
            }),
            None => err,
        },
        OPC_STORE => match StoreWidth::from_funct3(funct3) {
            Some(width) => Ok(Instr::Store {
                width,
                rs1,
                rs2,
                offset: s_imm(word),
            }),
            None => err,
        },
        OPC_OP_IMM => match funct3 {
            0b001 if funct7 == 0 => Ok(Instr::Shift {
                op: ShiftOp::Sll,
                rd,
                rs1,
                shamt: rs2.0,
            }),
            0b101 if funct7 == 0 => Ok(Instr::Shift {
                op: ShiftOp::Srl,
                rd,
                rs1,
                shamt: rs2.0,
            }),
            0b101 if funct7 == 0b0100000 => Ok(Instr::Shift {
                op: ShiftOp::Sra,
                rd,
                rs1,
                shamt: rs2.0,
            }),
            0b001 | 0b101 => err,
            _ => match AluImmOp::from_funct3(funct3) {
                Some(op) => Ok(Instr::AluImm {
                    op,
                    rd,
                    rs1,
                    imm: i_imm(word),
                }),
                None => err,
            },
        },
        OPC_OP => match AluOp::from_functs(funct3, funct7) {
            Some(op) => Ok(Instr::Alu { op, rd, rs1, rs2 }),
            None => err,
        },
        _ if word == WORD_FENCE => Ok(Instr::Fence),
        _ if word == WORD_ECALL => Ok(Instr::Ecall),
        _ if word == WORD_EBREAK => Ok(Instr::Ebreak),
        _ => err,
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm20 } => write!(f, "lui {rd}, {imm20:#x}"),
            Instr::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {imm20:#x}"),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let m = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{m} {rs1}, {rs2}, {offset}")
            }
            Instr::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let m = match width {
                    LoadWidth::B => "lb",
                    LoadWidth::H => "lh",
                    LoadWidth::W => "lw",
                    LoadWidth::Bu => "lbu",
                    LoadWidth::Hu => "lhu",
                };
                write!(f, "{m} {rd}, {offset}({rs1})")
            }
            Instr::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                let m = match width {
                    StoreWidth::B => "sb",
                    StoreWidth::H => "sh",
                    StoreWidth::W => "sw",
                };
                write!(f, "{m} {rs2}, {offset}({rs1})")
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluImmOp::Addi => "addi",
                    AluImmOp::Slti => "slti",
                    AluImmOp::Sltiu => "sltiu",
                    AluImmOp::Xori => "xori",
                    AluImmOp::Ori => "ori",
                    AluImmOp::Andi => "andi",
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Shift { op, rd, rs1, shamt } => {
                let m = match op {
                    ShiftOp::Sll => "slli",
                    ShiftOp::Srl => "srli",
                    ShiftOp::Sra => "srai",
                };
                write!(f, "{m} {rd}, {rs1}, {shamt}")
            }
            Instr::Alu { op, rd, rs1, rs2 } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                };
                write!(f, "{m} {rd}, {rs1}, {rs2}")
            }
            Instr::Fence => f.write_str("fence"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_words_decode() {
        // Hand-assembled reference words (checked against the RV32I spec).
        assert_eq!(
            decode(0x0000_0513).unwrap(), // addi x10, x0, 0
            Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::X0,
                imm: 0
            }
        );
        assert_eq!(
            decode(0x0062_8233).unwrap(), // add x4, x5, x6
            Instr::Alu {
                op: AluOp::Add,
                rd: Reg::new(4),
                rs1: Reg::new(5),
                rs2: Reg::new(6)
            }
        );
        assert_eq!(
            decode(0xFE20_8EE3).unwrap(), // beq x1, x2, -4
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::RA,
                rs2: Reg::SP,
                offset: -4
            }
        );
        assert_eq!(decode(WORD_ECALL).unwrap(), Instr::Ecall);
        assert_eq!(decode(WORD_EBREAK).unwrap(), Instr::Ebreak);
        assert_eq!(decode(WORD_FENCE).unwrap(), Instr::Fence);
    }

    #[test]
    fn representative_roundtrips() {
        let cases = [
            Instr::Lui {
                rd: Reg::new(31),
                imm20: 0xF_FFFF,
            },
            Instr::Auipc {
                rd: Reg::X0,
                imm20: 1,
            },
            Instr::Jal {
                rd: Reg::RA,
                offset: -1048576,
            },
            Instr::Jalr {
                rd: Reg::X0,
                rs1: Reg::RA,
                offset: -2048,
            },
            Instr::Branch {
                cond: BranchCond::Geu,
                rs1: Reg::new(7),
                rs2: Reg::new(8),
                offset: 4094,
            },
            Instr::Load {
                width: LoadWidth::Hu,
                rd: Reg::new(9),
                rs1: Reg::new(10),
                offset: 2047,
            },
            Instr::Store {
                width: StoreWidth::B,
                rs1: Reg::new(11),
                rs2: Reg::new(12),
                offset: -1,
            },
            Instr::Shift {
                op: ShiftOp::Sra,
                rd: Reg::new(13),
                rs1: Reg::new(14),
                shamt: 31,
            },
            Instr::Fence,
        ];
        for instr in cases {
            assert_eq!(decode(encode(instr)), Ok(instr), "{instr}");
        }
    }

    #[test]
    fn reserved_encodings_are_illegal() {
        // BRANCH funct3 010/011 are reserved.
        assert!(decode(OPC_BRANCH | 0b010 << 12).is_err());
        // LOAD funct3 011/110/111 are reserved.
        assert!(decode(OPC_LOAD | 0b011 << 12).is_err());
        // STORE funct3 011 is reserved.
        assert!(decode(OPC_STORE | 0b011 << 12).is_err());
        // JALR requires funct3 000.
        assert!(decode(OPC_JALR | 0b001 << 12).is_err());
        // slli with a set funct7 bit is reserved.
        assert!(decode((1 << 25) | 0b001 << 12 | OPC_OP_IMM).is_err());
        // OP with a stray funct7 is reserved (mul would live here in M).
        assert!(decode((0b0000001 << 25) | OPC_OP).is_err());
        // Non-canonical fence/ecall forms.
        assert!(decode(WORD_FENCE | 0x0FF0_0000).is_err());
        // A system instruction with a set rd field is non-canonical (note
        // that WORD_ECALL | 1 << 20 would be EBREAK itself, not reserved).
        assert!(decode(WORD_ECALL | 1 << 7).is_err());
        assert!(decode(WORD_ECALL | 2 << 20).is_err());
        // The all-zero and all-one words (the classic dead-bus patterns).
        assert!(decode(0).is_err());
        assert!(decode(u32::MAX).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            encode(Instr::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::X0,
                imm: 42
            }),
            0x02A0_0513
        );
        let i = decode(0x02A0_0513).unwrap();
        assert_eq!(i.to_string(), "addi x10, x0, 42");
        assert_eq!(decode(WORD_EBREAK).unwrap().to_string(), "ebreak");
    }
}
