//! A small cycle-counting RV32I core — GOOFI's second target system.
//!
//! The paper's central claim is that GOOFI is *generic*: any target ported
//! through the `Framework` template gets the campaign algorithms, database
//! and analysis for free. The `thor` crate is the first target (the CPU the
//! paper actually drives); this crate is the deliberately different second
//! one, used to prove the claim by construction:
//!
//! * a standard ISA (the 40 instructions of RV32I: LUI/AUIPC, JAL/JALR,
//!   branches, loads/stores, ALU ops, FENCE, ECALL, EBREAK) instead of
//!   Thor's bespoke one — byte-addressed PC, no condition flags;
//! * machine-code workloads built with [`encode`] instead of an assembler;
//! * an ECALL environment convention (halt, sync, port I/O, assertions)
//!   instead of dedicated instructions;
//! * the same scan-chain test logic: internal, boundary and debug chains
//!   over the `scanchain` TAP machinery, with the read-only/writable split
//!   the paper describes ([`Cpu`] implements [`scanchain::ScanTarget`]).
//!
//! # Quick start
//!
//! ```
//! use riscv::{encode, Cpu, Image, Instr, Reg, StopReason};
//!
//! // x10 = 40 + 2; mem[word 64] = x10; halt.
//! let words = vec![
//!     encode(Instr::AluImm { op: riscv::AluImmOp::Addi, rd: Reg::A0, rs1: Reg::X0, imm: 40 }),
//!     encode(Instr::AluImm { op: riscv::AluImmOp::Addi, rd: Reg::A0, rs1: Reg::A0, imm: 2 }),
//!     encode(Instr::Store { width: riscv::StoreWidth::W, rs1: Reg::X0, rs2: Reg::A0, offset: 256 }),
//!     encode(Instr::AluImm { op: riscv::AluImmOp::Addi, rd: Reg::A7, rs1: Reg::X0, imm: 0 }),
//!     encode(Instr::Ecall),
//! ];
//! let image = Image { words, code_words: 5, entry: 0 };
//! let mut cpu = Cpu::new(Default::default());
//! cpu.load_image(&image).unwrap();
//! assert_eq!(cpu.run(1_000), StopReason::Halted);
//! assert_eq!(cpu.memory().read_raw(64).unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod isa;
mod memory;
pub mod scan;

pub use cpu::{
    AccessLog, Cpu, CpuConfig, Detection, Image, StopReason, ECALL_ASSERT, ECALL_HALT, ECALL_IN,
    ECALL_OUT, ECALL_SYNC, PORT_COUNT,
};
pub use isa::{
    decode, encode, AluImmOp, AluOp, BranchCond, DecodeError, Instr, LoadWidth, Reg, ShiftOp,
    StoreWidth,
};
pub use memory::{Memory, MemoryError, PAGE_WORDS};
pub use scan::ChainSet;
