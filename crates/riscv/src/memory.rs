//! Word-addressed main memory with code-segment write protection.
//!
//! Same contract as the `thor` crate's memory (the two targets share the
//! GOOFI-side conventions): tool-side `*_raw` accessors bypass protection
//! so pre-runtime SWIFI can corrupt the program area, while program stores
//! into the code segment fault. Storage is copy-on-write pages so whole-CPU
//! snapshots are reference-count bumps, with a per-page digest memo slot
//! for the memoized `memory_digest` fast path.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default memory size in 32-bit words (64 Ki words = 256 KiB).
pub const DEFAULT_WORDS: usize = 65_536;

/// Words per copy-on-write page (4 KiB).
pub const PAGE_WORDS: usize = 1024;
const PAGE_SHIFT: u32 = PAGE_WORDS.trailing_zeros();
const PAGE_MASK: usize = PAGE_WORDS - 1;

/// One copy-on-write page, with a slot for a memoized content digest.
///
/// The digest slot is a pure cache: `0` means "not computed", any other
/// value is the caller-defined digest of `words` as of the last
/// [`Memory::cache_page_digest`]. Every mutation path resets it; it is
/// excluded from equality.
#[derive(Debug)]
struct Page {
    words: [u32; PAGE_WORDS],
    digest: AtomicU64,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            words: [0; PAGE_WORDS],
            digest: AtomicU64::new(0),
        }
    }
}

impl Clone for Page {
    fn clone(&self) -> Self {
        // The digest describes `words`, copied verbatim, so it stays valid.
        Page {
            words: self.words,
            digest: AtomicU64::new(self.digest.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Page {
    fn eq(&self, other: &Self) -> bool {
        self.words == other.words
    }
}

impl Eq for Page {}

/// Errors raised by program-initiated memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryError {
    /// Address beyond the end of memory.
    OutOfRange {
        /// Offending word address.
        addr: u32,
    },
    /// Write into the protected code segment.
    WriteProtected {
        /// Offending word address.
        addr: u32,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfRange { addr } => write!(f, "address {addr:#x} out of range"),
            MemoryError::WriteProtected { addr } => {
                write!(f, "write to protected code segment at {addr:#x}")
            }
        }
    }
}

impl Error for MemoryError {}

/// Main memory: word-addressed, stored as copy-on-write pages.
///
/// Cloning a `Memory` (and therefore a whole CPU, as a snapshot does) only
/// bumps reference counts; the first write to a shared page pays for
/// copying that one page. Words past `len` in the last page are
/// invariantly zero, so derived equality over pages matches flat-array
/// equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    pages: Vec<Arc<Page>>,
    len: usize,
    code_words: u32,
    protect_code: bool,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new(DEFAULT_WORDS)
    }
}

impl Memory {
    /// Creates zeroed memory of `words` 32-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `words` is 0 or exceeds `u32::MAX`.
    pub fn new(words: usize) -> Self {
        assert!(words > 0 && words <= u32::MAX as usize, "bad memory size");
        // Every slot starts as the same shared zero page; pages diverge
        // lazily as they are written.
        let zero: Arc<Page> = Arc::new(Page::zeroed());
        Memory {
            pages: (0..words.div_ceil(PAGE_WORDS))
                .map(|_| Arc::clone(&zero))
                .collect(),
            len: words,
            code_words: 0,
            protect_code: true,
        }
    }

    /// Size in words.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the memory has zero words (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn word(&self, addr: usize) -> u32 {
        self.pages[addr >> PAGE_SHIFT].words[addr & PAGE_MASK]
    }

    /// Mutable word at `addr` (bounds-checked by the caller), unsharing
    /// the containing page if a snapshot still references it.
    #[inline]
    fn word_mut(&mut self, addr: usize) -> &mut u32 {
        let page = Arc::make_mut(&mut self.pages[addr >> PAGE_SHIFT]);
        *page.digest.get_mut() = 0;
        &mut page.words[addr & PAGE_MASK]
    }

    /// Number of copy-on-write pages backing this memory.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The live words of page `index` (the last page may be partial).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn page_words(&self, index: usize) -> &[u32] {
        let live = (self.len - index * PAGE_WORDS).min(PAGE_WORDS);
        &self.pages[index].words[..live]
    }

    /// The memoized digest of page `index`, if one has been cached since
    /// the page last changed.
    pub fn cached_page_digest(&self, index: usize) -> Option<u64> {
        match self.pages[index].digest.load(Ordering::Relaxed) {
            0 => None,
            d => Some(d),
        }
    }

    /// Memoizes `digest` for the current contents of page `index`.
    pub fn cache_page_digest(&self, index: usize, digest: u64) {
        self.pages[index].digest.store(digest, Ordering::Relaxed);
    }

    /// Marks `[0, code_words)` as the (write-protected) code segment.
    pub fn set_code_segment(&mut self, code_words: u32) {
        self.code_words = code_words;
    }

    /// Size of the code segment in words.
    pub fn code_segment(&self) -> u32 {
        self.code_words
    }

    /// Enables or disables code-segment write protection.
    pub fn set_protection(&mut self, on: bool) {
        self.protect_code = on;
    }

    /// Whether code-segment write protection is enabled.
    pub fn protection(&self) -> bool {
        self.protect_code
    }

    /// Program-initiated read.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of memory.
    pub fn read(&self, addr: u32) -> Result<u32, MemoryError> {
        if (addr as usize) < self.len {
            Ok(self.word(addr as usize))
        } else {
            Err(MemoryError::OutOfRange { addr })
        }
    }

    /// Program-initiated write, subject to code-segment protection.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of memory and
    /// [`MemoryError::WriteProtected`] for stores into a protected code
    /// segment.
    pub fn write(&mut self, addr: u32, value: u32) -> Result<(), MemoryError> {
        if self.protect_code && addr < self.code_words {
            return Err(MemoryError::WriteProtected { addr });
        }
        if (addr as usize) < self.len {
            *self.word_mut(addr as usize) = value;
            Ok(())
        } else {
            Err(MemoryError::OutOfRange { addr })
        }
    }

    /// Tool-initiated read (`readMemory()` building block): no protection.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of memory.
    pub fn read_raw(&self, addr: u32) -> Result<u32, MemoryError> {
        self.read(addr)
    }

    /// Tool-initiated write (`writeMemory()` building block): bypasses
    /// protection, so pre-runtime SWIFI can corrupt the program area.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of memory.
    pub fn write_raw(&mut self, addr: u32, value: u32) -> Result<(), MemoryError> {
        if (addr as usize) < self.len {
            *self.word_mut(addr as usize) = value;
            Ok(())
        } else {
            Err(MemoryError::OutOfRange { addr })
        }
    }

    /// Flips one bit of one word — the SWIFI fault primitive.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of memory.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> Result<(), MemoryError> {
        assert!(bit < 32, "bit index {bit} out of range");
        let v = self.read_raw(addr)?;
        self.write_raw(addr, v ^ (1 << bit))
    }

    /// Copies a block into memory starting at `addr` (workload download).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the block does not fit.
    pub fn load_block(&mut self, addr: u32, data: &[u32]) -> Result<(), MemoryError> {
        let start = addr as usize;
        start
            .checked_add(data.len())
            .filter(|&e| e <= self.len)
            .ok_or(MemoryError::OutOfRange {
                addr: addr.saturating_add(data.len() as u32),
            })?;
        let mut pos = start;
        let mut src = data;
        while !src.is_empty() {
            let off = pos & PAGE_MASK;
            let n = (PAGE_WORDS - off).min(src.len());
            let page = Arc::make_mut(&mut self.pages[pos >> PAGE_SHIFT]);
            *page.digest.get_mut() = 0;
            page.words[off..off + n].copy_from_slice(&src[..n]);
            src = &src[n..];
            pos += n;
        }
        Ok(())
    }

    /// Reads a block of `len` words starting at `addr` (state logging).
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the block does not fit.
    pub fn read_block(&self, addr: u32, len: usize) -> Result<Vec<u32>, MemoryError> {
        let start = addr as usize;
        start
            .checked_add(len)
            .filter(|&e| e <= self.len)
            .ok_or(MemoryError::OutOfRange {
                addr: addr.saturating_add(len as u32),
            })?;
        let mut out = Vec::with_capacity(len);
        let mut pos = start;
        while out.len() < len {
            let off = pos & PAGE_MASK;
            let n = (PAGE_WORDS - off).min(len - out.len());
            out.extend_from_slice(&self.pages[pos >> PAGE_SHIFT].words[off..off + n]);
            pos += n;
        }
        Ok(out)
    }

    /// Zeroes all of memory and forgets the code segment.
    pub fn clear(&mut self) {
        // Re-point every slot at one shared zero page instead of writing
        // zeros through — O(pages), and snapshots sharing the old pages
        // are unaffected.
        let zero: Arc<Page> = Arc::new(Page::zeroed());
        for page in &mut self.pages {
            *page = Arc::clone(&zero);
        }
        self.code_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_and_bounds() {
        let mut m = Memory::new(128);
        m.write(100, 0xCAFE_BABE).unwrap();
        assert_eq!(m.read(100).unwrap(), 0xCAFE_BABE);
        assert_eq!(
            m.read(128).unwrap_err(),
            MemoryError::OutOfRange { addr: 128 }
        );
    }

    #[test]
    fn code_protection_blocks_program_writes_only() {
        let mut m = Memory::new(64);
        m.set_code_segment(8);
        assert_eq!(
            m.write(3, 1).unwrap_err(),
            MemoryError::WriteProtected { addr: 3 }
        );
        m.write_raw(3, 7).unwrap();
        assert_eq!(m.read(3).unwrap(), 7);
        m.write(8, 9).unwrap();
        m.set_protection(false);
        m.write(3, 2).unwrap();
    }

    #[test]
    fn flip_bit_and_blocks() {
        let mut m = Memory::new(PAGE_WORDS * 2);
        m.flip_bit(PAGE_WORDS as u32, 31).unwrap();
        assert_eq!(m.read(PAGE_WORDS as u32).unwrap(), 1 << 31);
        m.load_block(PAGE_WORDS as u32 - 1, &[1, 2, 3]).unwrap();
        assert_eq!(
            m.read_block(PAGE_WORDS as u32 - 1, 3).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn digest_memo_dropped_on_mutation() {
        let mut m = Memory::new(PAGE_WORDS);
        assert_eq!(m.cached_page_digest(0), None);
        m.cache_page_digest(0, 99);
        assert_eq!(m.cached_page_digest(0), Some(99));
        m.write_raw(0, 1).unwrap();
        assert_eq!(m.cached_page_digest(0), None);
    }

    #[test]
    fn clear_resets_everything() {
        let mut m = Memory::new(8);
        m.set_code_segment(4);
        m.write_raw(1, 5).unwrap();
        m.clear();
        assert_eq!(m.read(1).unwrap(), 0);
        assert_eq!(m.code_segment(), 0);
    }
}
