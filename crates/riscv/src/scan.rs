//! Scan-chain exposure of the RV32I state ([`scanchain::ScanTarget`] impl).
//!
//! The second target deliberately has a *different* chain geometry from
//! Thor — fewer chains, no caches, a hardwired-zero register — so that any
//! framework code that accidentally bakes in Thor's layout fails loudly in
//! the conformance suite. Three chains are exposed:
//!
//! | chain      | contents                                             |
//! |------------|------------------------------------------------------|
//! | `internal` | PC, X0 (read-only), X1–X31, DETECT/ITER/HALTED (RO)  |
//! | `boundary` | input ports (writable) and output ports/pins (RO)    |
//! | `debug`    | debug-unit condition slots (+ RO hit/counters)       |
//!
//! `X0` is scannable but read-only: in the silicon it is not a latch at
//! all, so there is nothing to flip — the fault-space generator must see
//! it as observe-only, and a verified write through it must be rejected.
//! Main memory is not scannable (pre-runtime SWIFI reaches it instead).

use crate::cpu::{Cpu, PORT_COUNT};
use crate::isa::Reg;
use scanchain::{BitVec, CellAccess, ChainLayout, DebugUnit, ScanError, ScanTarget};

/// Name of the internal (register file) chain.
pub const INTERNAL: &str = "internal";
/// Name of the boundary (pin) chain.
pub const BOUNDARY: &str = "boundary";
/// Name of the debug-unit chain.
pub const DEBUG: &str = "debug";

/// The three chain layouts of an RV32I core.
#[derive(Debug, Clone)]
pub struct ChainSet {
    internal: ChainLayout,
    boundary: ChainLayout,
    debug: ChainLayout,
}

impl Default for ChainSet {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainSet {
    /// Builds the chain layouts (fixed geometry: no caches to size).
    pub fn new() -> Self {
        let internal = {
            let mut b = ChainLayout::builder(INTERNAL)
                .cell("PC", 32, CellAccess::ReadWrite)
                .cell("X0", 32, CellAccess::ReadOnly);
            for i in 1..Reg::COUNT {
                b = b.cell(format!("X{i}"), 32, CellAccess::ReadWrite);
            }
            b.cell("DETECT", 32, CellAccess::ReadOnly)
                .cell("ITER", 32, CellAccess::ReadOnly)
                .cell("HALTED", 1, CellAccess::ReadOnly)
                .build()
        };
        let boundary = {
            let mut b = ChainLayout::builder(BOUNDARY);
            for i in 0..PORT_COUNT {
                b = b.cell(format!("IN_PORT{i}"), 32, CellAccess::ReadWrite);
            }
            for i in 0..PORT_COUNT {
                b = b.cell(format!("OUT_PORT{i}"), 32, CellAccess::ReadOnly);
            }
            b.cell("ERROR_PIN", 1, CellAccess::ReadOnly)
                .cell("HALT_PIN", 1, CellAccess::ReadOnly)
                .build()
        };
        ChainSet {
            internal,
            boundary,
            debug: DebugUnit::chain_layout(),
        }
    }

    /// All chain names in SCAN_N index order.
    pub fn names() -> [&'static str; 3] {
        [INTERNAL, BOUNDARY, DEBUG]
    }

    /// Layout by chain name.
    pub fn by_name(&self, name: &str) -> Option<&ChainLayout> {
        match name {
            INTERNAL => Some(&self.internal),
            BOUNDARY => Some(&self.boundary),
            DEBUG => Some(&self.debug),
            _ => None,
        }
    }
}

impl Cpu {
    /// The CPU's scan-chain layouts.
    pub fn chains(&self) -> &ChainSet {
        &self.chains
    }

    fn capture_internal(&self) -> Result<BitVec, ScanError> {
        let l = &self.chains.internal;
        let mut bits = BitVec::zeros(l.total_bits());
        l.write_cell(&mut bits, "PC", self.pc as u64)?;
        for i in 0..Reg::COUNT {
            l.write_cell(&mut bits, &format!("X{i}"), self.regs[i] as u64)?;
        }
        l.write_cell(
            &mut bits,
            "DETECT",
            self.detection.map_or(0, |d| d.encode()) as u64,
        )?;
        l.write_cell(&mut bits, "ITER", self.iterations & 0xFFFF_FFFF)?;
        l.write_cell(&mut bits, "HALTED", self.halted as u64)?;
        Ok(bits)
    }

    fn update_internal(&mut self, bits: &BitVec) -> Result<(), ScanError> {
        let l = self.chains.internal.clone();
        self.pc = l.read_cell(bits, "PC")? as u32;
        // X0 is not a latch: skipped. DETECT/ITER/HALTED are read-only.
        for i in 1..Reg::COUNT {
            self.regs[i] = l.read_cell(bits, &format!("X{i}"))? as u32;
        }
        Ok(())
    }

    fn capture_boundary(&self) -> Result<BitVec, ScanError> {
        let l = &self.chains.boundary;
        let mut bits = BitVec::zeros(l.total_bits());
        for i in 0..PORT_COUNT {
            l.write_cell(&mut bits, &format!("IN_PORT{i}"), self.in_ports[i] as u64)?;
            l.write_cell(&mut bits, &format!("OUT_PORT{i}"), self.out_ports[i] as u64)?;
        }
        l.write_cell(&mut bits, "ERROR_PIN", self.detection.is_some() as u64)?;
        l.write_cell(&mut bits, "HALT_PIN", self.halted as u64)?;
        Ok(bits)
    }

    fn update_boundary(&mut self, bits: &BitVec) -> Result<(), ScanError> {
        let l = self.chains.boundary.clone();
        for i in 0..PORT_COUNT {
            self.in_ports[i] = l.read_cell(bits, &format!("IN_PORT{i}"))? as u32;
        }
        Ok(())
    }
}

impl ScanTarget for Cpu {
    fn chain_names(&self) -> Vec<String> {
        ChainSet::names().iter().map(|s| s.to_string()).collect()
    }

    fn chain_layout(&self, chain: &str) -> Option<&ChainLayout> {
        self.chains.by_name(chain)
    }

    fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError> {
        match chain {
            INTERNAL => self.capture_internal(),
            BOUNDARY => self.capture_boundary(),
            DEBUG => self.debug.capture(),
            _ => Err(ScanError::UnknownChain(chain.to_string())),
        }
    }

    fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError> {
        let layout = self
            .chains
            .by_name(chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))?;
        if bits.len() != layout.total_bits() {
            return Err(ScanError::LengthMismatch {
                expected: layout.total_bits(),
                got: bits.len(),
            });
        }
        match chain {
            INTERNAL => self.update_internal(bits),
            BOUNDARY => self.update_boundary(bits),
            DEBUG => self.debug.update(bits),
            _ => Err(ScanError::UnknownChain(chain.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CpuConfig, Detection, Image, StopReason, ECALL_ASSERT, ECALL_HALT};
    use crate::isa::{encode, AluImmOp, Instr};
    use scanchain::TestCard;

    fn addi(rd: u8, rs1: u8, imm: i32) -> u32 {
        encode(Instr::AluImm {
            op: AluImmOp::Addi,
            rd: Reg::new(rd),
            rs1: Reg::new(rs1),
            imm,
        })
    }

    fn halting(mut words: Vec<u32>) -> Vec<u32> {
        words.push(addi(17, 0, ECALL_HALT as i32));
        words.push(encode(Instr::Ecall));
        words
    }

    fn cpu_with(words: Vec<u32>) -> Cpu {
        let code_words = words.len() as u32;
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&Image {
            words,
            code_words,
            entry: 0,
        })
        .unwrap();
        cpu
    }

    #[test]
    fn chain_names_and_layouts_exist() {
        let cpu = Cpu::new(CpuConfig::default());
        for name in ChainSet::names() {
            assert!(cpu.chain_layout(name).is_some(), "{name}");
            let img = cpu.capture_chain(name).unwrap();
            assert_eq!(img.len(), cpu.chain_layout(name).unwrap().total_bits());
        }
        assert!(cpu.chain_layout("icache").is_none());
    }

    #[test]
    fn register_visible_and_writable_via_scan() {
        let mut cpu = cpu_with(halting(vec![addi(3, 0, 77)]));
        cpu.run(10);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        assert_eq!(card.read_cell(INTERNAL, "X3").unwrap(), 77);
        card.write_cell(INTERNAL, "X5", 0xFEED).unwrap();
        assert_eq!(card.target().reg(Reg::new(5)), 0xFEED);
    }

    #[test]
    fn x0_cell_is_read_only_and_always_zero() {
        let cpu = cpu_with(halting(vec![]));
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        assert_eq!(card.read_cell(INTERNAL, "X0").unwrap(), 0);
        assert!(card.write_cell(INTERNAL, "X0", 1).is_err());
    }

    #[test]
    fn detect_cell_is_read_only_and_reflects_detection() {
        let mut cpu = cpu_with(vec![
            addi(10, 0, 3),
            addi(17, 0, ECALL_ASSERT as i32),
            encode(Instr::Ecall),
        ]);
        cpu.run(10);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let code = card.read_cell(INTERNAL, "DETECT").unwrap() as u32;
        assert_eq!(Detection::decode(code), Some(Detection::Assertion(3)));
        assert!(card.write_cell(INTERNAL, "DETECT", 0).is_err());
    }

    #[test]
    fn boundary_chain_reads_outputs_and_writes_inputs() {
        // a0 = 1 (port); ecall IN; a1 = a0; a0 = 0; ecall OUT; halt.
        let mut cpu = cpu_with(halting(vec![
            addi(10, 0, 1),
            addi(17, 0, crate::cpu::ECALL_IN as i32),
            encode(Instr::Ecall),
            addi(11, 10, 0),
            addi(10, 0, 0),
            addi(17, 0, crate::cpu::ECALL_OUT as i32),
            encode(Instr::Ecall),
        ]));
        cpu.set_in_port(1, 99);
        cpu.run(20);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        assert_eq!(card.read_cell(BOUNDARY, "OUT_PORT0").unwrap(), 99);
        assert_eq!(card.read_cell(BOUNDARY, "HALT_PIN").unwrap(), 1);
        card.write_cell(BOUNDARY, "IN_PORT2", 7).unwrap();
        assert!(card.write_cell(BOUNDARY, "OUT_PORT0", 0).is_err());
    }

    #[test]
    fn debug_chain_programs_breakpoints() {
        use scanchain::DebugCondition;
        let cpu = cpu_with(halting(vec![addi(1, 0, 1), addi(2, 0, 2)]));
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let layout = DebugUnit::chain_layout();
        let mut bits = card.read_chain(DEBUG).unwrap();
        layout.write_cell(&mut bits, "COND0.KIND", 1).unwrap(); // PcEquals
        layout.write_cell(&mut bits, "COND0.OPERAND", 4).unwrap(); // byte PC
        card.write_chain(DEBUG, &bits).unwrap();
        let mut cpu = card.into_target();
        match cpu.run(100) {
            StopReason::DebugEvent(ev) => {
                assert_eq!(ev.condition, DebugCondition::PcEquals(4));
            }
            other => panic!("expected breakpoint, got {other:?}"),
        }
    }

    #[test]
    fn pc_flip_via_scan_causes_control_flow_error() {
        let mut cpu = cpu_with(halting(vec![addi(1, 0, 1), addi(2, 0, 2)]));
        cpu.step();
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        // Set PC far outside the 4-word code segment.
        card.write_cell(INTERNAL, "PC", 0x4000).unwrap();
        let mut cpu = card.into_target();
        assert_eq!(cpu.run(100), StopReason::Detected(Detection::ControlFlow));
    }

    #[test]
    fn full_chain_write_roundtrip_preserves_state() {
        let mut cpu = cpu_with(halting(vec![addi(1, 0, 5), addi(2, 0, 6)]));
        cpu.step();
        let (before_regs, before_pc) = (cpu.regs, cpu.pc());
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let bits = card.read_chain(INTERNAL).unwrap();
        card.write_chain(INTERNAL, &bits).unwrap();
        assert_eq!(card.target().regs, before_regs);
        assert_eq!(card.target().pc(), before_pc);
    }
}
