//! Property-based tests for the RV32I encoder/decoder and the illegal-
//! instruction trap.
//!
//! The conformance suite and the golden-trace tests both lean on the claim
//! that the decoder is *strict*: every one of the ~40 encodable
//! instructions round-trips `decode(encode(i)) == i`, every legal word
//! re-encodes to itself, and everything else traps deterministically.
//! These properties pin that claim down.

use proptest::prelude::*;
use riscv::{
    decode, encode, AluImmOp, AluOp, BranchCond, Cpu, CpuConfig, Detection, Image, Instr,
    LoadWidth, Reg, ShiftOp, StopReason, StoreWidth,
};

fn pick<T: std::fmt::Debug + Clone>(items: Vec<T>) -> impl Strategy<Value = T> {
    (0..items.len()).prop_map(move |i| items[i].clone())
}

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::new)
}

/// Signed immediate fitting 12 bits.
fn arb_imm12() -> impl Strategy<Value = i32> {
    -2048i32..2048
}

/// Even branch offset fitting 13 signed bits.
fn arb_branch_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 11)..(1i32 << 11)).prop_map(|half| half * 2)
}

/// Even jump offset fitting 21 signed bits.
fn arb_jal_offset() -> impl Strategy<Value = i32> {
    (-(1i32 << 19)..(1i32 << 19)).prop_map(|half| half * 2)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), 0u32..=0xF_FFFF).prop_map(|(rd, imm20)| Instr::Lui { rd, imm20 }),
        (arb_reg(), 0u32..=0xF_FFFF).prop_map(|(rd, imm20)| Instr::Auipc { rd, imm20 }),
        (arb_reg(), arb_jal_offset()).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (arb_reg(), arb_reg(), arb_imm12()).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (
            pick(BranchCond::all().to_vec()),
            arb_reg(),
            arb_reg(),
            arb_branch_offset()
        )
            .prop_map(|(cond, rs1, rs2, offset)| Instr::Branch {
                cond,
                rs1,
                rs2,
                offset
            }),
        (
            pick(LoadWidth::all().to_vec()),
            arb_reg(),
            arb_reg(),
            arb_imm12()
        )
            .prop_map(|(width, rd, rs1, offset)| Instr::Load {
                width,
                rd,
                rs1,
                offset
            }),
        (
            pick(StoreWidth::all().to_vec()),
            arb_reg(),
            arb_reg(),
            arb_imm12()
        )
            .prop_map(|(width, rs1, rs2, offset)| Instr::Store {
                width,
                rs1,
                rs2,
                offset
            }),
        (
            pick(AluImmOp::all().to_vec()),
            arb_reg(),
            arb_reg(),
            arb_imm12()
        )
            .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
        (pick(ShiftOp::all().to_vec()), arb_reg(), arb_reg(), 0u8..32)
            .prop_map(|(op, rd, rs1, shamt)| Instr::Shift { op, rd, rs1, shamt }),
        (pick(AluOp::all().to_vec()), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
    ]
}

/// The nine major opcodes plus the two canonical-word-only ones
/// (FENCE, SYSTEM). Any other low-7-bit pattern is structurally illegal.
const LEGAL_OPCODES: [u32; 11] = [
    0b0110111, 0b0010111, 0b1101111, 0b1100111, 0b1100011, 0b0000011, 0b0100011, 0b0010011,
    0b0110011, 0b0001111, 0b1110011,
];

fn arb_illegal_opcode_word() -> impl Strategy<Value = u32> {
    let illegal: Vec<u32> = (0..128).filter(|op| !LEGAL_OPCODES.contains(op)).collect();
    (0..illegal.len(), any::<u32>()).prop_map(move |(i, upper)| (upper & !0x7F) | illegal[i])
}

/// Runs `word` as the sole instruction of a fresh core and returns the
/// stop reason with the counter state it stopped at.
fn trap_fingerprint(word: u32) -> (StopReason, u64, u64) {
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.load_image(&Image {
        words: vec![word],
        code_words: 1,
        entry: 0,
    })
    .unwrap();
    let stop = cpu.run(10);
    (stop, cpu.instructions(), cpu.cycles())
}

proptest! {
    #[test]
    fn every_encodable_instruction_round_trips(instr in arb_instr()) {
        let word = encode(instr);
        prop_assert_eq!(decode(word), Ok(instr));
        // Strictness: the canonical word is a fixed point of re-encoding.
        prop_assert_eq!(encode(decode(word).unwrap()), word);
    }

    #[test]
    fn decode_is_total_and_stable(word: u32) {
        // Decoding any word never panics, is reproducible, and legal words
        // re-encode to themselves (the decoder accepts canonical forms
        // only, so `decode` and `encode` are mutually inverse bijections
        // between the legal-word set and the instruction set).
        let first = decode(word);
        prop_assert_eq!(decode(word), first);
        if let Ok(instr) = first {
            prop_assert_eq!(encode(instr), word);
        }
    }

    #[test]
    fn illegal_opcodes_trap_deterministically(word in arb_illegal_opcode_word()) {
        prop_assert!(decode(word).is_err());
        let fp = trap_fingerprint(word);
        prop_assert_eq!(fp.0, StopReason::Detected(Detection::IllegalInstr));
        // Trapping is part of the deterministic trace: same stop, same
        // counters, every time.
        prop_assert_eq!(trap_fingerprint(word), fp);
    }

    #[test]
    fn undecodable_words_always_trap_as_illegal(word: u32) {
        // Beyond structurally-illegal opcodes: ANY word the strict decoder
        // rejects (reserved funct fields, non-canonical FENCE/SYSTEM) must
        // latch IllegalInstr rather than execute as something else.
        if decode(word).is_err() {
            let (stop, instret, _) = trap_fingerprint(word);
            prop_assert_eq!(stop, StopReason::Detected(Detection::IllegalInstr));
            prop_assert_eq!(instret, 0); // trapped before retiring
        }
    }
}
