//! A compact, growable bit vector used as the payload of scan-chain shifts.

use std::fmt;

/// A fixed-order sequence of bits, stored LSB-first inside `u64` words.
///
/// Bit index 0 is the bit closest to TDO, i.e. the first bit shifted out of
/// the device. All scan-chain captures, updates and fault injections operate
/// on `BitVec` values.
///
/// # Example
///
/// ```
/// use scanchain::BitVec;
/// let mut bv = BitVec::zeros(10);
/// bv.set(3, true);
/// bv.flip(3);
/// assert!(!bv.get(3));
/// assert_eq!(bv.count_ones(), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut bv = BitVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        bv.mask_tail();
        bv
    }

    /// Builds a bit vector from an iterator of booleans; the first item
    /// becomes bit 0.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut bv = BitVec::new();
        for b in bits {
            bv.push(b);
        }
        bv
    }

    /// Builds a bit vector holding the low `width` bits of `value`,
    /// LSB at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "width {width} exceeds 64");
        let mut bv = BitVec::zeros(width);
        if width > 0 {
            bv.words[0] = if width == 64 {
                value
            } else {
                value & ((1u64 << width) - 1)
            };
        }
        bv
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets the bit at `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        let (w, b) = (idx / 64, idx % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Inverts the bit at `idx` (the bit-flip fault model primitive).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.len()`.
    pub fn flip(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / 64] ^= 1 << (idx % 64);
    }

    /// Appends a bit at the end (highest index).
    pub fn push(&mut self, value: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        self.len += 1;
        let idx = self.len - 1;
        if value {
            self.words[idx / 64] |= 1 << (idx % 64);
        }
    }

    /// Removes and returns the last bit, or `None` if empty.
    pub fn pop(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let v = self.get(self.len - 1);
        self.set(self.len - 1, false);
        self.len -= 1;
        if self.words.len() > self.len.div_ceil(64) {
            self.words.pop();
        }
        Some(v)
    }

    /// Reads `width` bits starting at `offset` as an integer (bit `offset`
    /// becomes the LSB).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range exceeds the vector.
    pub fn read_range(&self, offset: usize, width: usize) -> u64 {
        assert!(width <= 64, "range width {width} exceeds 64");
        assert!(
            offset + width <= self.len,
            "range {offset}+{width} out of bounds {}",
            self.len
        );
        if width == 0 {
            return 0;
        }
        let (w, b) = (offset / 64, offset % 64);
        let mut v = self.words[w] >> b;
        if b + width > 64 {
            v |= self.words[w + 1] << (64 - b);
        }
        if width < 64 {
            v &= (1u64 << width) - 1;
        }
        v
    }

    /// Writes the low `width` bits of `value` starting at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the range exceeds the vector.
    pub fn write_range(&mut self, offset: usize, width: usize, value: u64) {
        assert!(width <= 64, "range width {width} exceeds 64");
        assert!(
            offset + width <= self.len,
            "range {offset}+{width} out of bounds {}",
            self.len
        );
        if width == 0 {
            return;
        }
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let value = value & mask;
        let (w, b) = (offset / 64, offset % 64);
        self.words[w] = (self.words[w] & !(mask << b)) | (value << b);
        if b + width > 64 {
            let hi = 64 - b;
            self.words[w + 1] = (self.words[w + 1] & !(mask >> hi)) | (value >> hi);
        }
    }

    /// Number of one bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices at which `self` and `other` differ.
    ///
    /// Used by the analysis phase to diff a logged system state against the
    /// reference (fault-free) state.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn diff_indices(&self, other: &BitVec) -> Vec<usize> {
        assert_eq!(self.len, other.len, "diffing bit vectors of unequal length");
        let mut out = Vec::new();
        for (w, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let mut x = a ^ b;
            while x != 0 {
                let b = x.trailing_zeros() as usize;
                out.push(w * 64 + b);
                x &= x - 1;
            }
        }
        out
    }

    /// Iterates over the bits from index 0 upwards.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Parity (XOR of all bits): `true` when the number of ones is odd.
    pub fn parity(&self) -> bool {
        self.count_ones() % 2 == 1
    }

    /// Serialises to a `0`/`1` string, bit 0 first.
    pub fn to_bit_string(&self) -> String {
        let mut s = String::with_capacity(self.len);
        for (w, word) in self.words.iter().enumerate() {
            let bits = (self.len - w * 64).min(64);
            for b in 0..bits {
                s.push(if (word >> b) & 1 == 1 { '1' } else { '0' });
            }
        }
        s
    }

    /// Parses a `0`/`1` string produced by [`BitVec::to_bit_string`].
    ///
    /// Returns `None` when the string contains other characters.
    pub fn from_bit_string(s: &str) -> Option<Self> {
        let mut bv = BitVec::zeros(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => {}
                '1' => bv.set(i, true),
                _ => return None,
            }
        }
        Some(bv)
    }

    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]({})", self.len, self.to_bit_string())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_bit_string())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(70);
        assert_eq!(z.len(), 70);
        assert_eq!(z.count_ones(), 0);
        let o = BitVec::ones(70);
        assert_eq!(o.count_ones(), 70);
        assert!(o.get(69));
    }

    #[test]
    fn set_get_flip() {
        let mut bv = BitVec::zeros(130);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert!(bv.get(0) && bv.get(64) && bv.get(129));
        assert_eq!(bv.count_ones(), 3);
        bv.flip(64);
        assert!(!bv.get(64));
        bv.flip(65);
        assert!(bv.get(65));
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut bv = BitVec::new();
        for i in 0..100 {
            bv.push(i % 3 == 0);
        }
        assert_eq!(bv.len(), 100);
        for i in (0..100).rev() {
            assert_eq!(bv.pop(), Some(i % 3 == 0));
        }
        assert_eq!(bv.pop(), None);
    }

    #[test]
    fn range_read_write() {
        let mut bv = BitVec::zeros(100);
        bv.write_range(10, 32, 0xDEADBEEF);
        assert_eq!(bv.read_range(10, 32), 0xDEADBEEF);
        // Crossing a word boundary.
        bv.write_range(60, 16, 0xABCD);
        assert_eq!(bv.read_range(60, 16), 0xABCD);
        // Neighbouring bits untouched.
        assert!(!bv.get(9));
        assert!(!bv.get(42));
    }

    #[test]
    fn from_u64_masks_value() {
        let bv = BitVec::from_u64(0xFFFF, 8);
        assert_eq!(bv.len(), 8);
        assert_eq!(bv.read_range(0, 8), 0xFF);
        let full = BitVec::from_u64(u64::MAX, 64);
        assert_eq!(full.count_ones(), 64);
    }

    #[test]
    fn diff_indices_reports_flips() {
        let a = BitVec::zeros(200);
        let mut b = a.clone();
        b.flip(3);
        b.flip(64);
        b.flip(199);
        assert_eq!(a.diff_indices(&b), vec![3, 64, 199]);
        assert_eq!(a.diff_indices(&a), Vec::<usize>::new());
    }

    #[test]
    fn parity_tracks_ones() {
        let mut bv = BitVec::zeros(9);
        assert!(!bv.parity());
        bv.set(4, true);
        assert!(bv.parity());
        bv.set(8, true);
        assert!(!bv.parity());
    }

    #[test]
    fn bit_string_roundtrip() {
        let bv = BitVec::from_bits([true, false, true, true, false]);
        let s = bv.to_bit_string();
        assert_eq!(s, "10110");
        assert_eq!(BitVec::from_bit_string(&s).unwrap(), bv);
        assert!(BitVec::from_bit_string("01x").is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitVec::zeros(4).get(4);
    }

    #[test]
    fn collect_and_extend() {
        let mut bv: BitVec = [true, true, false].into_iter().collect();
        bv.extend([false, true]);
        assert_eq!(bv.to_bit_string(), "11001");
    }
}
