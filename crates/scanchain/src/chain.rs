//! Chain layouts: the named cells of a scan chain and their access rights.
//!
//! The GOOFI configuration phase (paper §3.1, Figure 5) consists of entering
//! "the name and the position of possible fault injection locations"; a
//! [`ChainLayout`] is exactly that catalogue for one chain. Cells marked
//! [`CellAccess::ReadOnly`] "can therefore only be used to observe the state
//! of the microprocessor".

use crate::{BitVec, ScanError};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Whether a scan cell can be written back into the device, or only observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellAccess {
    /// The cell participates in update: faults can be injected here.
    ReadWrite,
    /// The cell is capture-only: usable as an observation point, never as a
    /// fault injection location.
    ReadOnly,
}

impl fmt::Display for CellAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CellAccess::ReadWrite => "rw",
            CellAccess::ReadOnly => "ro",
        })
    }
}

/// One named cell (register, latch, flag, …) within a scan chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellDef {
    /// Human-readable location name, e.g. `"R3"` or `"ICACHE.L2.DATA"`.
    pub name: String,
    /// Bit offset of the cell within the chain.
    pub offset: usize,
    /// Width in bits (1..=64).
    pub width: usize,
    /// Whether faults may be injected into this cell.
    pub access: CellAccess,
}

impl CellDef {
    /// Inclusive bit range covered by this cell.
    pub fn bit_range(&self) -> std::ops::Range<usize> {
        self.offset..self.offset + self.width
    }
}

/// The static description of a scan chain: an ordered list of cells.
///
/// Layouts are immutable once built; construct them with
/// [`ChainLayout::builder`]. The cell catalogue lives behind an [`Arc`],
/// so cloning a layout — which the test card does on every chain walk to
/// escape the borrow on its target — is two reference-count bumps, not a
/// copy of every cell name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLayout {
    inner: Arc<LayoutInner>,
}

#[derive(Debug, PartialEq, Eq)]
struct LayoutInner {
    name: String,
    cells: Vec<CellDef>,
    by_name: HashMap<String, usize>,
    total_bits: usize,
    /// Cached sum of writable cell widths; `== total_bits` means the whole
    /// chain participates in update and `masked_update` can skip its
    /// per-cell merge.
    writable_bits: usize,
}

impl ChainLayout {
    /// Starts building a layout for a chain called `name`.
    pub fn builder(name: impl Into<String>) -> ChainLayoutBuilder {
        ChainLayoutBuilder {
            name: name.into(),
            cells: Vec::new(),
            offset: 0,
        }
    }

    /// Chain name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Total number of bits in the chain.
    pub fn total_bits(&self) -> usize {
        self.inner.total_bits
    }

    /// All cells in shift order.
    pub fn cells(&self) -> &[CellDef] {
        &self.inner.cells
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&CellDef> {
        self.inner.by_name.get(name).map(|&i| &self.inner.cells[i])
    }

    /// Cells into which faults may be injected.
    pub fn writable_cells(&self) -> impl Iterator<Item = &CellDef> {
        self.inner
            .cells
            .iter()
            .filter(|c| c.access == CellAccess::ReadWrite)
    }

    /// Number of bits that are legal fault-injection targets.
    pub fn writable_bits(&self) -> usize {
        self.inner.writable_bits
    }

    /// Finds which cell contains chain bit `bit`, if any.
    pub fn cell_at_bit(&self, bit: usize) -> Option<&CellDef> {
        self.inner
            .cells
            .iter()
            .find(|c| c.bit_range().contains(&bit))
    }

    /// Reads a named cell out of a captured bit vector.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownCell`] if no such cell exists and
    /// [`ScanError::LengthMismatch`] if `bits` is not a full capture of this
    /// chain.
    pub fn read_cell(&self, bits: &BitVec, name: &str) -> Result<u64, ScanError> {
        self.check_len(bits)?;
        let cell = self
            .cell(name)
            .ok_or_else(|| ScanError::UnknownCell(name.to_string()))?;
        Ok(bits.read_range(cell.offset, cell.width))
    }

    /// Writes a value into a named cell of a bit vector destined for update.
    ///
    /// Read-only cells may be freely modified in the *host-side* copy; the
    /// device enforces read-only semantics at update time (see
    /// [`ChainLayout::masked_update`]). This mirrors real scan hardware,
    /// where shifting in any pattern is possible but capture-only cells
    /// ignore the update.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownCell`] for unknown cells,
    /// [`ScanError::ValueTooWide`] when the value does not fit, and
    /// [`ScanError::LengthMismatch`] for a wrong-size vector.
    pub fn write_cell(&self, bits: &mut BitVec, name: &str, value: u64) -> Result<(), ScanError> {
        self.check_len(bits)?;
        let cell = self
            .cell(name)
            .ok_or_else(|| ScanError::UnknownCell(name.to_string()))?;
        if cell.width < 64 && value >= (1u64 << cell.width) {
            return Err(ScanError::ValueTooWide {
                cell: name.to_string(),
                width: cell.width,
                value,
            });
        }
        bits.write_range(cell.offset, cell.width, value);
        Ok(())
    }

    /// Combines a previously captured state with a shifted-in update,
    /// keeping read-only cells at their captured values.
    ///
    /// This is the device-side semantics of the Update-DR TAP state: writable
    /// cells take the shifted-in value, read-only cells are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::LengthMismatch`] if either vector is not a full
    /// chain image.
    pub fn masked_update(&self, captured: &BitVec, shifted: &BitVec) -> Result<BitVec, ScanError> {
        self.check_len(captured)?;
        self.check_len(shifted)?;
        // Fully writable chain: the update is the shifted image wholesale.
        if self.inner.writable_bits == self.inner.total_bits {
            return Ok(shifted.clone());
        }
        let mut out = captured.clone();
        for cell in self.writable_cells() {
            for bit in cell.bit_range() {
                out.set(bit, shifted.get(bit));
            }
        }
        Ok(out)
    }

    /// Returns an error naming the first read-only cell whose bits differ
    /// between `captured` and `shifted`, if any.
    ///
    /// The GOOFI GUI greys out read-only locations; the framework uses this
    /// to reject campaigns that target them.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::ReadOnlyCell`] on a read-only modification and
    /// [`ScanError::LengthMismatch`] on size mismatch.
    pub fn reject_readonly_writes(
        &self,
        captured: &BitVec,
        shifted: &BitVec,
    ) -> Result<(), ScanError> {
        self.check_len(captured)?;
        self.check_len(shifted)?;
        for cell in self
            .inner
            .cells
            .iter()
            .filter(|c| c.access == CellAccess::ReadOnly)
        {
            for bit in cell.bit_range() {
                if captured.get(bit) != shifted.get(bit) {
                    return Err(ScanError::ReadOnlyCell {
                        cell: cell.name.clone(),
                        chain: self.inner.name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_len(&self, bits: &BitVec) -> Result<(), ScanError> {
        if bits.len() != self.inner.total_bits {
            return Err(ScanError::LengthMismatch {
                expected: self.inner.total_bits,
                got: bits.len(),
            });
        }
        Ok(())
    }
}

/// Incrementally builds a [`ChainLayout`]; see [`ChainLayout::builder`].
#[derive(Debug)]
pub struct ChainLayoutBuilder {
    name: String,
    cells: Vec<CellDef>,
    offset: usize,
}

impl ChainLayoutBuilder {
    /// Appends a cell of `width` bits at the next free offset.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64, or if the name repeats an
    /// earlier cell. Layouts are built by target-system porting code, so
    /// mistakes are programming errors rather than runtime conditions;
    /// use [`ChainLayoutBuilder::try_cell`] when layouts come from
    /// configuration data instead.
    pub fn cell(self, name: impl Into<String>, width: usize, access: CellAccess) -> Self {
        match self.try_cell(name, width, access) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible version of [`ChainLayoutBuilder::cell`] for layouts built
    /// from untrusted configuration data.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::InvalidCellDef`] when `width` is outside
    /// `1..=64` or the name repeats an earlier cell.
    pub fn try_cell(
        mut self,
        name: impl Into<String>,
        width: usize,
        access: CellAccess,
    ) -> Result<Self, ScanError> {
        let name = name.into();
        if !(1..=64).contains(&width) {
            return Err(ScanError::InvalidCellDef {
                detail: format!("width {width} not in 1..=64"),
                cell: name,
            });
        }
        if self.cells.iter().any(|c| c.name == name) {
            return Err(ScanError::InvalidCellDef {
                detail: "duplicate cell name".to_string(),
                cell: name,
            });
        }
        self.cells.push(CellDef {
            name,
            offset: self.offset,
            width,
            access,
        });
        self.offset += width;
        Ok(self)
    }

    /// Appends a family of identically shaped cells, e.g. `R0..R15`.
    pub fn cell_array(
        mut self,
        prefix: &str,
        count: usize,
        width: usize,
        access: CellAccess,
    ) -> Self {
        for i in 0..count {
            self = self.cell(format!("{prefix}{i}"), width, access);
        }
        self
    }

    /// Finishes the layout.
    pub fn build(self) -> ChainLayout {
        let by_name = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), i))
            .collect();
        let writable_bits = self
            .cells
            .iter()
            .filter(|c| c.access == CellAccess::ReadWrite)
            .map(|c| c.width)
            .sum();
        ChainLayout {
            inner: Arc::new(LayoutInner {
                name: self.name,
                total_bits: self.offset,
                cells: self.cells,
                by_name,
                writable_bits,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_layout() -> ChainLayout {
        ChainLayout::builder("internal")
            .cell("PC", 16, CellAccess::ReadWrite)
            .cell_array("R", 4, 8, CellAccess::ReadWrite)
            .cell("CYCLES", 32, CellAccess::ReadOnly)
            .build()
    }

    #[test]
    fn layout_offsets_are_sequential() {
        let l = demo_layout();
        assert_eq!(l.total_bits(), 16 + 4 * 8 + 32);
        assert_eq!(l.cell("PC").unwrap().offset, 0);
        assert_eq!(l.cell("R0").unwrap().offset, 16);
        assert_eq!(l.cell("R3").unwrap().offset, 40);
        assert_eq!(l.cell("CYCLES").unwrap().offset, 48);
    }

    #[test]
    fn writable_bits_excludes_readonly() {
        let l = demo_layout();
        assert_eq!(l.writable_bits(), 48);
        assert_eq!(l.writable_cells().count(), 5);
    }

    #[test]
    fn cell_at_bit_finds_owner() {
        let l = demo_layout();
        assert_eq!(l.cell_at_bit(0).unwrap().name, "PC");
        assert_eq!(l.cell_at_bit(17).unwrap().name, "R0");
        assert_eq!(l.cell_at_bit(79).unwrap().name, "CYCLES");
        assert!(l.cell_at_bit(80).is_none());
    }

    #[test]
    fn read_write_cell_roundtrip() {
        let l = demo_layout();
        let mut bits = BitVec::zeros(l.total_bits());
        l.write_cell(&mut bits, "R2", 0x5A).unwrap();
        assert_eq!(l.read_cell(&bits, "R2").unwrap(), 0x5A);
        assert_eq!(l.read_cell(&bits, "R1").unwrap(), 0);
    }

    #[test]
    fn write_cell_rejects_wide_values() {
        let l = demo_layout();
        let mut bits = BitVec::zeros(l.total_bits());
        let err = l.write_cell(&mut bits, "R0", 0x100).unwrap_err();
        assert!(matches!(err, ScanError::ValueTooWide { width: 8, .. }));
    }

    #[test]
    fn unknown_cell_is_reported() {
        let l = demo_layout();
        let bits = BitVec::zeros(l.total_bits());
        assert_eq!(
            l.read_cell(&bits, "NOPE").unwrap_err(),
            ScanError::UnknownCell("NOPE".into())
        );
    }

    #[test]
    fn length_mismatch_is_reported() {
        let l = demo_layout();
        let bits = BitVec::zeros(3);
        assert!(matches!(
            l.read_cell(&bits, "PC").unwrap_err(),
            ScanError::LengthMismatch { .. }
        ));
    }

    #[test]
    fn masked_update_preserves_readonly() {
        let l = demo_layout();
        let mut captured = BitVec::zeros(l.total_bits());
        l.write_cell(&mut captured, "CYCLES", 1234).unwrap();
        let mut shifted = captured.clone();
        l.write_cell(&mut shifted, "PC", 0xBEEF).unwrap();
        l.write_cell(&mut shifted, "CYCLES", 9999).unwrap();
        let merged = l.masked_update(&captured, &shifted).unwrap();
        assert_eq!(l.read_cell(&merged, "PC").unwrap(), 0xBEEF);
        // Read-only cell keeps its captured value.
        assert_eq!(l.read_cell(&merged, "CYCLES").unwrap(), 1234);
    }

    #[test]
    fn reject_readonly_writes_names_cell() {
        let l = demo_layout();
        let captured = BitVec::zeros(l.total_bits());
        let mut shifted = captured.clone();
        l.write_cell(&mut shifted, "CYCLES", 1).unwrap();
        let err = l.reject_readonly_writes(&captured, &shifted).unwrap_err();
        assert_eq!(
            err,
            ScanError::ReadOnlyCell {
                cell: "CYCLES".into(),
                chain: "internal".into()
            }
        );
    }

    #[test]
    #[should_panic(expected = "duplicate cell name")]
    fn duplicate_cell_panics() {
        let _ = ChainLayout::builder("x")
            .cell("A", 1, CellAccess::ReadWrite)
            .cell("A", 1, CellAccess::ReadWrite);
    }

    #[test]
    fn try_cell_reports_typed_errors() {
        let err = ChainLayout::builder("x")
            .try_cell("A", 0, CellAccess::ReadWrite)
            .unwrap_err();
        assert!(matches!(err, ScanError::InvalidCellDef { .. }));
        let err = ChainLayout::builder("x")
            .try_cell("A", 65, CellAccess::ReadWrite)
            .unwrap_err();
        assert!(matches!(err, ScanError::InvalidCellDef { .. }));
        let err = ChainLayout::builder("x")
            .try_cell("A", 1, CellAccess::ReadWrite)
            .unwrap()
            .try_cell("A", 1, CellAccess::ReadWrite)
            .unwrap_err();
        assert!(matches!(err, ScanError::InvalidCellDef { cell, .. } if cell == "A"));
        // The happy path still builds a usable layout.
        let layout = ChainLayout::builder("x")
            .try_cell("A", 4, CellAccess::ReadWrite)
            .unwrap()
            .build();
        assert_eq!(layout.total_bits(), 4);
    }
}
