//! The debug-event unit: breakpoints and watchpoints programmed via scan.
//!
//! GOOFI's SCIFI algorithm "requires breakpoints to be set according to the
//! points in time when the fault should be injected … The breakpoint is
//! obtained by analysing the workload code and is set via the scan-chains"
//! (paper §3.3). A fault injection experiment can also "be terminated by a
//! debug event generated via the scan chains i.e., when a time-out value has
//! been reached" (§3.2).
//!
//! [`DebugUnit`] models that logic: a set of armed [`DebugCondition`]s that
//! the core reports its activity to ([`BusEvent`]) and that fires
//! [`DebugEvent`]s. The unit's configuration registers are exposed as a scan
//! chain so the test card programs it exactly the way the paper describes.

use crate::{BitVec, CellAccess, ChainLayout};

/// A condition the debug unit can be armed with.
///
/// The first two are the paper's §3.3 breakpoints; the rest are the "future
/// extensions" triggers from §4 (data access, branch instructions,
/// subprogram calls, real-time clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DebugCondition {
    /// Break when the program counter reaches the given address.
    PcEquals(u32),
    /// Break once the executed-instruction count reaches the given value.
    InstructionCount(u64),
    /// Break when the given data address is read or written.
    DataAccess(u32),
    /// Break when the given data address is written.
    DataWrite(u32),
    /// Break on execution of any taken branch instruction.
    BranchExecuted,
    /// Break on execution of any subprogram call instruction.
    CallExecuted,
    /// Break when the cycle counter (real-time clock) reaches the value.
    CycleCount(u64),
}

/// A debug event the unit reports to the test card.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DebugEvent {
    /// The condition that fired.
    pub condition: DebugCondition,
    /// Instruction count at which it fired.
    pub at_instruction: u64,
    /// Cycle count at which it fired.
    pub at_cycle: u64,
}

/// Core activity reported to the debug unit each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusEvent {
    /// An instruction at `pc` is about to execute.
    Fetch {
        /// Address of the instruction.
        pc: u32,
    },
    /// A data read from `addr` completed.
    DataRead {
        /// Address read.
        addr: u32,
    },
    /// A data write to `addr` completed.
    DataWrite {
        /// Address written.
        addr: u32,
    },
    /// A taken branch to `target` executed.
    Branch {
        /// Branch target address.
        target: u32,
    },
    /// A subprogram call to `target` executed.
    Call {
        /// Call target address.
        target: u32,
    },
}

/// Number of condition slots in the hardware unit.
pub const DEBUG_SLOTS: usize = 4;

/// The debug-event unit of a scan-instrumented core.
///
/// Holds up to [`DEBUG_SLOTS`] armed conditions. Once any condition fires the
/// unit latches the event until [`DebugUnit::clear`]; the core is expected to
/// halt when [`DebugUnit::pending`] is set.
#[derive(Debug, Clone, Default)]
pub struct DebugUnit {
    conditions: Vec<DebugCondition>,
    pending: Option<DebugEvent>,
    instructions: u64,
    cycles: u64,
}

impl DebugUnit {
    /// Creates an empty, disarmed unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms a condition.
    ///
    /// # Panics
    ///
    /// Panics if all [`DEBUG_SLOTS`] slots are in use.
    pub fn arm(&mut self, condition: DebugCondition) {
        assert!(
            self.conditions.len() < DEBUG_SLOTS,
            "all {DEBUG_SLOTS} debug slots in use"
        );
        self.conditions.push(condition);
    }

    /// Removes all armed conditions and any pending event.
    pub fn disarm_all(&mut self) {
        self.conditions.clear();
        self.pending = None;
    }

    /// Currently armed conditions.
    pub fn conditions(&self) -> &[DebugCondition] {
        &self.conditions
    }

    /// The latched event, if one has fired.
    pub fn pending(&self) -> Option<DebugEvent> {
        self.pending
    }

    /// Clears a latched event so execution can continue.
    pub fn clear(&mut self) {
        self.pending = None;
    }

    /// Resets progress counters (on target reset).
    pub fn reset_counters(&mut self) {
        self.instructions = 0;
        self.cycles = 0;
        self.pending = None;
    }

    /// Instructions observed since the last reset.
    pub fn instruction_count(&self) -> u64 {
        self.instructions
    }

    /// Cycles observed since the last reset.
    pub fn cycle_count(&self) -> u64 {
        self.cycles
    }

    /// Advances the cycle counter; fires any armed cycle-count condition.
    pub fn on_cycles(&mut self, cycles: u64) {
        self.cycles += cycles;
        if self.pending.is_none() {
            for &c in &self.conditions {
                if let DebugCondition::CycleCount(n) = c {
                    if self.cycles >= n {
                        self.pending = Some(DebugEvent {
                            condition: c,
                            at_instruction: self.instructions,
                            at_cycle: self.cycles,
                        });
                        break;
                    }
                }
            }
        }
    }

    /// Reports one core bus event; returns the debug event if one fired now.
    ///
    /// A `Fetch` event also increments the instruction counter, *after*
    /// matching `InstructionCount` conditions, so a condition armed with
    /// count `n` fires before the `(n+1)`-th instruction executes (i.e.
    /// after `n` complete instructions — the semantics the SCIFI algorithm
    /// needs to inject "after N instructions").
    pub fn observe(&mut self, event: BusEvent) -> Option<DebugEvent> {
        if self.pending.is_some() {
            if let BusEvent::Fetch { .. } = event {
                // Core is halting; don't double-count.
            }
            return None;
        }
        let fired = self.conditions.iter().copied().find(|&c| match (c, event) {
            (DebugCondition::PcEquals(want), BusEvent::Fetch { pc }) => pc == want,
            (DebugCondition::InstructionCount(n), BusEvent::Fetch { .. }) => self.instructions >= n,
            (DebugCondition::DataAccess(a), BusEvent::DataRead { addr }) => addr == a,
            (DebugCondition::DataAccess(a), BusEvent::DataWrite { addr }) => addr == a,
            (DebugCondition::DataWrite(a), BusEvent::DataWrite { addr }) => addr == a,
            (DebugCondition::BranchExecuted, BusEvent::Branch { .. }) => true,
            (DebugCondition::CallExecuted, BusEvent::Call { .. }) => true,
            _ => false,
        });
        if let Some(condition) = fired {
            let ev = DebugEvent {
                condition,
                at_instruction: self.instructions,
                at_cycle: self.cycles,
            };
            self.pending = Some(ev);
            return Some(ev);
        }
        if let BusEvent::Fetch { .. } = event {
            self.instructions += 1;
        }
        None
    }

    /// Layout of the debug unit's configuration/status scan chain.
    ///
    /// Four condition slots (kind + operand each) plus read-only status.
    pub fn chain_layout() -> ChainLayout {
        let mut b = ChainLayout::builder("debug");
        for i in 0..DEBUG_SLOTS {
            b = b
                .cell(format!("COND{i}.KIND"), 4, CellAccess::ReadWrite)
                .cell(format!("COND{i}.OPERAND"), 64, CellAccess::ReadWrite);
        }
        b.cell("HIT", 1, CellAccess::ReadOnly)
            .cell("HIT_SLOT", 4, CellAccess::ReadOnly)
            .cell("ICOUNT", 64, CellAccess::ReadOnly)
            .cell("CCOUNT", 64, CellAccess::ReadOnly)
            .build()
    }

    /// Captures the unit's registers into a scan image.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::ScanError`] from cell access; cannot fail for
    /// the layout this unit builds itself, but kept fallible so callers in
    /// scan transport paths never have to panic.
    pub fn capture(&self) -> Result<BitVec, crate::ScanError> {
        let layout = Self::chain_layout();
        let mut bits = BitVec::zeros(layout.total_bits());
        for (i, c) in self.conditions.iter().enumerate() {
            let (kind, operand) = encode_condition(*c);
            layout.write_cell(&mut bits, &format!("COND{i}.KIND"), kind as u64)?;
            layout.write_cell(&mut bits, &format!("COND{i}.OPERAND"), operand)?;
        }
        let hit_slot = self
            .pending
            .and_then(|ev| self.conditions.iter().position(|&c| c == ev.condition))
            .unwrap_or(0);
        layout.write_cell(&mut bits, "HIT", self.pending.is_some() as u64)?;
        layout.write_cell(&mut bits, "HIT_SLOT", hit_slot as u64)?;
        layout.write_cell(&mut bits, "ICOUNT", self.instructions)?;
        layout.write_cell(&mut bits, "CCOUNT", self.cycles)?;
        Ok(bits)
    }

    /// Applies an update image to the unit's writable registers.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ScanError::LengthMismatch`] (via cell access) when
    /// `bits` is not a full debug-chain image.
    pub fn update(&mut self, bits: &BitVec) -> Result<(), crate::ScanError> {
        let layout = Self::chain_layout();
        let mut decoded = Vec::new();
        for i in 0..DEBUG_SLOTS {
            let kind = layout.read_cell(bits, &format!("COND{i}.KIND"))? as u8;
            let operand = layout.read_cell(bits, &format!("COND{i}.OPERAND"))?;
            if let Some(c) = decode_condition(kind, operand) {
                decoded.push(c);
            }
        }
        self.conditions = decoded;
        Ok(())
    }
}

fn encode_condition(c: DebugCondition) -> (u8, u64) {
    match c {
        DebugCondition::PcEquals(a) => (1, a as u64),
        DebugCondition::InstructionCount(n) => (2, n),
        DebugCondition::DataAccess(a) => (3, a as u64),
        DebugCondition::DataWrite(a) => (4, a as u64),
        DebugCondition::BranchExecuted => (5, 0),
        DebugCondition::CallExecuted => (6, 0),
        DebugCondition::CycleCount(n) => (7, n),
    }
}

fn decode_condition(kind: u8, operand: u64) -> Option<DebugCondition> {
    Some(match kind {
        1 => DebugCondition::PcEquals(operand as u32),
        2 => DebugCondition::InstructionCount(operand),
        3 => DebugCondition::DataAccess(operand as u32),
        4 => DebugCondition::DataWrite(operand as u32),
        5 => DebugCondition::BranchExecuted,
        6 => DebugCondition::CallExecuted,
        7 => DebugCondition::CycleCount(operand),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_breakpoint_fires_on_fetch() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::PcEquals(0x40));
        assert!(du.observe(BusEvent::Fetch { pc: 0x3C }).is_none());
        let ev = du.observe(BusEvent::Fetch { pc: 0x40 }).unwrap();
        assert_eq!(ev.condition, DebugCondition::PcEquals(0x40));
        assert_eq!(ev.at_instruction, 1);
        assert!(du.pending().is_some());
    }

    #[test]
    fn instruction_count_fires_after_n_instructions() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::InstructionCount(3));
        for pc in [0u32, 4, 8] {
            assert!(du.observe(BusEvent::Fetch { pc }).is_none(), "pc {pc}");
        }
        let ev = du.observe(BusEvent::Fetch { pc: 12 }).unwrap();
        assert_eq!(ev.at_instruction, 3);
    }

    #[test]
    fn data_access_fires_on_read_and_write() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::DataAccess(0x100));
        assert!(du.observe(BusEvent::DataRead { addr: 0x104 }).is_none());
        assert!(du.observe(BusEvent::DataRead { addr: 0x100 }).is_some());
        du.clear();
        assert!(du.observe(BusEvent::DataWrite { addr: 0x100 }).is_some());
    }

    #[test]
    fn data_write_ignores_reads() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::DataWrite(0x80));
        assert!(du.observe(BusEvent::DataRead { addr: 0x80 }).is_none());
        assert!(du.observe(BusEvent::DataWrite { addr: 0x80 }).is_some());
    }

    #[test]
    fn branch_and_call_triggers() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::BranchExecuted);
        assert!(du.observe(BusEvent::Call { target: 8 }).is_none());
        assert!(du.observe(BusEvent::Branch { target: 4 }).is_some());
        du.disarm_all();
        du.arm(DebugCondition::CallExecuted);
        assert!(du.observe(BusEvent::Branch { target: 4 }).is_none());
        assert!(du.observe(BusEvent::Call { target: 8 }).is_some());
    }

    #[test]
    fn cycle_count_fires_via_on_cycles() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::CycleCount(100));
        du.on_cycles(60);
        assert!(du.pending().is_none());
        du.on_cycles(60);
        let ev = du.pending().unwrap();
        assert_eq!(ev.at_cycle, 120);
    }

    #[test]
    fn latched_event_suppresses_further_counting() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::PcEquals(0));
        du.observe(BusEvent::Fetch { pc: 0 }).unwrap();
        let count = du.instruction_count();
        assert!(du.observe(BusEvent::Fetch { pc: 4 }).is_none());
        assert_eq!(du.instruction_count(), count);
        du.clear();
        assert!(du.pending().is_none());
    }

    #[test]
    fn scan_roundtrip_preserves_conditions() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::PcEquals(0xABCD));
        du.arm(DebugCondition::InstructionCount(42));
        du.arm(DebugCondition::CycleCount(9999));
        let image = du.capture().unwrap();

        let mut other = DebugUnit::new();
        other.update(&image).unwrap();
        assert_eq!(other.conditions(), du.conditions());
        // A wrong-size image is a typed error, not a panic.
        assert!(other.update(&BitVec::zeros(3)).is_err());
    }

    #[test]
    fn capture_exposes_hit_status_read_only() {
        let mut du = DebugUnit::new();
        du.arm(DebugCondition::PcEquals(4));
        du.observe(BusEvent::Fetch { pc: 4 });
        let layout = DebugUnit::chain_layout();
        let image = du.capture().unwrap();
        assert_eq!(layout.read_cell(&image, "HIT").unwrap(), 1);
        assert_eq!(layout.cell("HIT").unwrap().access, CellAccess::ReadOnly);
        // The breakpoint fires on fetch, before the instruction completes.
        assert_eq!(layout.read_cell(&image, "ICOUNT").unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "debug slots in use")]
    fn arming_too_many_conditions_panics() {
        let mut du = DebugUnit::new();
        for i in 0..=DEBUG_SLOTS {
            du.arm(DebugCondition::PcEquals(i as u32));
        }
    }
}
