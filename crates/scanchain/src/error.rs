//! Error type for scan-chain operations.

use std::error::Error;
use std::fmt;

/// Errors reported by scan-chain and test-card operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanError {
    /// The named chain does not exist on the target.
    UnknownChain(String),
    /// The named cell does not exist in the chain layout.
    UnknownCell(String),
    /// An update tried to modify a read-only cell.
    ReadOnlyCell {
        /// Cell whose bits were modified.
        cell: String,
        /// Chain containing the cell.
        chain: String,
    },
    /// A shifted vector did not match the chain length.
    LengthMismatch {
        /// Bits expected by the chain.
        expected: usize,
        /// Bits supplied by the caller.
        got: usize,
    },
    /// A value did not fit in the cell width.
    ValueTooWide {
        /// Target cell.
        cell: String,
        /// Width of the cell in bits.
        width: usize,
        /// Value that did not fit.
        value: u64,
    },
    /// The TAP controller was in the wrong state for the requested operation.
    BadTapState {
        /// State the controller was in.
        state: &'static str,
        /// Operation that was attempted.
        operation: &'static str,
    },
    /// A shift never completed: the transport stalled mid-transaction.
    ShiftStall {
        /// Operation (chain access) that stalled.
        operation: String,
    },
    /// The scan link is (transiently) disconnected.
    LinkDown {
        /// Operation attempted while the link was down.
        operation: String,
    },
    /// A non-positive TCK frequency was supplied to a timing estimate.
    BadFrequency,
    /// A cell definition was rejected while building a chain layout.
    InvalidCellDef {
        /// Offending cell name.
        cell: String,
        /// Why the definition was rejected.
        detail: String,
    },
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanError::UnknownChain(name) => write!(f, "unknown scan chain `{name}`"),
            ScanError::UnknownCell(name) => write!(f, "unknown scan cell `{name}`"),
            ScanError::ReadOnlyCell { cell, chain } => {
                write!(f, "cell `{cell}` in chain `{chain}` is read-only")
            }
            ScanError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "chain length mismatch: expected {expected} bits, got {got}"
                )
            }
            ScanError::ValueTooWide { cell, width, value } => {
                write!(
                    f,
                    "value {value:#x} does not fit in {width}-bit cell `{cell}`"
                )
            }
            ScanError::BadTapState { state, operation } => {
                write!(
                    f,
                    "TAP controller in state {state} cannot perform {operation}"
                )
            }
            ScanError::ShiftStall { operation } => {
                write!(f, "scan shift stalled during {operation}")
            }
            ScanError::LinkDown { operation } => {
                write!(f, "scan link disconnected during {operation}")
            }
            ScanError::BadFrequency => f.write_str("TCK frequency must be positive"),
            ScanError::InvalidCellDef { cell, detail } => {
                write!(f, "invalid cell definition `{cell}`: {detail}")
            }
        }
    }
}

impl Error for ScanError {}
