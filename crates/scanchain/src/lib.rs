//! Scan-chain infrastructure for scan-chain implemented fault injection (SCIFI).
//!
//! This crate models the built-in test logic that the GOOFI paper (DSN 2003)
//! uses to inject faults into the Thor RD microprocessor: IEEE 1149.1-style
//! boundary and internal scan chains, the TAP controller state machine, a
//! debug-event unit programmed through the scan chains, and the host-side
//! *test card* that shifts bits in and out of a target device.
//!
//! The central abstraction is [`ScanTarget`]: any device (for this
//! reproduction, the `thor` CPU simulator) that exposes named scan chains can
//! be driven by a [`TestCard`], which in turn is what the GOOFI framework's
//! SCIFI algorithm talks to.
//!
//! # Example
//!
//! ```
//! use scanchain::{BitVec, ChainLayout, CellAccess};
//!
//! // Describe a tiny chain with a writable 8-bit register and a read-only flag.
//! let layout = ChainLayout::builder("demo")
//!     .cell("REG", 8, CellAccess::ReadWrite)
//!     .cell("FLAG", 1, CellAccess::ReadOnly)
//!     .build();
//! assert_eq!(layout.total_bits(), 9);
//!
//! let mut bits = BitVec::zeros(layout.total_bits());
//! layout.write_cell(&mut bits, "REG", 0xA5).unwrap();
//! assert_eq!(layout.read_cell(&bits, "REG").unwrap(), 0xA5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitvec;
mod chain;
mod debug;
mod error;
mod link;
mod tap;
mod testcard;
mod wedge;

pub use bitvec::BitVec;
pub use chain::{CellAccess, CellDef, ChainLayout, ChainLayoutBuilder};
pub use debug::{BusEvent, DebugCondition, DebugEvent, DebugUnit, DEBUG_SLOTS};
pub use error::ScanError;
pub use link::{FaultyScanTarget, LinkFault, LinkFaultConfig, LinkFaultCounts, LinkFaultModel};
pub use tap::{TapController, TapInstruction, TapState};
pub use testcard::{ScanTarget, ScanTxn, TestCard, TestCardStats};
pub use wedge::{RecoveryDepth, WedgeConfig, WedgeCounts, WedgeKind, WedgeModel};
