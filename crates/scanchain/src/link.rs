//! Transport-level link faults: the scan link itself as a fault location.
//!
//! The GOOFI paper assumes the test card's JTAG link is perfect; real
//! deployments meet corrupted readbacks, lost transactions and stalled
//! shifts. [`LinkFaultModel`] is a *seeded, deterministic* model of such an
//! unreliable link, and [`FaultyScanTarget`] wraps any [`ScanTarget`] so the
//! whole capture/update transport misbehaves at configurable rates. The
//! recovery side (verified reads, re-shift, quarantine) lives in
//! `goofi-core`; this crate only produces the faults.
//!
//! Determinism matters: an experiment campaign run twice with the same
//! [`LinkFaultConfig`] sees the *same* sequence of link faults, which is
//! what makes the recovery layer's "bit-for-bit identical result" tests
//! possible. The model therefore draws from an in-crate SplitMix64 stream
//! rather than any global randomness.

use crate::{BitVec, ChainLayout, ScanError, ScanTarget};
use std::fmt;

/// One kind of transport fault the link can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkFault {
    /// A single shifted bit is inverted in flight.
    CorruptBit,
    /// The transaction is silently lost (writes never reach the device,
    /// reads return a stale all-zero image).
    Drop,
    /// The transaction is applied twice (idempotent for reads, and for the
    /// masked full-image updates the test card performs, but still a
    /// distinct link behaviour worth modelling and counting).
    Duplicate,
    /// The shift never completes; the operation fails with
    /// [`ScanError::ShiftStall`].
    Stall,
    /// The link is down for this transaction; the operation fails with
    /// [`ScanError::LinkDown`].
    Disconnect,
}

impl fmt::Display for LinkFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LinkFault::CorruptBit => "corrupt",
            LinkFault::Drop => "drop",
            LinkFault::Duplicate => "duplicate",
            LinkFault::Stall => "stall",
            LinkFault::Disconnect => "disconnect",
        })
    }
}

/// Configuration of the link fault model: per-transaction probabilities of
/// each fault kind, plus bounds that keep campaigns controllable.
///
/// All rates are per scan transaction, in `[0, 1]`; their sum must not
/// exceed 1. The default configuration injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability of a single-bit corruption.
    pub corrupt_rate: f64,
    /// Probability of a dropped transaction.
    pub drop_rate: f64,
    /// Probability of a duplicated transaction.
    pub duplicate_rate: f64,
    /// Probability of a stalled shift.
    pub stall_rate: f64,
    /// Probability of a transient disconnect.
    pub disconnect_rate: f64,
    /// Number of initial transactions left fault-free (e.g. to protect a
    /// reference run while faulting the rest of a campaign).
    pub skip_ops: u64,
    /// Upper bound on injected events; once reached the link is healthy
    /// again (`None` = unbounded).
    pub max_events: Option<u64>,
}

impl Default for LinkFaultConfig {
    fn default() -> Self {
        LinkFaultConfig {
            seed: 0,
            corrupt_rate: 0.0,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            stall_rate: 0.0,
            disconnect_rate: 0.0,
            skip_ops: 0,
            max_events: None,
        }
    }
}

impl LinkFaultConfig {
    /// A configuration that corrupts single bits at `rate` with `seed`.
    pub fn corrupt(seed: u64, rate: f64) -> Self {
        LinkFaultConfig {
            seed,
            corrupt_rate: rate,
            ..Default::default()
        }
    }

    /// Sum of all fault rates (probability a transaction is disturbed).
    pub fn total_rate(&self) -> f64 {
        self.corrupt_rate
            + self.drop_rate
            + self.duplicate_rate
            + self.stall_rate
            + self.disconnect_rate
    }

    /// Whether the configuration can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.total_rate() > 0.0 && self.max_events != Some(0)
    }

    /// Parses a `key=value,...` specification as used by the CLI's
    /// `--link-faults` flag, e.g.
    /// `seed=42,corrupt=0.01,drop=0.001,dup=0.001,stall=0.0005,disc=0.0005,skip=30,max=100`.
    ///
    /// Unknown keys, malformed numbers, out-of-range rates, or a rate sum
    /// above 1 return `None`.
    pub fn decode(spec: &str) -> Option<Self> {
        let mut cfg = LinkFaultConfig::default();
        for part in spec.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            let rate = |v: &str| -> Option<f64> {
                let r: f64 = v.parse().ok()?;
                (0.0..=1.0).contains(&r).then_some(r)
            };
            match key.trim() {
                "seed" => cfg.seed = value.parse().ok()?,
                "corrupt" => cfg.corrupt_rate = rate(value)?,
                "drop" => cfg.drop_rate = rate(value)?,
                "dup" | "duplicate" => cfg.duplicate_rate = rate(value)?,
                "stall" => cfg.stall_rate = rate(value)?,
                "disc" | "disconnect" => cfg.disconnect_rate = rate(value)?,
                "skip" => cfg.skip_ops = value.parse().ok()?,
                "max" => cfg.max_events = Some(value.parse().ok()?),
                _ => return None,
            }
        }
        (cfg.total_rate() <= 1.0).then_some(cfg)
    }

    /// Renders the configuration in [`LinkFaultConfig::decode`] format.
    pub fn encode(&self) -> String {
        let mut s = format!(
            "seed={},corrupt={},drop={},dup={},stall={},disc={}",
            self.seed,
            self.corrupt_rate,
            self.drop_rate,
            self.duplicate_rate,
            self.stall_rate,
            self.disconnect_rate
        );
        if self.skip_ops > 0 {
            s.push_str(&format!(",skip={}", self.skip_ops));
        }
        if let Some(max) = self.max_events {
            s.push_str(&format!(",max={max}"));
        }
        s
    }
}

/// Per-kind counters of injected link events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkFaultCounts {
    /// Bits corrupted in flight.
    pub corrupted: u64,
    /// Transactions dropped.
    pub dropped: u64,
    /// Transactions duplicated.
    pub duplicated: u64,
    /// Shifts stalled.
    pub stalled: u64,
    /// Transient disconnects.
    pub disconnected: u64,
}

impl LinkFaultCounts {
    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.corrupted + self.dropped + self.duplicated + self.stalled + self.disconnected
    }
}

/// Deterministic, seeded stream of transport faults.
///
/// Every scan transaction asks the model [`LinkFaultModel::next_fault`];
/// the answer depends only on the configuration and the number of
/// transactions seen so far, never on wall-clock time or global RNG state.
#[derive(Debug, Clone)]
pub struct LinkFaultModel {
    config: LinkFaultConfig,
    rng: u64,
    ops: u64,
    counts: LinkFaultCounts,
}

/// SplitMix64 step — small, fast, and good enough for fault scheduling;
/// hand-rolled because this crate deliberately has no runtime dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LinkFaultModel {
    /// Creates a model from a configuration.
    pub fn new(config: LinkFaultConfig) -> Self {
        LinkFaultModel {
            rng: config.seed ^ 0xA5A5_5A5A_DEAD_BEEF,
            config,
            ops: 0,
            counts: LinkFaultCounts::default(),
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &LinkFaultConfig {
        &self.config
    }

    /// Transactions observed so far (faulted or not).
    pub fn ops_observed(&self) -> u64 {
        self.ops
    }

    /// Events injected so far, by kind.
    pub fn counts(&self) -> LinkFaultCounts {
        self.counts
    }

    /// Total events injected so far.
    pub fn events_injected(&self) -> u64 {
        self.counts.total()
    }

    /// Draws a uniform value in `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        (splitmix64(&mut self.rng) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Draws a uniform index in `0..n` (`n > 0`).
    pub fn random_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (splitmix64(&mut self.rng) % n as u64) as usize
    }

    /// Decides the fate of the next transaction.
    ///
    /// Advances the deterministic stream; returns `None` for a fault-free
    /// transaction. The per-kind decision consumes one draw whether or not
    /// a fault fires, so rate changes do not shift the schedule of
    /// unrelated kinds.
    pub fn next_fault(&mut self) -> Option<LinkFault> {
        self.ops += 1;
        let u = self.uniform();
        if self.ops <= self.config.skip_ops {
            return None;
        }
        if let Some(max) = self.config.max_events {
            if self.counts.total() >= max {
                return None;
            }
        }
        let mut threshold = self.config.corrupt_rate;
        if u < threshold {
            self.counts.corrupted += 1;
            return Some(LinkFault::CorruptBit);
        }
        threshold += self.config.drop_rate;
        if u < threshold {
            self.counts.dropped += 1;
            return Some(LinkFault::Drop);
        }
        threshold += self.config.duplicate_rate;
        if u < threshold {
            self.counts.duplicated += 1;
            return Some(LinkFault::Duplicate);
        }
        threshold += self.config.stall_rate;
        if u < threshold {
            self.counts.stalled += 1;
            return Some(LinkFault::Stall);
        }
        threshold += self.config.disconnect_rate;
        if u < threshold {
            self.counts.disconnected += 1;
            return Some(LinkFault::Disconnect);
        }
        None
    }

    /// Applies a fault decision to a captured (read) image.
    ///
    /// Returns the possibly-disturbed image, or the typed error for
    /// stall/disconnect faults. `operation` names the transaction for
    /// error messages.
    pub fn disturb_read(&mut self, image: BitVec, operation: &str) -> Result<BitVec, ScanError> {
        match self.next_fault() {
            None | Some(LinkFault::Duplicate) => Ok(image),
            Some(LinkFault::CorruptBit) => {
                let mut image = image;
                if !image.is_empty() {
                    let bit = self.random_index(image.len());
                    image.flip(bit);
                }
                Ok(image)
            }
            // A dropped read transaction returns a stale all-zero image.
            Some(LinkFault::Drop) => Ok(BitVec::zeros(image.len())),
            Some(LinkFault::Stall) => Err(ScanError::ShiftStall {
                operation: operation.to_string(),
            }),
            Some(LinkFault::Disconnect) => Err(ScanError::LinkDown {
                operation: operation.to_string(),
            }),
        }
    }
}

/// A [`ScanTarget`] whose transport misbehaves per a [`LinkFaultModel`].
///
/// Capture transactions can return corrupted or stale images or fail with
/// [`ScanError::ShiftStall`]/[`ScanError::LinkDown`]; update transactions
/// can be corrupted in flight, silently dropped, duplicated, or fail the
/// same way. Layout queries are host-side metadata and are never faulted.
#[derive(Debug)]
pub struct FaultyScanTarget<T> {
    inner: T,
    model: LinkFaultModel,
}

impl<T: ScanTarget> FaultyScanTarget<T> {
    /// Wraps `inner` with the given fault model.
    pub fn new(inner: T, model: LinkFaultModel) -> Self {
        FaultyScanTarget { inner, model }
    }

    /// Shared access to the wrapped target.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// The fault model (for event counters).
    pub fn model(&self) -> &LinkFaultModel {
        &self.model
    }

    /// Consumes the wrapper, returning the target and the model.
    pub fn into_parts(self) -> (T, LinkFaultModel) {
        (self.inner, self.model)
    }
}

impl<T: ScanTarget> ScanTarget for FaultyScanTarget<T> {
    fn chain_names(&self) -> Vec<String> {
        self.inner.chain_names()
    }

    fn chain_layout(&self, chain: &str) -> Option<&ChainLayout> {
        self.inner.chain_layout(chain)
    }

    fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError> {
        // `capture_chain` takes `&self`, so the decision is made by an
        // interior clone of the stream advanced on `update_chain`; to keep
        // the model single-streamed the faulting wrapper instead disturbs
        // captures in `update_chain` order. In practice the test card pairs
        // every capture with an update (one DR access), so faulting at
        // update granularity faults whole transactions — which is exactly
        // the unit the paper's test card shifts.
        self.inner.capture_chain(chain)
    }

    fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError> {
        match self.model.next_fault() {
            None => self.inner.update_chain(chain, bits),
            Some(LinkFault::CorruptBit) => {
                let mut disturbed = bits.clone();
                if !disturbed.is_empty() {
                    let bit = self.model.random_index(disturbed.len());
                    disturbed.flip(bit);
                }
                self.inner.update_chain(chain, &disturbed)
            }
            // The update never reaches the device.
            Some(LinkFault::Drop) => Ok(()),
            Some(LinkFault::Duplicate) => {
                self.inner.update_chain(chain, bits)?;
                self.inner.update_chain(chain, bits)
            }
            Some(LinkFault::Stall) => Err(ScanError::ShiftStall {
                operation: format!("update `{chain}`"),
            }),
            Some(LinkFault::Disconnect) => Err(ScanError::LinkDown {
                operation: format!("update `{chain}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_injects_nothing() {
        let mut m = LinkFaultModel::new(LinkFaultConfig::default());
        for _ in 0..10_000 {
            assert_eq!(m.next_fault(), None);
        }
        assert_eq!(m.events_injected(), 0);
        assert_eq!(m.ops_observed(), 10_000);
        assert!(!LinkFaultConfig::default().is_active());
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let cfg = LinkFaultConfig {
            seed: 7,
            corrupt_rate: 0.05,
            drop_rate: 0.02,
            duplicate_rate: 0.02,
            stall_rate: 0.01,
            disconnect_rate: 0.01,
            ..Default::default()
        };
        let mut a = LinkFaultModel::new(cfg);
        let mut b = LinkFaultModel::new(cfg);
        let fa: Vec<_> = (0..5_000).map(|_| a.next_fault()).collect();
        let fb: Vec<_> = (0..5_000).map(|_| b.next_fault()).collect();
        assert_eq!(fa, fb);
        assert!(a.events_injected() > 0, "rates this high must fire");
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_give_different_streams() {
        let mk = |seed| {
            let mut m = LinkFaultModel::new(LinkFaultConfig::corrupt(seed, 0.1));
            (0..2_000).map(|_| m.next_fault()).collect::<Vec<_>>()
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn rates_are_roughly_respected() {
        let mut m = LinkFaultModel::new(LinkFaultConfig::corrupt(3, 0.1));
        let n = 50_000;
        let fired = (0..n).filter(|_| m.next_fault().is_some()).count();
        let rate = fired as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn skip_ops_protects_prefix_and_max_events_heals() {
        let cfg = LinkFaultConfig {
            seed: 1,
            corrupt_rate: 0.5,
            skip_ops: 100,
            max_events: Some(3),
            ..Default::default()
        };
        let mut m = LinkFaultModel::new(cfg);
        for _ in 0..100 {
            assert_eq!(m.next_fault(), None, "skip window must be clean");
        }
        let fired: u64 = (0..1_000).filter(|_| m.next_fault().is_some()).count() as u64;
        assert_eq!(fired, 3, "budget bounds total events");
        assert_eq!(m.events_injected(), 3);
    }

    #[test]
    fn config_decode_encode_roundtrip() {
        let spec =
            "seed=42,corrupt=0.01,drop=0.001,dup=0.002,stall=0.0005,disc=0.0001,skip=30,max=100";
        let cfg = LinkFaultConfig::decode(spec).unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.corrupt_rate, 0.01);
        assert_eq!(cfg.drop_rate, 0.001);
        assert_eq!(cfg.duplicate_rate, 0.002);
        assert_eq!(cfg.stall_rate, 0.0005);
        assert_eq!(cfg.disconnect_rate, 0.0001);
        assert_eq!(cfg.skip_ops, 30);
        assert_eq!(cfg.max_events, Some(100));
        assert_eq!(LinkFaultConfig::decode(&cfg.encode()), Some(cfg));
        // Malformed specs are rejected.
        assert_eq!(LinkFaultConfig::decode("corrupt=2.0"), None);
        assert_eq!(LinkFaultConfig::decode("nope=1"), None);
        assert_eq!(LinkFaultConfig::decode("corrupt"), None);
        assert_eq!(LinkFaultConfig::decode("corrupt=0.9,drop=0.9"), None);
        // Empty spec = default.
        assert_eq!(
            LinkFaultConfig::decode(""),
            Some(LinkFaultConfig::default())
        );
    }

    #[test]
    fn disturb_read_corrupts_exactly_one_bit() {
        let mut m = LinkFaultModel::new(LinkFaultConfig::corrupt(9, 1.0));
        let clean = BitVec::zeros(64);
        let dirty = m.disturb_read(clean.clone(), "read").unwrap();
        assert_eq!(clean.diff_indices(&dirty).len(), 1);
    }

    #[test]
    fn disturb_read_maps_stall_and_disconnect_to_errors() {
        let mut m = LinkFaultModel::new(LinkFaultConfig {
            seed: 11,
            stall_rate: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            m.disturb_read(BitVec::zeros(8), "read `internal`"),
            Err(ScanError::ShiftStall { .. })
        ));
        let mut m = LinkFaultModel::new(LinkFaultConfig {
            seed: 11,
            disconnect_rate: 1.0,
            ..Default::default()
        });
        assert!(matches!(
            m.disturb_read(BitVec::zeros(8), "read `internal`"),
            Err(ScanError::LinkDown { .. })
        ));
    }
}
