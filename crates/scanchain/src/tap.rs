//! IEEE 1149.1 TAP (Test Access Port) controller state machine.
//!
//! The Thor RD exposes its scan chains through "built-in test logic …
//! conforming to the IEEE standard for boundary scan" (paper §3.1). This
//! module implements the standard 16-state controller driven by the TMS
//! signal, plus the instruction register commands the test card uses to
//! select and shift chains.

use std::fmt;

/// The sixteen states of the IEEE 1149.1 TAP controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum TapState {
    TestLogicReset,
    RunTestIdle,
    SelectDrScan,
    CaptureDr,
    ShiftDr,
    Exit1Dr,
    PauseDr,
    Exit2Dr,
    UpdateDr,
    SelectIrScan,
    CaptureIr,
    ShiftIr,
    Exit1Ir,
    PauseIr,
    Exit2Ir,
    UpdateIr,
}

impl TapState {
    /// The state reached from `self` when TCK rises with TMS at `tms`.
    ///
    /// This is the transition table straight from the standard.
    pub fn next(self, tms: bool) -> TapState {
        use TapState::*;
        match (self, tms) {
            (TestLogicReset, false) => RunTestIdle,
            (TestLogicReset, true) => TestLogicReset,
            (RunTestIdle, false) => RunTestIdle,
            (RunTestIdle, true) => SelectDrScan,
            (SelectDrScan, false) => CaptureDr,
            (SelectDrScan, true) => SelectIrScan,
            (CaptureDr, false) => ShiftDr,
            (CaptureDr, true) => Exit1Dr,
            (ShiftDr, false) => ShiftDr,
            (ShiftDr, true) => Exit1Dr,
            (Exit1Dr, false) => PauseDr,
            (Exit1Dr, true) => UpdateDr,
            (PauseDr, false) => PauseDr,
            (PauseDr, true) => Exit2Dr,
            (Exit2Dr, false) => ShiftDr,
            (Exit2Dr, true) => UpdateDr,
            (UpdateDr, false) => RunTestIdle,
            (UpdateDr, true) => SelectDrScan,
            (SelectIrScan, false) => CaptureIr,
            (SelectIrScan, true) => TestLogicReset,
            (CaptureIr, false) => ShiftIr,
            (CaptureIr, true) => Exit1Ir,
            (ShiftIr, false) => ShiftIr,
            (ShiftIr, true) => Exit1Ir,
            (Exit1Ir, false) => PauseIr,
            (Exit1Ir, true) => UpdateIr,
            (PauseIr, false) => PauseIr,
            (PauseIr, true) => Exit2Ir,
            (Exit2Ir, false) => ShiftIr,
            (Exit2Ir, true) => UpdateIr,
            (UpdateIr, false) => RunTestIdle,
            (UpdateIr, true) => SelectDrScan,
        }
    }

    /// Short name used in error messages.
    pub fn name(self) -> &'static str {
        use TapState::*;
        match self {
            TestLogicReset => "Test-Logic-Reset",
            RunTestIdle => "Run-Test/Idle",
            SelectDrScan => "Select-DR-Scan",
            CaptureDr => "Capture-DR",
            ShiftDr => "Shift-DR",
            Exit1Dr => "Exit1-DR",
            PauseDr => "Pause-DR",
            Exit2Dr => "Exit2-DR",
            UpdateDr => "Update-DR",
            SelectIrScan => "Select-IR-Scan",
            CaptureIr => "Capture-IR",
            ShiftIr => "Shift-IR",
            Exit1Ir => "Exit1-IR",
            PauseIr => "Pause-IR",
            Exit2Ir => "Exit2-IR",
            UpdateIr => "Update-IR",
        }
    }
}

impl fmt::Display for TapState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Instructions loadable into the TAP instruction register.
///
/// The chain-selecting `ScanN` instruction mirrors the SCAN_N mechanism used
/// by cores with multiple internal chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TapInstruction {
    /// Single-bit bypass register (the standard's mandatory instruction).
    #[default]
    Bypass,
    /// Capture the 32-bit device identification code.
    IdCode,
    /// Sample the boundary chain without disturbing the core.
    SamplePreload,
    /// Drive/observe pins through the boundary chain.
    Extest,
    /// Access the internal core state through the selected internal chain.
    Intest,
    /// Select internal scan chain `n` for subsequent Intest accesses.
    ScanN(u8),
    /// Access the debug-event unit configuration chain.
    Debug,
}

impl TapInstruction {
    /// Encodes the instruction to its 8-bit opcode as shifted through the IR.
    pub fn encode(self) -> u8 {
        match self {
            TapInstruction::Bypass => 0xFF,
            TapInstruction::IdCode => 0x01,
            TapInstruction::SamplePreload => 0x02,
            TapInstruction::Extest => 0x00,
            TapInstruction::Intest => 0x04,
            TapInstruction::ScanN(n) => 0x20 | (n & 0x0F),
            TapInstruction::Debug => 0x08,
        }
    }

    /// Decodes an 8-bit IR value; unknown opcodes decode to `Bypass`, as the
    /// standard requires.
    pub fn decode(code: u8) -> TapInstruction {
        match code {
            0xFF => TapInstruction::Bypass,
            0x01 => TapInstruction::IdCode,
            0x02 => TapInstruction::SamplePreload,
            0x00 => TapInstruction::Extest,
            0x04 => TapInstruction::Intest,
            0x08 => TapInstruction::Debug,
            c if c & 0xF0 == 0x20 => TapInstruction::ScanN(c & 0x0F),
            _ => TapInstruction::Bypass,
        }
    }
}

/// A software model of the TAP controller: the state register, the
/// instruction register and the currently selected data register.
///
/// The [`TestCard`](crate::TestCard) drives this controller with TMS/TDI
/// sequences exactly as a hardware test card would; higher layers never
/// manipulate TAP state directly.
#[derive(Debug, Clone)]
pub struct TapController {
    state: TapState,
    ir_shift: u8,
    instruction: TapInstruction,
    idcode: u32,
    tck_count: u64,
}

impl Default for TapController {
    fn default() -> Self {
        Self::new(0x0000_1DEA)
    }
}

impl TapController {
    /// Creates a controller in Test-Logic-Reset with the given IDCODE.
    pub fn new(idcode: u32) -> Self {
        TapController {
            state: TapState::TestLogicReset,
            ir_shift: 0,
            instruction: TapInstruction::IdCode,
            idcode,
            tck_count: 0,
        }
    }

    /// Current controller state.
    pub fn state(&self) -> TapState {
        self.state
    }

    /// Currently latched instruction.
    pub fn instruction(&self) -> TapInstruction {
        self.instruction
    }

    /// Device identification code.
    pub fn idcode(&self) -> u32 {
        self.idcode
    }

    /// Total TCK cycles applied, used for test-card timing statistics.
    pub fn tck_count(&self) -> u64 {
        self.tck_count
    }

    /// Applies one TCK cycle with the given TMS level.
    pub fn clock(&mut self, tms: bool) {
        self.tck_count += 1;
        let next = self.state.next(tms);
        match next {
            TapState::TestLogicReset => {
                // The standard resets the instruction to IDCODE (or BYPASS).
                self.instruction = TapInstruction::IdCode;
            }
            TapState::CaptureIr => {
                // Capture the fixed pattern 0b01 in the low bits (standard).
                self.ir_shift = 0b0000_0001;
            }
            TapState::UpdateIr => {
                self.instruction = TapInstruction::decode(self.ir_shift);
            }
            _ => {}
        }
        self.state = next;
    }

    /// Clocks the controller through a TMS sequence.
    pub fn clock_seq(&mut self, tms_bits: &[bool]) {
        for &b in tms_bits {
            self.clock(b);
        }
    }

    /// Applies `n` TCK cycles with TMS held low, batched.
    ///
    /// Holding TMS low always reaches a state the controller then stays
    /// in (Run-Test/Idle, Shift-DR/IR, Pause-DR/IR); once there, further
    /// cycles only advance the TCK counter, so they are applied in one
    /// step instead of one call per cycle. Exactly equivalent to calling
    /// [`TapController::clock`]`(false)` `n` times — this is what lets a
    /// scan transaction shift a multi-thousand-bit chain without paying a
    /// state-machine walk per bit.
    pub fn clock_run(&mut self, mut n: u64) {
        while n > 0 {
            if self.state.next(false) == self.state {
                self.tck_count += n;
                return;
            }
            self.clock(false);
            n -= 1;
        }
    }

    /// Shifts one bit through the instruction register while in Shift-IR.
    ///
    /// Returns the bit shifted out of TDO. The caller must hold TMS low
    /// (handled by [`TapController::clock`]); this helper performs the shift
    /// and the clock together.
    ///
    /// # Errors
    ///
    /// Returns an error if the controller is not in Shift-IR.
    pub fn shift_ir_bit(&mut self, tdi: bool) -> Result<bool, crate::ScanError> {
        if self.state != TapState::ShiftIr {
            return Err(crate::ScanError::BadTapState {
                state: self.state.name(),
                operation: "Shift-IR",
            });
        }
        let tdo = self.ir_shift & 1 == 1;
        self.ir_shift >>= 1;
        if tdi {
            self.ir_shift |= 0x80;
        }
        // Remain in Shift-IR (TMS low).
        self.clock(false);
        Ok(tdo)
    }

    /// Navigates from any state — including mid-shift — to Run-Test/Idle
    /// via Test-Logic-Reset, discarding any partially-shifted IR contents.
    ///
    /// This is the recovery primitive the link-resilience layer relies on:
    /// after an interrupted transaction the controller must come back with
    /// no residue of the aborted shift, so the next `load_instruction`
    /// starts from a clean register.
    pub fn reset_to_idle(&mut self) {
        // Five TMS-high clocks reach Test-Logic-Reset from any state.
        self.clock_seq(&[true, true, true, true, true]);
        // An aborted Shift-IR leaves half-shifted bits in the shift
        // register; Test-Logic-Reset discards them along with resetting
        // the latched instruction.
        self.ir_shift = 0;
        self.clock(false);
        debug_assert_eq!(self.state, TapState::RunTestIdle);
    }

    /// Loads `instruction` by walking the IR path from Run-Test/Idle.
    ///
    /// # Errors
    ///
    /// Returns an error if the controller is not in Run-Test/Idle.
    pub fn load_instruction(
        &mut self,
        instruction: TapInstruction,
    ) -> Result<(), crate::ScanError> {
        if self.state != TapState::RunTestIdle {
            return Err(crate::ScanError::BadTapState {
                state: self.state.name(),
                operation: "Load-IR",
            });
        }
        // Idle -> Select-DR -> Select-IR -> Capture-IR -> Shift-IR
        self.clock_seq(&[true, true, false, false]);
        let code = instruction.encode();
        for i in 0..8 {
            // The final bit is shifted on the Exit1-IR transition.
            if i == 7 {
                let tdi = (code >> i) & 1 == 1;
                self.ir_shift >>= 1;
                if tdi {
                    self.ir_shift |= 0x80;
                }
                self.clock(true); // Exit1-IR
            } else {
                self.shift_ir_bit((code >> i) & 1 == 1)?;
            }
        }
        // Exit1-IR -> Update-IR -> Run-Test/Idle
        self.clock(true);
        self.clock(false);
        debug_assert_eq!(self.state, TapState::RunTestIdle);
        debug_assert_eq!(self.instruction, instruction);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_tms_highs_reach_reset_from_anywhere() {
        use TapState::*;
        for start in [
            TestLogicReset,
            RunTestIdle,
            SelectDrScan,
            CaptureDr,
            ShiftDr,
            Exit1Dr,
            PauseDr,
            Exit2Dr,
            UpdateDr,
            SelectIrScan,
            CaptureIr,
            ShiftIr,
            Exit1Ir,
            PauseIr,
            Exit2Ir,
            UpdateIr,
        ] {
            let mut s = start;
            for _ in 0..5 {
                s = s.next(true);
            }
            assert_eq!(s, TestLogicReset, "from {start:?}");
        }
    }

    #[test]
    fn dr_path_walk() {
        use TapState::*;
        let mut s = RunTestIdle;
        for (tms, expect) in [
            (true, SelectDrScan),
            (false, CaptureDr),
            (false, ShiftDr),
            (false, ShiftDr),
            (true, Exit1Dr),
            (false, PauseDr),
            (true, Exit2Dr),
            (false, ShiftDr),
            (true, Exit1Dr),
            (true, UpdateDr),
            (false, RunTestIdle),
        ] {
            s = s.next(tms);
            assert_eq!(s, expect);
        }
    }

    #[test]
    fn instruction_encode_decode_roundtrip() {
        for instr in [
            TapInstruction::Bypass,
            TapInstruction::IdCode,
            TapInstruction::SamplePreload,
            TapInstruction::Extest,
            TapInstruction::Intest,
            TapInstruction::Debug,
            TapInstruction::ScanN(0),
            TapInstruction::ScanN(7),
            TapInstruction::ScanN(15),
        ] {
            assert_eq!(TapInstruction::decode(instr.encode()), instr);
        }
        // Unknown opcodes decode to bypass per the standard.
        assert_eq!(TapInstruction::decode(0x99), TapInstruction::Bypass);
    }

    #[test]
    fn reset_to_idle_from_mid_shift() {
        let mut tap = TapController::default();
        tap.reset_to_idle();
        tap.clock_seq(&[true, false, false]); // into Shift-DR
        assert_eq!(tap.state(), TapState::ShiftDr);
        tap.reset_to_idle();
        assert_eq!(tap.state(), TapState::RunTestIdle);
    }

    #[test]
    fn interrupted_ir_shift_recovers_cleanly() {
        // Regression test for link recovery: abort an IR shift halfway,
        // reset, and check the next instruction load is unaffected by the
        // partially-shifted bits.
        let mut tap = TapController::default();
        tap.reset_to_idle();
        // Walk into Shift-IR and shift only half the DEBUG opcode.
        tap.clock_seq(&[true, true, false, false]);
        assert_eq!(tap.state(), TapState::ShiftIr);
        let code = TapInstruction::Debug.encode();
        for i in 0..4 {
            tap.shift_ir_bit((code >> i) & 1 == 1).unwrap();
        }
        // Simulated link fault: the transaction is abandoned mid-shift.
        tap.reset_to_idle();
        assert_eq!(tap.state(), TapState::RunTestIdle);
        assert_eq!(tap.instruction(), TapInstruction::IdCode);
        // A fresh load must latch exactly the requested instruction.
        tap.load_instruction(TapInstruction::ScanN(5)).unwrap();
        assert_eq!(tap.instruction(), TapInstruction::ScanN(5));
        tap.load_instruction(TapInstruction::Intest).unwrap();
        assert_eq!(tap.instruction(), TapInstruction::Intest);
    }

    #[test]
    fn load_instruction_updates_ir() {
        let mut tap = TapController::default();
        tap.reset_to_idle();
        tap.load_instruction(TapInstruction::ScanN(3)).unwrap();
        assert_eq!(tap.instruction(), TapInstruction::ScanN(3));
        assert_eq!(tap.state(), TapState::RunTestIdle);
        tap.load_instruction(TapInstruction::Intest).unwrap();
        assert_eq!(tap.instruction(), TapInstruction::Intest);
    }

    #[test]
    fn load_instruction_requires_idle() {
        let mut tap = TapController::default();
        // Still in Test-Logic-Reset.
        let err = tap.load_instruction(TapInstruction::Bypass).unwrap_err();
        assert!(matches!(err, crate::ScanError::BadTapState { .. }));
    }

    #[test]
    fn tlr_resets_instruction_to_idcode() {
        let mut tap = TapController::default();
        tap.reset_to_idle();
        tap.load_instruction(TapInstruction::Debug).unwrap();
        tap.clock_seq(&[true, true, true, true, true]);
        assert_eq!(tap.instruction(), TapInstruction::IdCode);
    }

    #[test]
    fn tck_cycles_are_counted() {
        let mut tap = TapController::default();
        let before = tap.tck_count();
        tap.reset_to_idle();
        assert_eq!(tap.tck_count(), before + 6);
    }
}
