//! The host-side test card that drives a scan-instrumented target.
//!
//! GOOFI's SCIFI algorithm begins every experiment with `initTestCard()`
//! (paper Figure 2); the test card is the PC-resident hardware that wiggles
//! the target's TAP pins. [`TestCard`] models it faithfully: every chain
//! access walks the real TAP state machine and shifts the chain bit by bit,
//! so the accounting in [`TestCardStats`] (TCK cycles, bits shifted) gives
//! the same cost model as hardware SCIFI — which is what makes the paper's
//! normal-vs-detail-mode overhead experiment meaningful.

use crate::{BitVec, ChainLayout, ScanError, TapController, TapInstruction, TapState};

/// A device whose internal state is reachable through scan chains.
///
/// The `thor` crate's CPU implements this; any other target system ported to
/// GOOFI does the same, which is exactly the paper's `TargetSystemInterface`
/// porting step for the scan-related building blocks.
pub trait ScanTarget {
    /// Names of the target's scan chains, in SCAN_N index order.
    fn chain_names(&self) -> Vec<String>;

    /// Layout of the named chain.
    fn chain_layout(&self, chain: &str) -> Option<&ChainLayout>;

    /// Captures the current values of the chain's cells (Capture-DR).
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] for unknown names.
    fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError>;

    /// Applies an update image to the chain's writable cells (Update-DR).
    ///
    /// Implementations must ignore bits belonging to read-only cells.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] or
    /// [`ScanError::LengthMismatch`] on bad input.
    fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError>;
}

/// Cumulative cost statistics of the test-card <-> target traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestCardStats {
    /// Number of chain read operations performed.
    pub reads: u64,
    /// Number of chain write operations performed.
    pub writes: u64,
    /// Total bits shifted through TDI/TDO.
    pub bits_shifted: u64,
    /// Total TCK cycles applied to the TAP.
    pub tck_cycles: u64,
}

impl TestCardStats {
    /// Estimated wall-clock time of the scan traffic at `tck_hz` clock rate.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::BadFrequency`] for a non-positive (or NaN)
    /// clock rate.
    pub fn estimated_seconds(&self, tck_hz: f64) -> Result<f64, ScanError> {
        if tck_hz.is_nan() || tck_hz <= 0.0 {
            return Err(ScanError::BadFrequency);
        }
        Ok(self.tck_cycles as f64 / tck_hz)
    }
}

/// The host-side scan controller: owns the TAP model and drives a target.
///
/// # Example
///
/// ```no_run
/// use scanchain::{ScanTarget, TestCard};
/// fn demo<T: ScanTarget>(target: T) -> Result<(), scanchain::ScanError> {
///     let mut card = TestCard::new(target);
///     card.init()?;
///     let mut bits = card.read_chain("internal")?;
///     bits.flip(7); // single bit-flip fault
///     card.write_chain("internal", &bits)?;
///     Ok(())
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TestCard<T> {
    target: T,
    tap: TapController,
    stats: TestCardStats,
    /// SCAN_N register index per chain name, resolved once at construction
    /// (chain topology is static) so a chain walk does not re-enumerate
    /// the target's chains.
    chain_index: std::sync::Arc<std::collections::HashMap<String, u8>>,
}

impl<T: ScanTarget> TestCard<T> {
    /// Wraps a target in a test card. Call [`TestCard::init`] before use.
    pub fn new(target: T) -> Self {
        let chain_index = target
            .chain_names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, i as u8))
            .collect();
        TestCard {
            target,
            tap: TapController::default(),
            stats: TestCardStats::default(),
            chain_index: std::sync::Arc::new(chain_index),
        }
    }

    /// Resets the TAP controller to Run-Test/Idle (the `initTestCard()`
    /// building block of the paper's Figure 2 algorithm).
    ///
    /// # Errors
    ///
    /// Infallible today, but kept fallible to match the hardware building
    /// block it models.
    pub fn init(&mut self) -> Result<(), ScanError> {
        self.tap.reset_to_idle();
        self.sync_stats();
        Ok(())
    }

    /// Shared access to the wrapped target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Exclusive access to the wrapped target (used by the framework for
    /// non-scan operations such as memory download and clocking the core).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// Consumes the card, returning the target.
    pub fn into_target(self) -> T {
        self.target
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> TestCardStats {
        self.stats
    }

    /// Resets traffic statistics (e.g. between experiments).
    pub fn reset_stats(&mut self) {
        self.stats = TestCardStats::default();
        // Leave the TAP cycle counter running; stats track deltas.
    }

    /// Cold-resets the card: a fresh TAP controller (as after a power
    /// cycle, not merely five TMS-high clocks from an arbitrary state) and
    /// zeroed traffic statistics, then a normal [`TestCard::init`]. The
    /// strongest recovery action the card itself offers — a stuck TAP that
    /// `init` cannot un-wedge is gone after this.
    ///
    /// # Errors
    ///
    /// Propagates [`TestCard::init`] errors.
    pub fn cold_reset(&mut self) -> Result<(), ScanError> {
        self.tap = TapController::default();
        self.stats = TestCardStats::default();
        self.init()
    }

    /// Reads the device identification code through the IDCODE data
    /// register — the standard first step of a test-card session, used to
    /// verify the expected target is attached before downloading anything.
    ///
    /// # Errors
    ///
    /// Infallible today; fallible to match the hardware operation.
    pub fn read_idcode(&mut self) -> Result<u32, ScanError> {
        if self.tap.state() != TapState::RunTestIdle {
            self.tap.reset_to_idle();
        }
        self.tap.load_instruction(TapInstruction::IdCode)?;
        let idcode = self.tap.idcode();
        // Walk the DR path: Select-DR -> Capture-DR -> 32 shifts -> Update.
        self.tap.clock_seq(&[true, false]);
        self.tap.clock(false); // enter Shift-DR
        for i in 0..32 {
            self.tap.clock(i == 31);
            self.stats.bits_shifted += 1;
        }
        self.tap.clock(true); // Update-DR
        self.tap.clock(false); // Run-Test/Idle
        self.sync_stats();
        Ok(idcode)
    }

    /// Layout of a chain, by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] for unknown names.
    pub fn layout(&self, chain: &str) -> Result<&ChainLayout, ScanError> {
        self.target
            .chain_layout(chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))
    }

    /// Reads a full chain image without disturbing the target state.
    ///
    /// Models SAMPLE semantics: capture, shift out, and write back the very
    /// bits that were captured.
    ///
    /// # Errors
    ///
    /// Propagates target errors; fails on unknown chains.
    pub fn read_chain(&mut self, chain: &str) -> Result<BitVec, ScanError> {
        let captured = self.dr_access(chain, None)?;
        self.stats.reads += 1;
        Ok(captured)
    }

    /// Writes a full chain image; read-only cells keep their captured value.
    ///
    /// Returns the *previous* (captured) image, which the SCIFI algorithm
    /// logs as part of the experiment data.
    ///
    /// # Errors
    ///
    /// Fails on unknown chains or a length mismatch.
    pub fn write_chain(&mut self, chain: &str, bits: &BitVec) -> Result<BitVec, ScanError> {
        let captured = self.dr_access(chain, Some(bits))?;
        self.stats.writes += 1;
        Ok(captured)
    }

    /// Reads one named cell of a chain.
    ///
    /// # Errors
    ///
    /// Fails on unknown chain or cell names.
    pub fn read_cell(&mut self, chain: &str, cell: &str) -> Result<u64, ScanError> {
        let bits = self.read_chain(chain)?;
        self.layout(chain)?.read_cell(&bits, cell)
    }

    /// Writes one named cell of a chain, leaving all other cells unchanged.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or too-wide values.
    pub fn write_cell(&mut self, chain: &str, cell: &str, value: u64) -> Result<(), ScanError> {
        let layout = self.layout(chain)?.clone();
        let def = layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?;
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: chain.to_string(),
            });
        }
        let mut bits = self.read_chain(chain)?;
        layout.write_cell(&mut bits, cell, value)?;
        self.write_chain(chain, &bits)?;
        Ok(())
    }

    /// Inverts `bit` within the named cell — the SCIFI bit-flip primitive
    /// ("reading the contents of the scan-chains, inverting the bits stated
    /// in the campaign data and writing back", paper §3.3).
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or a bit index outside the
    /// cell.
    pub fn flip_cell_bit(&mut self, chain: &str, cell: &str, bit: usize) -> Result<(), ScanError> {
        let layout = self.layout(chain)?.clone();
        let def = layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?
            .clone();
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: chain.to_string(),
            });
        }
        if bit >= def.width {
            return Err(ScanError::ValueTooWide {
                cell: cell.to_string(),
                width: def.width,
                value: bit as u64,
            });
        }
        let mut bits = self.read_chain(chain)?;
        bits.flip(def.offset + bit);
        self.write_chain(chain, &bits)?;
        Ok(())
    }

    /// Opens a batched scan transaction on `chain`.
    ///
    /// The transaction performs **one** capture–shift–update walk to read
    /// the chain, then any number of in-memory cell reads, writes and bit
    /// flips, and finally at most one more walk on
    /// [`ScanTxn::commit`] — two TAP walks for *n* cell operations instead
    /// of the 2·*n* that per-cell [`TestCard::write_cell`] /
    /// [`TestCard::flip_cell_bit`] calls would cost. This is the hot-path
    /// primitive behind batched injection, state logging and health-probe
    /// signatures.
    ///
    /// # Errors
    ///
    /// Fails on unknown chains or propagates target capture errors.
    pub fn begin_txn(&mut self, chain: &str) -> Result<ScanTxn<'_, T>, ScanError> {
        let layout = self.layout(chain)?.clone();
        let captured = self.read_chain(chain)?;
        Ok(ScanTxn {
            card: self,
            chain: chain.to_string(),
            layout,
            captured: captured.clone(),
            bits: captured,
            dirty: false,
        })
    }

    /// Navigates the TAP and performs one full DR access on `chain`.
    ///
    /// Captures the chain; if `update` is given, shifts that image in and
    /// applies it (masked against read-only cells), otherwise shifts the
    /// captured image back in unchanged.
    fn dr_access(&mut self, chain: &str, update: Option<&BitVec>) -> Result<BitVec, ScanError> {
        let layout = self.layout(chain)?.clone();
        if let Some(bits) = update {
            if bits.len() != layout.total_bits() {
                return Err(ScanError::LengthMismatch {
                    expected: layout.total_bits(),
                    got: bits.len(),
                });
            }
        }
        let index = *self
            .chain_index
            .get(chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))?;

        if self.tap.state() != TapState::RunTestIdle {
            self.tap.reset_to_idle();
        }
        self.tap.load_instruction(TapInstruction::ScanN(index))?;
        self.tap.load_instruction(TapInstruction::Intest)?;

        // Idle -> Select-DR -> Capture-DR.
        self.tap.clock_seq(&[true, false]);
        let captured = self.target.capture_chain(chain)?;
        debug_assert_eq!(captured.len(), layout.total_bits());

        // Shift-DR: n bits through the chain, clocked as one burst — the
        // payload is applied wholesale at Update-DR below, so the per-bit
        // cycles only need to advance the TCK counter.
        self.tap.clock(false); // enter Shift-DR
        let n = layout.total_bits();
        let shift_in = update.unwrap_or(&captured);
        self.tap.clock_run(n.saturating_sub(1) as u64); // stay in Shift-DR
        if n > 0 {
            self.tap.clock(true); // last bit shifts on the Exit1-DR edge
        }
        self.stats.bits_shifted += n as u64;

        // Exit1-DR -> Update-DR -> Run-Test/Idle. A pure read (SAMPLE)
        // shifts the captured image back in unchanged, so the Update-DR
        // write-back is an identity — skip the model call. That also keeps
        // a read from unsharing copy-on-write target state held by a
        // snapshot.
        self.tap.clock(true);
        if update.is_some() {
            let merged = layout.masked_update(&captured, shift_in)?;
            self.target.update_chain(chain, &merged)?;
        }
        self.tap.clock(false);
        debug_assert_eq!(self.tap.state(), TapState::RunTestIdle);
        self.sync_stats();
        Ok(captured)
    }

    fn sync_stats(&mut self) {
        self.stats.tck_cycles = self.tap.tck_count();
    }
}

/// A batched scan-chain transaction: one TAP walk in, in-memory edits, at
/// most one TAP walk out. See [`TestCard::begin_txn`].
///
/// Dropping a transaction without calling [`ScanTxn::commit`] discards all
/// pending edits; the target chain keeps its captured image (the opening
/// read used SAMPLE semantics and did not disturb it).
#[derive(Debug)]
pub struct ScanTxn<'a, T: ScanTarget> {
    card: &'a mut TestCard<T>,
    chain: String,
    layout: ChainLayout,
    /// The image captured when the transaction opened.
    captured: BitVec,
    /// The working image, edited in memory.
    bits: BitVec,
    dirty: bool,
}

impl<T: ScanTarget> ScanTxn<'_, T> {
    /// The chain this transaction is operating on.
    pub fn chain(&self) -> &str {
        &self.chain
    }

    /// The image captured when the transaction opened (pre-edit state,
    /// which the SCIFI algorithm logs as experiment data).
    pub fn captured(&self) -> &BitVec {
        &self.captured
    }

    /// The current working image, including uncommitted edits.
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Reads a named cell from the working image — no TAP traffic.
    ///
    /// # Errors
    ///
    /// Fails on unknown cell names.
    pub fn read_cell(&self, cell: &str) -> Result<u64, ScanError> {
        self.layout.read_cell(&self.bits, cell)
    }

    /// Writes a named cell in the working image — no TAP traffic until
    /// [`ScanTxn::commit`].
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or too-wide values.
    pub fn write_cell(&mut self, cell: &str, value: u64) -> Result<(), ScanError> {
        let def = self
            .layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?;
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: self.chain.clone(),
            });
        }
        self.layout.write_cell(&mut self.bits, cell, value)?;
        self.dirty = true;
        Ok(())
    }

    /// Inverts `bit` within the named cell in the working image — the
    /// SCIFI bit-flip primitive, deferred to commit.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or a bit index outside the
    /// cell.
    pub fn flip_cell_bit(&mut self, cell: &str, bit: usize) -> Result<(), ScanError> {
        let def = self
            .layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?;
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: self.chain.clone(),
            });
        }
        if bit >= def.width {
            return Err(ScanError::ValueTooWide {
                cell: cell.to_string(),
                width: def.width,
                value: bit as u64,
            });
        }
        self.bits.flip(def.offset + bit);
        self.dirty = true;
        Ok(())
    }

    /// Applies all pending edits with a single capture–shift–update walk.
    ///
    /// A clean transaction (no writes or flips) costs no TAP traffic at
    /// all. Returns the image that was captured when the transaction
    /// opened.
    ///
    /// # Errors
    ///
    /// Propagates chain-write errors from the underlying card.
    pub fn commit(self) -> Result<BitVec, ScanError> {
        if self.dirty {
            self.card.write_chain(&self.chain, &self.bits)?;
        }
        Ok(self.captured)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellAccess, ChainLayout};
    use std::collections::HashMap;

    /// A toy two-chain device for exercising the card.
    #[derive(Debug, Clone)]
    struct Device {
        layouts: Vec<ChainLayout>,
        state: HashMap<String, BitVec>,
    }

    impl Device {
        fn new() -> Self {
            let a = ChainLayout::builder("alpha")
                .cell("X", 8, CellAccess::ReadWrite)
                .cell("Y", 8, CellAccess::ReadWrite)
                .cell("STATUS", 4, CellAccess::ReadOnly)
                .build();
            let b = ChainLayout::builder("beta")
                .cell("Z", 16, CellAccess::ReadWrite)
                .build();
            let mut state = HashMap::new();
            state.insert("alpha".into(), BitVec::zeros(a.total_bits()));
            state.insert("beta".into(), BitVec::zeros(b.total_bits()));
            Device {
                layouts: vec![a, b],
                state,
            }
        }
    }

    impl ScanTarget for Device {
        fn chain_names(&self) -> Vec<String> {
            self.layouts.iter().map(|l| l.name().to_string()).collect()
        }
        fn chain_layout(&self, chain: &str) -> Option<&ChainLayout> {
            self.layouts.iter().find(|l| l.name() == chain)
        }
        fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError> {
            self.state
                .get(chain)
                .cloned()
                .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))
        }
        fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError> {
            let slot = self
                .state
                .get_mut(chain)
                .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))?;
            if bits.len() != slot.len() {
                return Err(ScanError::LengthMismatch {
                    expected: slot.len(),
                    got: bits.len(),
                });
            }
            *slot = bits.clone();
            Ok(())
        }
    }

    fn card() -> TestCard<Device> {
        let mut c = TestCard::new(Device::new());
        c.init().unwrap();
        c
    }

    #[test]
    fn read_does_not_disturb_state() {
        let mut c = card();
        c.write_cell("alpha", "X", 0x5A).unwrap();
        let before = c.target().state["alpha"].clone();
        let img = c.read_chain("alpha").unwrap();
        assert_eq!(img, before);
        assert_eq!(c.target().state["alpha"], before);
    }

    #[test]
    fn write_cell_roundtrip() {
        let mut c = card();
        c.write_cell("alpha", "Y", 0x3C).unwrap();
        assert_eq!(c.read_cell("alpha", "Y").unwrap(), 0x3C);
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0);
    }

    #[test]
    fn flip_cell_bit_flips_exactly_one_bit() {
        let mut c = card();
        c.write_cell("beta", "Z", 0b1010).unwrap();
        c.flip_cell_bit("beta", "Z", 0).unwrap();
        assert_eq!(c.read_cell("beta", "Z").unwrap(), 0b1011);
        c.flip_cell_bit("beta", "Z", 15).unwrap();
        assert_eq!(c.read_cell("beta", "Z").unwrap(), 0b1000_0000_0000_1011);
    }

    #[test]
    fn readonly_cell_rejected_for_injection() {
        let mut c = card();
        let err = c.write_cell("alpha", "STATUS", 1).unwrap_err();
        assert!(matches!(err, ScanError::ReadOnlyCell { .. }));
        let err = c.flip_cell_bit("alpha", "STATUS", 0).unwrap_err();
        assert!(matches!(err, ScanError::ReadOnlyCell { .. }));
    }

    #[test]
    fn readonly_bits_survive_full_chain_write() {
        let mut c = card();
        // Force the device's STATUS bits on, out-of-band.
        let layout = c.layout("alpha").unwrap().clone();
        let mut img = c.target().state["alpha"].clone();
        layout.write_cell(&mut img, "STATUS", 0xF).unwrap();
        c.target_mut().state.insert("alpha".into(), img);

        // A full-chain write of zeros must not clear STATUS.
        let zeros = BitVec::zeros(layout.total_bits());
        c.write_chain("alpha", &zeros).unwrap();
        assert_eq!(c.read_cell("alpha", "STATUS").unwrap(), 0xF);
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0);
    }

    #[test]
    fn unknown_chain_and_cell_errors() {
        let mut c = card();
        assert!(matches!(
            c.read_chain("gamma").unwrap_err(),
            ScanError::UnknownChain(_)
        ));
        assert!(matches!(
            c.read_cell("alpha", "Q").unwrap_err(),
            ScanError::UnknownCell(_)
        ));
    }

    #[test]
    fn bit_out_of_cell_range_rejected() {
        let mut c = card();
        let err = c.flip_cell_bit("alpha", "X", 8).unwrap_err();
        assert!(matches!(err, ScanError::ValueTooWide { .. }));
    }

    #[test]
    fn stats_count_shifted_bits() {
        let mut c = card();
        let before = c.stats();
        c.read_chain("alpha").unwrap(); // 20-bit chain
        let after = c.stats();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.bits_shifted, before.bits_shifted + 20);
        assert!(after.tck_cycles > before.tck_cycles);
        // Timing model: more bits -> more time.
        assert!(after.estimated_seconds(1e6).unwrap() > 0.0);
        assert_eq!(after.estimated_seconds(0.0), Err(ScanError::BadFrequency));
        assert_eq!(after.estimated_seconds(-5.0), Err(ScanError::BadFrequency));
    }

    #[test]
    fn idcode_readable_and_repeatable() {
        let mut c = card();
        let id = c.read_idcode().unwrap();
        assert_eq!(id, 0x0000_1DEA); // default TAP idcode
        assert_eq!(c.read_idcode().unwrap(), id);
        // Chain access still works afterwards.
        c.write_cell("alpha", "X", 3).unwrap();
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 3);
    }

    #[test]
    fn txn_batches_many_ops_into_two_walks() {
        let mut c = card();
        let before = c.stats();
        let mut txn = c.begin_txn("alpha").unwrap();
        txn.write_cell("X", 0xAA).unwrap();
        txn.write_cell("Y", 0x55).unwrap();
        txn.flip_cell_bit("X", 0).unwrap();
        assert_eq!(txn.read_cell("X").unwrap(), 0xAB);
        txn.commit().unwrap();
        let after = c.stats();
        // One read walk to open, one write walk to commit — regardless of
        // how many cell operations happened in between.
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.writes, before.writes + 1);
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0xAB);
        assert_eq!(c.read_cell("alpha", "Y").unwrap(), 0x55);
    }

    #[test]
    fn clean_txn_commit_costs_no_write_walk() {
        let mut c = card();
        c.write_cell("alpha", "X", 7).unwrap();
        let before = c.stats();
        let txn = c.begin_txn("alpha").unwrap();
        assert_eq!(txn.read_cell("X").unwrap(), 7);
        let captured = txn.commit().unwrap();
        let after = c.stats();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.writes, before.writes);
        let layout = c.layout("alpha").unwrap();
        assert_eq!(layout.read_cell(&captured, "X").unwrap(), 7);
    }

    #[test]
    fn dropped_txn_discards_pending_edits() {
        let mut c = card();
        {
            let mut txn = c.begin_txn("alpha").unwrap();
            txn.write_cell("X", 0xFF).unwrap();
            // No commit: edits vanish.
        }
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0);
    }

    #[test]
    fn txn_rejects_readonly_and_out_of_range() {
        let mut c = card();
        let mut txn = c.begin_txn("alpha").unwrap();
        assert!(matches!(
            txn.write_cell("STATUS", 1).unwrap_err(),
            ScanError::ReadOnlyCell { .. }
        ));
        assert!(matches!(
            txn.flip_cell_bit("STATUS", 0).unwrap_err(),
            ScanError::ReadOnlyCell { .. }
        ));
        assert!(matches!(
            txn.flip_cell_bit("X", 8).unwrap_err(),
            ScanError::ValueTooWide { .. }
        ));
        assert!(matches!(
            txn.read_cell("NOPE").unwrap_err(),
            ScanError::UnknownCell(_)
        ));
    }

    #[test]
    fn cloned_card_is_an_independent_copy() {
        let mut c = card();
        c.write_cell("alpha", "X", 0x12).unwrap();
        let mut copy = c.clone();
        copy.write_cell("alpha", "X", 0x34).unwrap();
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0x12);
        assert_eq!(copy.read_cell("alpha", "X").unwrap(), 0x34);
    }

    #[test]
    fn wrong_length_write_rejected() {
        let mut c = card();
        let err = c.write_chain("alpha", &BitVec::zeros(3)).unwrap_err();
        assert!(matches!(err, ScanError::LengthMismatch { .. }));
    }
}
