//! The host-side test card that drives a scan-instrumented target.
//!
//! GOOFI's SCIFI algorithm begins every experiment with `initTestCard()`
//! (paper Figure 2); the test card is the PC-resident hardware that wiggles
//! the target's TAP pins. [`TestCard`] models it faithfully: every chain
//! access walks the real TAP state machine and shifts the chain bit by bit,
//! so the accounting in [`TestCardStats`] (TCK cycles, bits shifted) gives
//! the same cost model as hardware SCIFI — which is what makes the paper's
//! normal-vs-detail-mode overhead experiment meaningful.

use crate::{BitVec, ChainLayout, ScanError, TapController, TapInstruction, TapState};

/// A device whose internal state is reachable through scan chains.
///
/// The `thor` crate's CPU implements this; any other target system ported to
/// GOOFI does the same, which is exactly the paper's `TargetSystemInterface`
/// porting step for the scan-related building blocks.
pub trait ScanTarget {
    /// Names of the target's scan chains, in SCAN_N index order.
    fn chain_names(&self) -> Vec<String>;

    /// Layout of the named chain.
    fn chain_layout(&self, chain: &str) -> Option<&ChainLayout>;

    /// Captures the current values of the chain's cells (Capture-DR).
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] for unknown names.
    fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError>;

    /// Applies an update image to the chain's writable cells (Update-DR).
    ///
    /// Implementations must ignore bits belonging to read-only cells.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] or
    /// [`ScanError::LengthMismatch`] on bad input.
    fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError>;
}

/// Cumulative cost statistics of the test-card <-> target traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TestCardStats {
    /// Number of chain read operations performed.
    pub reads: u64,
    /// Number of chain write operations performed.
    pub writes: u64,
    /// Total bits shifted through TDI/TDO.
    pub bits_shifted: u64,
    /// Total TCK cycles applied to the TAP.
    pub tck_cycles: u64,
}

impl TestCardStats {
    /// Estimated wall-clock time of the scan traffic at `tck_hz` clock rate.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::BadFrequency`] for a non-positive (or NaN)
    /// clock rate.
    pub fn estimated_seconds(&self, tck_hz: f64) -> Result<f64, ScanError> {
        if tck_hz.is_nan() || tck_hz <= 0.0 {
            return Err(ScanError::BadFrequency);
        }
        Ok(self.tck_cycles as f64 / tck_hz)
    }
}

/// The host-side scan controller: owns the TAP model and drives a target.
///
/// # Example
///
/// ```no_run
/// use scanchain::{ScanTarget, TestCard};
/// fn demo<T: ScanTarget>(target: T) -> Result<(), scanchain::ScanError> {
///     let mut card = TestCard::new(target);
///     card.init()?;
///     let mut bits = card.read_chain("internal")?;
///     bits.flip(7); // single bit-flip fault
///     card.write_chain("internal", &bits)?;
///     Ok(())
/// }
/// ```
#[derive(Debug)]
pub struct TestCard<T> {
    target: T,
    tap: TapController,
    stats: TestCardStats,
}

impl<T: ScanTarget> TestCard<T> {
    /// Wraps a target in a test card. Call [`TestCard::init`] before use.
    pub fn new(target: T) -> Self {
        TestCard {
            target,
            tap: TapController::default(),
            stats: TestCardStats::default(),
        }
    }

    /// Resets the TAP controller to Run-Test/Idle (the `initTestCard()`
    /// building block of the paper's Figure 2 algorithm).
    ///
    /// # Errors
    ///
    /// Infallible today, but kept fallible to match the hardware building
    /// block it models.
    pub fn init(&mut self) -> Result<(), ScanError> {
        self.tap.reset_to_idle();
        self.sync_stats();
        Ok(())
    }

    /// Shared access to the wrapped target.
    pub fn target(&self) -> &T {
        &self.target
    }

    /// Exclusive access to the wrapped target (used by the framework for
    /// non-scan operations such as memory download and clocking the core).
    pub fn target_mut(&mut self) -> &mut T {
        &mut self.target
    }

    /// Consumes the card, returning the target.
    pub fn into_target(self) -> T {
        self.target
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> TestCardStats {
        self.stats
    }

    /// Resets traffic statistics (e.g. between experiments).
    pub fn reset_stats(&mut self) {
        self.stats = TestCardStats::default();
        // Leave the TAP cycle counter running; stats track deltas.
    }

    /// Cold-resets the card: a fresh TAP controller (as after a power
    /// cycle, not merely five TMS-high clocks from an arbitrary state) and
    /// zeroed traffic statistics, then a normal [`TestCard::init`]. The
    /// strongest recovery action the card itself offers — a stuck TAP that
    /// `init` cannot un-wedge is gone after this.
    ///
    /// # Errors
    ///
    /// Propagates [`TestCard::init`] errors.
    pub fn cold_reset(&mut self) -> Result<(), ScanError> {
        self.tap = TapController::default();
        self.stats = TestCardStats::default();
        self.init()
    }

    /// Reads the device identification code through the IDCODE data
    /// register — the standard first step of a test-card session, used to
    /// verify the expected target is attached before downloading anything.
    ///
    /// # Errors
    ///
    /// Infallible today; fallible to match the hardware operation.
    pub fn read_idcode(&mut self) -> Result<u32, ScanError> {
        if self.tap.state() != TapState::RunTestIdle {
            self.tap.reset_to_idle();
        }
        self.tap.load_instruction(TapInstruction::IdCode)?;
        let idcode = self.tap.idcode();
        // Walk the DR path: Select-DR -> Capture-DR -> 32 shifts -> Update.
        self.tap.clock_seq(&[true, false]);
        self.tap.clock(false); // enter Shift-DR
        for i in 0..32 {
            self.tap.clock(i == 31);
            self.stats.bits_shifted += 1;
        }
        self.tap.clock(true); // Update-DR
        self.tap.clock(false); // Run-Test/Idle
        self.sync_stats();
        Ok(idcode)
    }

    /// Layout of a chain, by name.
    ///
    /// # Errors
    ///
    /// Returns [`ScanError::UnknownChain`] for unknown names.
    pub fn layout(&self, chain: &str) -> Result<&ChainLayout, ScanError> {
        self.target
            .chain_layout(chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))
    }

    /// Reads a full chain image without disturbing the target state.
    ///
    /// Models SAMPLE semantics: capture, shift out, and write back the very
    /// bits that were captured.
    ///
    /// # Errors
    ///
    /// Propagates target errors; fails on unknown chains.
    pub fn read_chain(&mut self, chain: &str) -> Result<BitVec, ScanError> {
        let captured = self.dr_access(chain, None)?;
        self.stats.reads += 1;
        Ok(captured)
    }

    /// Writes a full chain image; read-only cells keep their captured value.
    ///
    /// Returns the *previous* (captured) image, which the SCIFI algorithm
    /// logs as part of the experiment data.
    ///
    /// # Errors
    ///
    /// Fails on unknown chains or a length mismatch.
    pub fn write_chain(&mut self, chain: &str, bits: &BitVec) -> Result<BitVec, ScanError> {
        let captured = self.dr_access(chain, Some(bits))?;
        self.stats.writes += 1;
        Ok(captured)
    }

    /// Reads one named cell of a chain.
    ///
    /// # Errors
    ///
    /// Fails on unknown chain or cell names.
    pub fn read_cell(&mut self, chain: &str, cell: &str) -> Result<u64, ScanError> {
        let bits = self.read_chain(chain)?;
        self.layout(chain)?.read_cell(&bits, cell)
    }

    /// Writes one named cell of a chain, leaving all other cells unchanged.
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or too-wide values.
    pub fn write_cell(&mut self, chain: &str, cell: &str, value: u64) -> Result<(), ScanError> {
        let layout = self.layout(chain)?.clone();
        let def = layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?;
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: chain.to_string(),
            });
        }
        let mut bits = self.read_chain(chain)?;
        layout.write_cell(&mut bits, cell, value)?;
        self.write_chain(chain, &bits)?;
        Ok(())
    }

    /// Inverts `bit` within the named cell — the SCIFI bit-flip primitive
    /// ("reading the contents of the scan-chains, inverting the bits stated
    /// in the campaign data and writing back", paper §3.3).
    ///
    /// # Errors
    ///
    /// Fails on unknown names, read-only cells, or a bit index outside the
    /// cell.
    pub fn flip_cell_bit(&mut self, chain: &str, cell: &str, bit: usize) -> Result<(), ScanError> {
        let layout = self.layout(chain)?.clone();
        let def = layout
            .cell(cell)
            .ok_or_else(|| ScanError::UnknownCell(cell.to_string()))?
            .clone();
        if def.access == crate::CellAccess::ReadOnly {
            return Err(ScanError::ReadOnlyCell {
                cell: cell.to_string(),
                chain: chain.to_string(),
            });
        }
        if bit >= def.width {
            return Err(ScanError::ValueTooWide {
                cell: cell.to_string(),
                width: def.width,
                value: bit as u64,
            });
        }
        let mut bits = self.read_chain(chain)?;
        bits.flip(def.offset + bit);
        self.write_chain(chain, &bits)?;
        Ok(())
    }

    /// Navigates the TAP and performs one full DR access on `chain`.
    ///
    /// Captures the chain; if `update` is given, shifts that image in and
    /// applies it (masked against read-only cells), otherwise shifts the
    /// captured image back in unchanged.
    fn dr_access(&mut self, chain: &str, update: Option<&BitVec>) -> Result<BitVec, ScanError> {
        let layout = self.layout(chain)?.clone();
        if let Some(bits) = update {
            if bits.len() != layout.total_bits() {
                return Err(ScanError::LengthMismatch {
                    expected: layout.total_bits(),
                    got: bits.len(),
                });
            }
        }
        let index = self
            .target
            .chain_names()
            .iter()
            .position(|n| n == chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))? as u8;

        if self.tap.state() != TapState::RunTestIdle {
            self.tap.reset_to_idle();
        }
        self.tap.load_instruction(TapInstruction::ScanN(index))?;
        self.tap.load_instruction(TapInstruction::Intest)?;

        // Idle -> Select-DR -> Capture-DR.
        self.tap.clock_seq(&[true, false]);
        let captured = self.target.capture_chain(chain)?;
        debug_assert_eq!(captured.len(), layout.total_bits());

        // Shift-DR: n bits through the chain.
        self.tap.clock(false); // enter Shift-DR
        let n = layout.total_bits();
        let shift_in = update.unwrap_or(&captured);
        for i in 0..n {
            // One TCK per bit; last bit shifts on the Exit1-DR edge.
            let _ = shift_in.get(i);
            self.tap.clock(i + 1 == n); // stay in Shift-DR, exit on last bit
            self.stats.bits_shifted += 1;
        }

        // Exit1-DR -> Update-DR -> Run-Test/Idle.
        self.tap.clock(true);
        let merged = layout.masked_update(&captured, shift_in)?;
        self.target.update_chain(chain, &merged)?;
        self.tap.clock(false);
        debug_assert_eq!(self.tap.state(), TapState::RunTestIdle);
        self.sync_stats();
        Ok(captured)
    }

    fn sync_stats(&mut self) {
        self.stats.tck_cycles = self.tap.tck_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CellAccess, ChainLayout};
    use std::collections::HashMap;

    /// A toy two-chain device for exercising the card.
    #[derive(Debug)]
    struct Device {
        layouts: Vec<ChainLayout>,
        state: HashMap<String, BitVec>,
    }

    impl Device {
        fn new() -> Self {
            let a = ChainLayout::builder("alpha")
                .cell("X", 8, CellAccess::ReadWrite)
                .cell("Y", 8, CellAccess::ReadWrite)
                .cell("STATUS", 4, CellAccess::ReadOnly)
                .build();
            let b = ChainLayout::builder("beta")
                .cell("Z", 16, CellAccess::ReadWrite)
                .build();
            let mut state = HashMap::new();
            state.insert("alpha".into(), BitVec::zeros(a.total_bits()));
            state.insert("beta".into(), BitVec::zeros(b.total_bits()));
            Device {
                layouts: vec![a, b],
                state,
            }
        }
    }

    impl ScanTarget for Device {
        fn chain_names(&self) -> Vec<String> {
            self.layouts.iter().map(|l| l.name().to_string()).collect()
        }
        fn chain_layout(&self, chain: &str) -> Option<&ChainLayout> {
            self.layouts.iter().find(|l| l.name() == chain)
        }
        fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError> {
            self.state
                .get(chain)
                .cloned()
                .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))
        }
        fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError> {
            let slot = self
                .state
                .get_mut(chain)
                .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))?;
            if bits.len() != slot.len() {
                return Err(ScanError::LengthMismatch {
                    expected: slot.len(),
                    got: bits.len(),
                });
            }
            *slot = bits.clone();
            Ok(())
        }
    }

    fn card() -> TestCard<Device> {
        let mut c = TestCard::new(Device::new());
        c.init().unwrap();
        c
    }

    #[test]
    fn read_does_not_disturb_state() {
        let mut c = card();
        c.write_cell("alpha", "X", 0x5A).unwrap();
        let before = c.target().state["alpha"].clone();
        let img = c.read_chain("alpha").unwrap();
        assert_eq!(img, before);
        assert_eq!(c.target().state["alpha"], before);
    }

    #[test]
    fn write_cell_roundtrip() {
        let mut c = card();
        c.write_cell("alpha", "Y", 0x3C).unwrap();
        assert_eq!(c.read_cell("alpha", "Y").unwrap(), 0x3C);
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0);
    }

    #[test]
    fn flip_cell_bit_flips_exactly_one_bit() {
        let mut c = card();
        c.write_cell("beta", "Z", 0b1010).unwrap();
        c.flip_cell_bit("beta", "Z", 0).unwrap();
        assert_eq!(c.read_cell("beta", "Z").unwrap(), 0b1011);
        c.flip_cell_bit("beta", "Z", 15).unwrap();
        assert_eq!(c.read_cell("beta", "Z").unwrap(), 0b1000_0000_0000_1011);
    }

    #[test]
    fn readonly_cell_rejected_for_injection() {
        let mut c = card();
        let err = c.write_cell("alpha", "STATUS", 1).unwrap_err();
        assert!(matches!(err, ScanError::ReadOnlyCell { .. }));
        let err = c.flip_cell_bit("alpha", "STATUS", 0).unwrap_err();
        assert!(matches!(err, ScanError::ReadOnlyCell { .. }));
    }

    #[test]
    fn readonly_bits_survive_full_chain_write() {
        let mut c = card();
        // Force the device's STATUS bits on, out-of-band.
        let layout = c.layout("alpha").unwrap().clone();
        let mut img = c.target().state["alpha"].clone();
        layout.write_cell(&mut img, "STATUS", 0xF).unwrap();
        c.target_mut().state.insert("alpha".into(), img);

        // A full-chain write of zeros must not clear STATUS.
        let zeros = BitVec::zeros(layout.total_bits());
        c.write_chain("alpha", &zeros).unwrap();
        assert_eq!(c.read_cell("alpha", "STATUS").unwrap(), 0xF);
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 0);
    }

    #[test]
    fn unknown_chain_and_cell_errors() {
        let mut c = card();
        assert!(matches!(
            c.read_chain("gamma").unwrap_err(),
            ScanError::UnknownChain(_)
        ));
        assert!(matches!(
            c.read_cell("alpha", "Q").unwrap_err(),
            ScanError::UnknownCell(_)
        ));
    }

    #[test]
    fn bit_out_of_cell_range_rejected() {
        let mut c = card();
        let err = c.flip_cell_bit("alpha", "X", 8).unwrap_err();
        assert!(matches!(err, ScanError::ValueTooWide { .. }));
    }

    #[test]
    fn stats_count_shifted_bits() {
        let mut c = card();
        let before = c.stats();
        c.read_chain("alpha").unwrap(); // 20-bit chain
        let after = c.stats();
        assert_eq!(after.reads, before.reads + 1);
        assert_eq!(after.bits_shifted, before.bits_shifted + 20);
        assert!(after.tck_cycles > before.tck_cycles);
        // Timing model: more bits -> more time.
        assert!(after.estimated_seconds(1e6).unwrap() > 0.0);
        assert_eq!(after.estimated_seconds(0.0), Err(ScanError::BadFrequency));
        assert_eq!(after.estimated_seconds(-5.0), Err(ScanError::BadFrequency));
    }

    #[test]
    fn idcode_readable_and_repeatable() {
        let mut c = card();
        let id = c.read_idcode().unwrap();
        assert_eq!(id, 0x0000_1DEA); // default TAP idcode
        assert_eq!(c.read_idcode().unwrap(), id);
        // Chain access still works afterwards.
        c.write_cell("alpha", "X", 3).unwrap();
        assert_eq!(c.read_cell("alpha", "X").unwrap(), 3);
    }

    #[test]
    fn wrong_length_write_rejected() {
        let mut c = card();
        let err = c.write_chain("alpha", &BitVec::zeros(3)).unwrap_err();
        assert!(matches!(err, ScanError::LengthMismatch { .. }));
    }
}
