//! A seeded, deterministic target-wedge model.
//!
//! Where [`crate::link`] disturbs the transport *between* host and test
//! card, this module models the target itself going bad: an injected fault
//! (or plain hardware flakiness) leaves the CPU spinning with interrupts
//! off, the TAP state machine stuck mid-shift, or the scan path returning
//! garbage. Campaign drivers wrap a target in a decorator that consults a
//! [`WedgeModel`] and use it to exercise hang detection and the recovery
//! ladder end-to-end without real broken hardware.
//!
//! A wedge is *sticky*: once entered it persists across warm resets and
//! workload reloads, and only clears when the recovery action reaches the
//! configured [`RecoveryDepth`] — a hardware property of the modelled
//! failure (a latched-up core needs a power cycle; a confused TAP recovers
//! on test-card re-init).
//!
//! Like the link model, everything is driven by one SplitMix64 stream
//! seeded from [`WedgeConfig::seed`], so a campaign against a wedging
//! target is exactly reproducible.

use std::fmt;

/// The ways a target can wedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WedgeKind {
    /// The core spins without retiring useful work: every run consumes its
    /// whole budget and makes no progress toward termination.
    Hang,
    /// The TAP controller is stuck: every scan access stalls mid-shift.
    StuckTap,
    /// The scan path shifts, but captures garbage bits.
    GarbageScan,
}

impl fmt::Display for WedgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WedgeKind::Hang => f.write_str("hang"),
            WedgeKind::StuckTap => f.write_str("stuck-tap"),
            WedgeKind::GarbageScan => f.write_str("garbage-scan"),
        }
    }
}

/// How deep a recovery action must reach to clear a wedge.
///
/// Ordered: a deeper action also clears every shallower wedge
/// (`SoftReset < Reinit < PowerCycle < Never`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryDepth {
    /// A core reset clears it.
    SoftReset,
    /// Re-initialising the test card clears it.
    Reinit,
    /// Only a full power cycle clears it.
    PowerCycle,
    /// Nothing clears it — the target is permanently gone.
    Never,
}

impl RecoveryDepth {
    /// Config-string form.
    pub fn encode(self) -> &'static str {
        match self {
            RecoveryDepth::SoftReset => "soft",
            RecoveryDepth::Reinit => "reinit",
            RecoveryDepth::PowerCycle => "power",
            RecoveryDepth::Never => "never",
        }
    }

    /// Parses [`RecoveryDepth::encode`] output.
    pub fn decode(s: &str) -> Option<RecoveryDepth> {
        match s {
            "soft" => Some(RecoveryDepth::SoftReset),
            "reinit" => Some(RecoveryDepth::Reinit),
            "power" => Some(RecoveryDepth::PowerCycle),
            "never" => Some(RecoveryDepth::Never),
            _ => None,
        }
    }
}

/// Configuration of a [`WedgeModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WedgeConfig {
    /// RNG seed; the whole wedge schedule is a pure function of it.
    pub seed: u64,
    /// Per-armed-operation probability of entering [`WedgeKind::Hang`].
    pub hang_rate: f64,
    /// Per-armed-operation probability of entering [`WedgeKind::StuckTap`].
    pub stuck_tap_rate: f64,
    /// Per-armed-operation probability of entering
    /// [`WedgeKind::GarbageScan`].
    pub garbage_rate: f64,
    /// Stop wedging after this many wedge events (`None` = unbounded).
    pub max_events: Option<u32>,
    /// How deep a recovery action must reach to clear a wedge.
    pub recovery: RecoveryDepth,
}

impl Default for WedgeConfig {
    fn default() -> Self {
        WedgeConfig {
            seed: 0,
            hang_rate: 0.0,
            stuck_tap_rate: 0.0,
            garbage_rate: 0.0,
            max_events: None,
            recovery: RecoveryDepth::PowerCycle,
        }
    }
}

impl WedgeConfig {
    /// A model that only hangs, at `rate` per armed operation.
    pub fn hang(seed: u64, rate: f64) -> WedgeConfig {
        WedgeConfig {
            seed,
            hang_rate: rate,
            ..WedgeConfig::default()
        }
    }

    /// Total per-operation wedge probability.
    pub fn total_rate(&self) -> f64 {
        self.hang_rate + self.stuck_tap_rate + self.garbage_rate
    }

    /// Whether this configuration can ever wedge.
    pub fn is_active(&self) -> bool {
        self.total_rate() > 0.0 && self.max_events != Some(0)
    }

    /// Compact `key=value,...` form, mirroring
    /// [`crate::LinkFaultConfig::encode`].
    pub fn encode(&self) -> String {
        let mut s = format!(
            "seed={},hang={},stuck={},garbage={},recover={}",
            self.seed,
            self.hang_rate,
            self.stuck_tap_rate,
            self.garbage_rate,
            self.recovery.encode(),
        );
        if let Some(max) = self.max_events {
            s.push_str(&format!(",max={max}"));
        }
        s
    }

    /// Parses [`WedgeConfig::encode`] output. Rejects unknown keys, rates
    /// outside `[0, 1]` and rate sums above 1.
    pub fn decode(s: &str) -> Option<WedgeConfig> {
        let mut config = WedgeConfig::default();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part.split_once('=')?;
            match key {
                "seed" => config.seed = value.parse().ok()?,
                "hang" => config.hang_rate = value.parse().ok()?,
                "stuck" => config.stuck_tap_rate = value.parse().ok()?,
                "garbage" => config.garbage_rate = value.parse().ok()?,
                "recover" => config.recovery = RecoveryDepth::decode(value)?,
                "max" => config.max_events = Some(value.parse().ok()?),
                _ => return None,
            }
        }
        let rates = [config.hang_rate, config.stuck_tap_rate, config.garbage_rate];
        if rates.iter().any(|r| !(0.0..=1.0).contains(r)) || config.total_rate() > 1.0 {
            return None;
        }
        Some(config)
    }
}

/// Wedge events observed so far, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WedgeCounts {
    /// Hangs entered.
    pub hangs: u32,
    /// Stuck-TAP wedges entered.
    pub stuck_taps: u32,
    /// Garbage-scan wedges entered.
    pub garbage_scans: u32,
}

impl WedgeCounts {
    /// Total wedge events.
    pub fn total(&self) -> u32 {
        self.hangs + self.stuck_taps + self.garbage_scans
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The seeded wedge state machine.
///
/// [`WedgeModel::advance`] consumes exactly one RNG draw per armed
/// operation whether or not a wedge fires, so the wedge schedule depends
/// only on the seed and the operation count — never on what the previous
/// draws decided.
#[derive(Debug, Clone)]
pub struct WedgeModel {
    config: WedgeConfig,
    rng: u64,
    ops: u64,
    counts: WedgeCounts,
    wedged: Option<WedgeKind>,
}

impl WedgeModel {
    /// Creates the model from its configuration.
    pub fn new(config: WedgeConfig) -> WedgeModel {
        WedgeModel {
            rng: config.seed ^ 0xC3C3_3C3C_FEED_F00D,
            config,
            ops: 0,
            counts: WedgeCounts::default(),
            wedged: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WedgeConfig {
        &self.config
    }

    /// Armed operations seen so far.
    pub fn operations(&self) -> u64 {
        self.ops
    }

    /// Wedge events so far, by kind.
    pub fn counts(&self) -> WedgeCounts {
        self.counts
    }

    /// The current wedge, if any.
    pub fn wedged(&self) -> Option<WedgeKind> {
        self.wedged
    }

    fn uniform(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (splitmix64(&mut self.rng) >> 11) as f64 * SCALE
    }

    /// Advances the model by one armed operation and returns the current
    /// wedge (freshly entered or persisting). While already wedged, no
    /// draw is consumed — the target is stuck, not re-rolling.
    pub fn advance(&mut self) -> Option<WedgeKind> {
        if self.wedged.is_some() {
            return self.wedged;
        }
        self.ops += 1;
        let draw = self.uniform();
        if let Some(max) = self.config.max_events {
            if self.counts.total() >= max {
                return None;
            }
        }
        let kind = if draw < self.config.hang_rate {
            WedgeKind::Hang
        } else if draw < self.config.hang_rate + self.config.stuck_tap_rate {
            WedgeKind::StuckTap
        } else if draw < self.config.total_rate() {
            WedgeKind::GarbageScan
        } else {
            return None;
        };
        match kind {
            WedgeKind::Hang => self.counts.hangs += 1,
            WedgeKind::StuckTap => self.counts.stuck_taps += 1,
            WedgeKind::GarbageScan => self.counts.garbage_scans += 1,
        }
        self.wedged = Some(kind);
        self.wedged
    }

    /// Applies a recovery action of the given depth: the wedge clears when
    /// the action reaches the configured [`WedgeConfig::recovery`] depth.
    /// Returns whether this action cleared a wedge (`false` when the model
    /// was not wedged, or when the action was too shallow).
    pub fn recover(&mut self, depth: RecoveryDepth) -> bool {
        if self.wedged.is_some()
            && self.config.recovery != RecoveryDepth::Never
            && depth >= self.config.recovery
        {
            self.wedged = None;
            return true;
        }
        false
    }

    /// Seeded garbage bits for a [`WedgeKind::GarbageScan`] capture.
    pub fn garbage_bits(&mut self, len: usize) -> crate::BitVec {
        let mut bits = crate::BitVec::zeros(len);
        for i in 0..len {
            if splitmix64(&mut self.rng) & 1 == 1 {
                bits.set(i, true);
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_roundtrips() {
        let configs = [
            WedgeConfig::default(),
            WedgeConfig::hang(42, 0.01),
            WedgeConfig {
                seed: 7,
                hang_rate: 0.1,
                stuck_tap_rate: 0.2,
                garbage_rate: 0.3,
                max_events: Some(4),
                recovery: RecoveryDepth::Never,
            },
        ];
        for c in configs {
            assert_eq!(WedgeConfig::decode(&c.encode()), Some(c));
        }
        assert_eq!(WedgeConfig::decode("hang=1.5"), None);
        assert_eq!(WedgeConfig::decode("hang=0.6,stuck=0.6"), None);
        assert_eq!(WedgeConfig::decode("bogus=1"), None);
        for d in [
            RecoveryDepth::SoftReset,
            RecoveryDepth::Reinit,
            RecoveryDepth::PowerCycle,
            RecoveryDepth::Never,
        ] {
            assert_eq!(RecoveryDepth::decode(d.encode()), Some(d));
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let config = WedgeConfig {
            hang_rate: 0.05,
            stuck_tap_rate: 0.05,
            garbage_rate: 0.05,
            ..WedgeConfig::hang(99, 0.0)
        };
        let mut a = WedgeModel::new(config);
        let mut b = WedgeModel::new(config);
        for _ in 0..500 {
            let wa = a.advance();
            assert_eq!(wa, b.advance());
            if wa.is_some() {
                assert!(a.recover(RecoveryDepth::PowerCycle));
                assert!(b.recover(RecoveryDepth::PowerCycle));
            }
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0);
    }

    #[test]
    fn wedge_is_sticky_until_deep_enough_recovery() {
        let mut m = WedgeModel::new(WedgeConfig::hang(1, 1.0));
        assert_eq!(m.advance(), Some(WedgeKind::Hang));
        // Persists across further operations without consuming draws.
        let ops = m.operations();
        assert_eq!(m.advance(), Some(WedgeKind::Hang));
        assert_eq!(m.operations(), ops);
        // Too-shallow recovery leaves it wedged.
        assert!(!m.recover(RecoveryDepth::SoftReset));
        assert!(!m.recover(RecoveryDepth::Reinit));
        assert!(m.recover(RecoveryDepth::PowerCycle));
        assert_eq!(m.wedged(), None);
    }

    #[test]
    fn never_recovering_wedge_survives_power_cycle() {
        let mut m = WedgeModel::new(WedgeConfig {
            recovery: RecoveryDepth::Never,
            ..WedgeConfig::hang(1, 1.0)
        });
        assert_eq!(m.advance(), Some(WedgeKind::Hang));
        assert!(!m.recover(RecoveryDepth::PowerCycle));
        assert_eq!(m.wedged(), Some(WedgeKind::Hang));
    }

    #[test]
    fn max_events_bounds_the_wedge_count() {
        let mut m = WedgeModel::new(WedgeConfig {
            max_events: Some(2),
            ..WedgeConfig::hang(3, 1.0)
        });
        for _ in 0..10 {
            if m.advance().is_some() {
                m.recover(RecoveryDepth::PowerCycle);
            }
        }
        assert_eq!(m.counts().total(), 2);
        assert_eq!(m.wedged(), None);
    }

    #[test]
    fn garbage_bits_are_seeded_and_sized() {
        let mut a = WedgeModel::new(WedgeConfig::hang(5, 0.0));
        let mut b = WedgeModel::new(WedgeConfig::hang(5, 0.0));
        let ga = a.garbage_bits(64);
        assert_eq!(ga.len(), 64);
        assert_eq!(ga, b.garbage_bits(64));
        // Different seeds give different garbage (with overwhelming odds).
        let mut c = WedgeModel::new(WedgeConfig::hang(6, 0.0));
        assert_ne!(ga, c.garbage_bits(64));
    }
}
