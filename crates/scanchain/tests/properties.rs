//! Property-based tests for the scan-chain substrate.

use proptest::prelude::*;
use scanchain::{
    BitVec, CellAccess, ChainLayout, LinkFaultConfig, LinkFaultModel, TapController, TapState,
};

/// An arbitrary link-fault configuration with rates low enough that the
/// healthy path stays reachable.
fn link_config() -> impl Strategy<Value = LinkFaultConfig> {
    (
        any::<u64>(),
        0.0f64..0.3,
        0.0f64..0.3,
        0.0f64..0.2,
        0.0f64..0.1,
        0.0f64..0.1,
        0u64..20,
    )
        .prop_map(
            |(seed, corrupt, drop, duplicate, stall, disconnect, skip)| LinkFaultConfig {
                seed,
                corrupt_rate: corrupt,
                drop_rate: drop,
                duplicate_rate: duplicate,
                stall_rate: stall,
                disconnect_rate: disconnect,
                skip_ops: skip,
                ..Default::default()
            },
        )
}

proptest! {
    #[test]
    fn bitvec_push_pop_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
        let mut bv = BitVec::from_bits(bits.iter().copied());
        prop_assert_eq!(bv.len(), bits.len());
        for expected in bits.iter().rev() {
            prop_assert_eq!(bv.pop(), Some(*expected));
        }
        prop_assert_eq!(bv.pop(), None);
    }

    #[test]
    fn bitvec_range_roundtrip(
        len in 1usize..200,
        offset_frac in 0.0f64..1.0,
        width in 1usize..64,
        value: u64,
    ) {
        let width = width.min(len);
        let offset = ((len - width) as f64 * offset_frac) as usize;
        let mut bv = BitVec::zeros(len);
        bv.write_range(offset, width, value);
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        prop_assert_eq!(bv.read_range(offset, width), value & mask);
        // Everything outside the range stays zero.
        for i in (0..offset).chain(offset + width..len) {
            prop_assert!(!bv.get(i));
        }
    }

    #[test]
    fn bitvec_diff_indices_matches_flips(
        len in 1usize..300,
        flips in proptest::collection::btree_set(any::<usize>(), 0..20),
    ) {
        let a = BitVec::zeros(len);
        let mut b = a.clone();
        let applied: Vec<usize> = flips.into_iter().map(|f| f % len).collect::<std::collections::BTreeSet<_>>().into_iter().collect();
        for &f in &applied {
            b.flip(f);
        }
        prop_assert_eq!(a.diff_indices(&b), applied);
    }

    #[test]
    fn bitvec_string_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let bv = BitVec::from_bits(bits);
        prop_assert_eq!(BitVec::from_bit_string(&bv.to_bit_string()), Some(bv));
    }

    #[test]
    fn bitvec_parity_equals_ones_mod_2(bits in proptest::collection::vec(any::<bool>(), 0..200)) {
        let bv = BitVec::from_bits(bits.iter().copied());
        prop_assert_eq!(bv.parity(), bits.iter().filter(|b| **b).count() % 2 == 1);
    }

    #[test]
    fn five_tms_ones_always_reset(tms in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut tap = TapController::default();
        tap.clock_seq(&tms);
        tap.clock_seq(&[true; 5]);
        prop_assert_eq!(tap.state(), TapState::TestLogicReset);
    }

    #[test]
    fn masked_update_respects_access(
        widths in proptest::collection::vec((1usize..16, any::<bool>()), 1..10),
        seed: u64,
    ) {
        let mut builder = ChainLayout::builder("p");
        for (i, (w, rw)) in widths.iter().enumerate() {
            builder = builder.cell(
                format!("C{i}"),
                *w,
                if *rw { CellAccess::ReadWrite } else { CellAccess::ReadOnly },
            );
        }
        let layout = builder.build();
        // Deterministic pseudo-random captured/shifted images.
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let captured = BitVec::from_bits((0..layout.total_bits()).map(|_| next() & 1 == 1));
        let shifted = BitVec::from_bits((0..layout.total_bits()).map(|_| next() & 1 == 1));
        let merged = layout.masked_update(&captured, &shifted).unwrap();
        for cell in layout.cells() {
            for bit in cell.bit_range() {
                let expected = match cell.access {
                    CellAccess::ReadWrite => shifted.get(bit),
                    CellAccess::ReadOnly => captured.get(bit),
                };
                prop_assert_eq!(merged.get(bit), expected, "cell {} bit {}", &cell.name, bit);
            }
        }
    }

    #[test]
    fn cell_read_write_roundtrip(
        width in 1usize..=64,
        value: u64,
    ) {
        let layout = ChainLayout::builder("p")
            .cell("PRE", 7, CellAccess::ReadWrite)
            .cell("X", width, CellAccess::ReadWrite)
            .cell("POST", 5, CellAccess::ReadOnly)
            .build();
        let mask = if width == 64 { u64::MAX } else { (1 << width) - 1 };
        let mut bits = BitVec::zeros(layout.total_bits());
        layout.write_cell(&mut bits, "X", value & mask).unwrap();
        prop_assert_eq!(layout.read_cell(&bits, "X").unwrap(), value & mask);
        prop_assert_eq!(layout.read_cell(&bits, "PRE").unwrap(), 0);
        prop_assert_eq!(layout.read_cell(&bits, "POST").unwrap(), 0);
    }

    #[test]
    fn link_model_same_seed_same_fault_stream(cfg in link_config(), ops in 1usize..400) {
        // Two models built from the same configuration replay the same
        // campaign: identical fault decisions on every transaction,
        // identical counters afterwards. This is what makes a lossy-link
        // campaign reproducible from `seed=` alone.
        let mut a = LinkFaultModel::new(cfg);
        let mut b = LinkFaultModel::new(cfg);
        for _ in 0..ops {
            prop_assert_eq!(a.next_fault(), b.next_fault());
        }
        prop_assert_eq!(a.counts(), b.counts());
        prop_assert_eq!(a.ops_observed(), b.ops_observed());
    }

    #[test]
    fn link_model_same_seed_same_disturbed_reads(
        cfg in link_config(),
        images in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 1..64), 1..40),
    ) {
        // Determinism holds through the image-disturbing path too (which
        // consumes extra draws for bit positions).
        let mut a = LinkFaultModel::new(cfg);
        let mut b = LinkFaultModel::new(cfg);
        for bits in images {
            let image = BitVec::from_bits(bits);
            let ra = a.disturb_read(image.clone(), "capture");
            let rb = b.disturb_read(image, "capture");
            match (ra, rb) {
                (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                (Err(x), Err(y)) => prop_assert_eq!(x.to_string(), y.to_string()),
                (x, y) => prop_assert!(false, "streams diverged: {:?} vs {:?}", x, y),
            }
        }
    }

    #[test]
    fn link_model_counts_match_stream_and_skip_protects_prefix(
        cfg in link_config(),
        ops in 1usize..400,
    ) {
        let skip = cfg.skip_ops;
        let mut model = LinkFaultModel::new(cfg);
        let mut corrupted = 0u64;
        let mut dropped = 0u64;
        let mut duplicated = 0u64;
        let mut stalled = 0u64;
        let mut disconnected = 0u64;
        for op in 1..=ops as u64 {
            use scanchain::LinkFault::*;
            let fault = model.next_fault();
            if op <= skip {
                prop_assert_eq!(fault, None, "skip_ops prefix must be fault-free");
            }
            match fault {
                Some(CorruptBit) => corrupted += 1,
                Some(Drop) => dropped += 1,
                Some(Duplicate) => duplicated += 1,
                Some(Stall) => stalled += 1,
                Some(Disconnect) => disconnected += 1,
                None => {}
            }
        }
        let counts = model.counts();
        prop_assert_eq!(counts.corrupted, corrupted);
        prop_assert_eq!(counts.dropped, dropped);
        prop_assert_eq!(counts.duplicated, duplicated);
        prop_assert_eq!(counts.stalled, stalled);
        prop_assert_eq!(counts.disconnected, disconnected);
        prop_assert_eq!(model.ops_observed(), ops as u64);
    }

    #[test]
    fn link_config_spec_roundtrip(cfg in link_config()) {
        // encode() emits only finite-precision decimals, so compare via a
        // second encode rather than float equality on the config.
        let decoded = LinkFaultConfig::decode(&cfg.encode());
        prop_assert!(decoded.is_some());
        prop_assert_eq!(decoded.unwrap().encode(), cfg.encode());
    }
}
