//! Two-pass assembler and disassembler for the Thor-like ISA.
//!
//! GOOFI downloads "the workload and initial input data" to the target at
//! the start of every experiment; workloads for this target are written in
//! the small assembly language defined here.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also #)
//! label:  add  r1, r2, r3
//!         ldi  r4, -7
//!         li   r5, 0x12345678   ; pseudo: expands to lui+ori when needed
//!         beq  label            ; branches are pc-relative, assembled from labels
//!         call subroutine       ; absolute
//! .equ    SIZE, 32
//! .entry  main                  ; optional entry point (default 0)
//! .data                         ; code/data boundary (write protection)
//! arr:    .word 5, 2, SIZE
//! buf:    .space 10
//! ```
//!
//! Registers are `r0`..`r15` with aliases `sp` (r14) and `lr` (r15).

use crate::isa::{decode, encode, Instr, Opcode, Reg};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// An assembled program: a flat word image plus metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// The memory image, loaded at word address 0.
    pub words: Vec<u32>,
    /// Number of leading words belonging to the (write-protected) code
    /// segment; everything after is initialised data.
    pub code_words: u32,
    /// Entry-point word address.
    pub entry: u32,
    /// Label addresses, for breakpoint planning ("the breakpoint is obtained
    /// by analysing the workload code", paper §3.3).
    pub labels: BTreeMap<String, u32>,
}

impl Image {
    /// Address of a label.
    pub fn label(&self, name: &str) -> Option<u32> {
        self.labels.get(name).copied()
    }
}

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// Assembles a source string into an [`Image`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics/labels, out-of-range immediates, and misuse of
/// directives.
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let lines = parse_lines(source)?;

    // Pass 1: assign addresses to labels, record sizes. The width chosen
    // for each `li` is remembered so pass 2 emits exactly the same layout
    // even when a forward reference resolved to a small value.
    let mut symbols: BTreeMap<String, i64> = BTreeMap::new();
    let mut loc: u32 = 0;
    let mut code_words: Option<u32> = None;
    let mut li_sizes: Vec<u32> = Vec::new();
    for line in &lines {
        for label in &line.labels {
            if symbols.contains_key(label) {
                return err(line.number, format!("duplicate label `{label}`"));
            }
            symbols.insert(label.clone(), loc as i64);
        }
        match &line.body {
            Body::None => {}
            Body::Directive(d, args) => match d.as_str() {
                "equ" => {
                    if args.len() != 2 {
                        return err(line.number, ".equ needs NAME, VALUE");
                    }
                    let v = eval(&args[1], &symbols, line.number)?;
                    symbols.insert(args[0].clone(), v);
                }
                "org" => {
                    if args.len() != 1 {
                        return err(line.number, ".org needs one operand");
                    }
                    let v = eval(&args[0], &symbols, line.number)?;
                    if v < loc as i64 {
                        return err(line.number, ".org may not move backwards");
                    }
                    loc = v as u32;
                }
                "word" => loc += args.len() as u32,
                "space" => {
                    if args.len() != 1 {
                        return err(line.number, ".space needs one operand");
                    }
                    loc += eval(&args[0], &symbols, line.number)? as u32;
                }
                "data" => code_words = Some(loc),
                "entry" => {}
                other => return err(line.number, format!("unknown directive .{other}")),
            },
            Body::Instr(mnemonic, args) => {
                let size = instr_size(mnemonic, args, &symbols, line.number)?;
                if mnemonic == "li" {
                    li_sizes.push(size);
                }
                loc += size;
            }
        }
    }

    // Pass 2: emit words.
    let mut words: Vec<u32> = Vec::new();
    let mut entry: u32 = 0;
    let emit = |loc: &mut u32, words: &mut Vec<u32>, w: u32| {
        let at = *loc as usize;
        if words.len() <= at {
            words.resize(at + 1, 0);
        }
        words[at] = w;
        *loc += 1;
    };
    loc = 0;
    let mut li_index = 0usize;
    for line in &lines {
        match &line.body {
            Body::None => {}
            Body::Directive(d, args) => match d.as_str() {
                "equ" => {}
                "org" => {
                    loc = eval(&args[0], &symbols, line.number)? as u32;
                }
                "word" => {
                    for a in args {
                        let v = eval(a, &symbols, line.number)?;
                        emit(&mut loc, &mut words, v as u32);
                    }
                }
                "space" => {
                    let n = eval(&args[0], &symbols, line.number)? as u32;
                    for _ in 0..n {
                        emit(&mut loc, &mut words, 0);
                    }
                }
                "data" => {}
                "entry" => {
                    if args.len() != 1 {
                        return err(line.number, ".entry needs one operand");
                    }
                    entry = eval(&args[0], &symbols, line.number)? as u32;
                }
                _ => unreachable!("validated in pass 1"),
            },
            Body::Instr(mnemonic, args) => {
                let force_wide = if mnemonic == "li" {
                    li_index += 1;
                    li_sizes.get(li_index - 1) == Some(&2)
                } else {
                    false
                };
                for word in encode_instr(mnemonic, args, &symbols, loc, line.number, force_wide)? {
                    emit(&mut loc, &mut words, word);
                }
            }
        }
    }

    let labels = symbols
        .into_iter()
        .filter(|&(_, v)| v >= 0 && v <= u32::MAX as i64)
        .map(|(k, v)| (k, v as u32))
        .collect();
    Ok(Image {
        code_words: code_words.unwrap_or(words.len() as u32),
        words,
        entry,
        labels,
    })
}

/// Disassembles a word, or formats it as data when it does not decode.
pub fn disassemble(word: u32) -> String {
    match decode(word) {
        Ok(i) => i.to_string(),
        Err(_) => format!(".word {word:#010x}"),
    }
}

// ---------------------------------------------------------------------------
// Parsing.

#[derive(Debug)]
enum Body {
    None,
    Directive(String, Vec<String>),
    Instr(String, Vec<String>),
}

#[derive(Debug)]
struct Line {
    number: usize,
    labels: Vec<String>,
    body: Body,
}

fn parse_lines(source: &str) -> Result<Vec<Line>, AsmError> {
    let mut out = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let text = raw.split([';', '#']).next().unwrap_or("").trim();
        let mut labels = Vec::new();
        let mut rest = text;
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let label = head.trim();
            if label.is_empty() || !is_ident(label) {
                return err(number, format!("bad label `{label}`"));
            }
            labels.push(label.to_string());
            rest = tail[1..].trim();
        }
        let body = if rest.is_empty() {
            Body::None
        } else if let Some(dir) = rest.strip_prefix('.') {
            let (name, args) = split_mnemonic(dir);
            Body::Directive(name.to_ascii_lowercase(), args)
        } else {
            let (name, args) = split_mnemonic(rest);
            Body::Instr(name.to_ascii_lowercase(), args)
        };
        out.push(Line {
            number,
            labels,
            body,
        });
    }
    Ok(out)
}

fn split_mnemonic(text: &str) -> (String, Vec<String>) {
    match text.split_once(char::is_whitespace) {
        Some((m, rest)) => (
            m.to_string(),
            rest.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect(),
        ),
        None => (text.to_string(), Vec::new()),
    }
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

// ---------------------------------------------------------------------------
// Expressions.

fn eval(expr: &str, symbols: &BTreeMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    let expr = expr.trim();
    // label+N / label-N
    if let Some(pos) = expr.rfind(['+', '-']).filter(|&p| p > 0) {
        let (head, tail) = expr.split_at(pos);
        if is_ident(head.trim()) {
            let base = eval(head, symbols, line)?;
            let off = eval(&tail[1..], symbols, line)?;
            return Ok(if tail.starts_with('+') {
                base + off
            } else {
                base - off
            });
        }
    }
    if let Some(rest) = expr.strip_prefix('-') {
        return Ok(-eval(rest, symbols, line)?);
    }
    if let Some(hex) = expr.strip_prefix("0x").or_else(|| expr.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|v| v as i64)
            .or_else(|_| err(line, format!("bad hex literal `{expr}`")));
    }
    if expr.chars().all(|c| c.is_ascii_digit()) && !expr.is_empty() {
        return expr
            .parse::<i64>()
            .or_else(|_| err(line, format!("bad number `{expr}`")));
    }
    if is_ident(expr) {
        return symbols
            .get(expr)
            .copied()
            .ok_or(())
            .or_else(|_| err(line, format!("unknown symbol `{expr}`")));
    }
    err(line, format!("cannot parse expression `{expr}`"))
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, AsmError> {
    let lower = s.to_ascii_lowercase();
    match lower.as_str() {
        "sp" => return Ok(Reg::SP),
        "lr" => return Ok(Reg::LR),
        _ => {}
    }
    if let Some(n) = lower.strip_prefix('r') {
        if let Ok(i) = n.parse::<u8>() {
            if i < 16 {
                return Ok(Reg::new(i));
            }
        }
    }
    err(line, format!("bad register `{s}`"))
}

// ---------------------------------------------------------------------------
// Encoding.

fn mnemonic_opcode(m: &str) -> Option<Opcode> {
    Opcode::all().iter().copied().find(|op| op.mnemonic() == m)
}

/// Size of one instruction in words (pass 1). Only `li` can expand.
fn instr_size(
    mnemonic: &str,
    args: &[String],
    symbols: &BTreeMap<String, i64>,
    line: usize,
) -> Result<u32, AsmError> {
    if mnemonic == "li" {
        if args.len() != 2 {
            return err(line, "li needs rd, value");
        }
        // Labels are not yet all known in pass 1: a reference to a not-yet
        // defined symbol conservatively takes the 2-word form.
        return Ok(match eval(&args[1], symbols, line) {
            Ok(v) if (-32768..=32767).contains(&v) => 1,
            _ => 2,
        });
    }
    if mnemonic_opcode(mnemonic).is_none() {
        return err(line, format!("unknown mnemonic `{mnemonic}`"));
    }
    Ok(1)
}

fn check_i16(v: i64, line: usize, what: &str) -> Result<i16, AsmError> {
    i16::try_from(v).or_else(|_| err(line, format!("{what} {v} out of 16-bit signed range")))
}

fn check_u16(v: i64, line: usize, what: &str) -> Result<i16, AsmError> {
    if (0..=0xFFFF).contains(&v) {
        Ok(v as u16 as i16)
    } else {
        err(line, format!("{what} {v} out of 16-bit unsigned range"))
    }
}

fn encode_instr(
    mnemonic: &str,
    args: &[String],
    symbols: &BTreeMap<String, i64>,
    loc: u32,
    line: usize,
    force_wide_li: bool,
) -> Result<Vec<u32>, AsmError> {
    use Opcode::*;
    let r0 = Reg::new(0);

    if mnemonic == "li" {
        let rd = parse_reg(&args[0], line)?;
        let v = eval(&args[1], symbols, line)?;
        if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
            return err(line, format!("li value {v} out of 32-bit range"));
        }
        let v32 = v as u32;
        return Ok(if !force_wide_li && (-32768..=32767).contains(&v) {
            vec![encode(Instr::i(Ldi, rd, r0, v as i16))]
        } else {
            vec![
                encode(Instr::i(Lui, rd, r0, (v32 >> 16) as u16 as i16)),
                encode(Instr::i(Ori, rd, rd, (v32 & 0xFFFF) as u16 as i16)),
            ]
        });
    }

    let op = mnemonic_opcode(mnemonic)
        .ok_or(())
        .or_else(|_| err(line, format!("unknown mnemonic `{mnemonic}`")))?;

    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            err(
                line,
                format!("{mnemonic} expects {n} operands, got {}", args.len()),
            )
        }
    };

    let instr = match op {
        Nop | Halt | Ret => {
            need(0)?;
            Instr::r(op, r0, r0, r0)
        }
        Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Asr => {
            need(3)?;
            Instr::r(
                op,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
                parse_reg(&args[2], line)?,
            )
        }
        Cmp => {
            need(2)?;
            Instr::r(
                op,
                r0,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
            )
        }
        Mov => {
            need(2)?;
            Instr::r(
                op,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
                r0,
            )
        }
        Ldx => {
            need(3)?;
            Instr::r(
                op,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
                parse_reg(&args[2], line)?,
            )
        }
        Stx => {
            need(3)?;
            // stx base, idx, src
            Instr::r(
                op,
                parse_reg(&args[2], line)?,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
            )
        }
        Push => {
            need(1)?;
            Instr::r(op, r0, parse_reg(&args[0], line)?, r0)
        }
        Pop => {
            need(1)?;
            Instr::r(op, parse_reg(&args[0], line)?, r0, r0)
        }
        Jr => {
            need(1)?;
            Instr::r(op, r0, parse_reg(&args[0], line)?, r0)
        }
        Addi | Subi | Muli | Andi | Ori | Xori | Shli | Shri => {
            need(3)?;
            let rd = parse_reg(&args[0], line)?;
            let rs1 = parse_reg(&args[1], line)?;
            let v = eval(&args[2], symbols, line)?;
            let imm = if matches!(op, Andi | Ori | Xori | Shli | Shri) {
                check_u16(v, line, "immediate")?
            } else {
                check_i16(v, line, "immediate")?
            };
            Instr::i(op, rd, rs1, imm)
        }
        Cmpi => {
            need(2)?;
            Instr::i(
                op,
                r0,
                parse_reg(&args[0], line)?,
                check_i16(eval(&args[1], symbols, line)?, line, "immediate")?,
            )
        }
        Ldi => {
            need(2)?;
            Instr::i(
                op,
                parse_reg(&args[0], line)?,
                r0,
                check_i16(eval(&args[1], symbols, line)?, line, "immediate")?,
            )
        }
        Lui => {
            need(2)?;
            Instr::i(
                op,
                parse_reg(&args[0], line)?,
                r0,
                check_u16(eval(&args[1], symbols, line)?, line, "immediate")?,
            )
        }
        Ld => {
            need(3)?;
            // ld rd, base, offset
            Instr::i(
                op,
                parse_reg(&args[0], line)?,
                parse_reg(&args[1], line)?,
                check_i16(eval(&args[2], symbols, line)?, line, "offset")?,
            )
        }
        St => {
            need(3)?;
            // st base, src, offset  =>  mem[base+offset] = src
            Instr::i(
                op,
                parse_reg(&args[1], line)?,
                parse_reg(&args[0], line)?,
                check_i16(eval(&args[2], symbols, line)?, line, "offset")?,
            )
        }
        Br | Beq | Bne | Blt | Bge | Bgt | Ble => {
            need(1)?;
            let target = eval(&args[0], symbols, line)?;
            let rel = target - loc as i64;
            Instr::i(op, r0, r0, check_i16(rel, line, "branch displacement")?)
        }
        Call => {
            need(1)?;
            Instr::i(
                op,
                r0,
                r0,
                check_u16(eval(&args[0], symbols, line)?, line, "call target")?,
            )
        }
        In => {
            need(2)?;
            Instr::i(
                op,
                parse_reg(&args[0], line)?,
                r0,
                check_u16(eval(&args[1], symbols, line)?, line, "port")?,
            )
        }
        Out => {
            need(2)?;
            Instr::i(
                op,
                r0,
                parse_reg(&args[1], line)?,
                check_u16(eval(&args[0], symbols, line)?, line, "port")?,
            )
        }
        Sync | Trap => {
            let v = if args.is_empty() {
                0
            } else {
                need(1)?;
                eval(&args[0], symbols, line)?
            };
            Instr::i(op, r0, r0, check_u16(v, line, "tag")?)
        }
    };
    Ok(vec![encode(instr)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_assembles() {
        let img = assemble(
            r"
            ldi r1, 5
            halt
        ",
        )
        .unwrap();
        assert_eq!(img.words.len(), 2);
        assert_eq!(img.code_words, 2);
        assert_eq!(img.entry, 0);
    }

    #[test]
    fn labels_and_branches() {
        let img = assemble(
            r"
        start:
            ldi r1, 1
        loop:
            subi r1, r1, 1
            bne loop
            halt
        ",
        )
        .unwrap();
        assert_eq!(img.label("start"), Some(0));
        assert_eq!(img.label("loop"), Some(1));
        // bne at word 2 targets word 1 -> displacement -1.
        let i = decode(img.words[2]).unwrap();
        match i {
            Instr::I { op, imm, .. } => {
                assert_eq!(op, Opcode::Bne);
                assert_eq!(imm, -1);
            }
            _ => panic!("expected I form"),
        }
    }

    #[test]
    fn forward_references_resolve() {
        let img = assemble(
            r"
            br end
            nop
        end:
            halt
        ",
        )
        .unwrap();
        match decode(img.words[0]).unwrap() {
            Instr::I { op, imm, .. } => {
                assert_eq!(op, Opcode::Br);
                assert_eq!(imm, 2);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn data_section_and_directives() {
        let img = assemble(
            r"
            ld r1, r0, table
            halt
        .data
        table:
            .word 10, 20, 0x30
        buf:
            .space 3
        tail:
            .word 99
        ",
        )
        .unwrap();
        assert_eq!(img.code_words, 2);
        let t = img.label("table").unwrap();
        assert_eq!(img.words[t as usize..t as usize + 3], [10, 20, 0x30]);
        assert_eq!(img.label("tail").unwrap(), t + 6);
        assert_eq!(img.words[img.label("tail").unwrap() as usize], 99);
    }

    #[test]
    fn equ_constants() {
        let img = assemble(
            r"
        .equ SIZE, 8
            ldi r1, SIZE
            halt
        .data
            .space SIZE
        ",
        )
        .unwrap();
        match decode(img.words[0]).unwrap() {
            Instr::I { imm, .. } => assert_eq!(imm, 8),
            _ => panic!(),
        }
        assert_eq!(img.words.len(), 2 + 8);
    }

    #[test]
    fn li_expands_when_needed() {
        let small = assemble("li r1, 100\nhalt").unwrap();
        assert_eq!(small.words.len(), 2);
        let big = assemble("li r1, 0x12345678\nhalt").unwrap();
        assert_eq!(big.words.len(), 3);
        // lui r1, 0x1234 ; ori r1, r1, 0x5678
        match decode(big.words[0]).unwrap() {
            Instr::I { op, imm, .. } => {
                assert_eq!(op, Opcode::Lui);
                assert_eq!(imm as u16, 0x1234);
            }
            _ => panic!(),
        }
        match decode(big.words[1]).unwrap() {
            Instr::I { op, imm, .. } => {
                assert_eq!(op, Opcode::Ori);
                assert_eq!(imm as u16, 0x5678);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn li_forward_reference_keeps_pass1_layout() {
        // `result` is a forward reference: pass 1 must reserve 2 words and
        // pass 2 must emit 2 words even though the value fits in 16 bits,
        // or every later label would shift.
        let img = assemble(
            r"
            li r1, result
        here:
            br here
        result:
            halt
        ",
        )
        .unwrap();
        assert_eq!(img.label("here"), Some(2));
        assert_eq!(img.label("result"), Some(3));
        // `br here` must sit exactly at `here` with displacement 0.
        match decode(img.words[2]).unwrap() {
            Instr::I { op, imm, .. } => {
                assert_eq!(op, Opcode::Br);
                assert_eq!(imm, 0);
            }
            _ => panic!(),
        }
        match decode(img.words[3]).unwrap() {
            Instr::R { op, .. } => assert_eq!(op, Opcode::Halt),
            _ => panic!(),
        }
    }

    #[test]
    fn entry_directive() {
        let img = assemble(
            r"
        .entry main
            nop
        main:
            halt
        ",
        )
        .unwrap();
        assert_eq!(img.entry, 1);
    }

    #[test]
    fn register_aliases() {
        let img = assemble("mov sp, lr\nhalt").unwrap();
        match decode(img.words[0]).unwrap() {
            Instr::R { rd, rs1, .. } => {
                assert_eq!(rd, Reg::SP);
                assert_eq!(rs1, Reg::LR);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn label_arithmetic() {
        let img = assemble(
            r"
            ld r1, r0, table+1
            halt
        .data
        table: .word 1, 2, 3
        ",
        )
        .unwrap();
        match decode(img.words[0]).unwrap() {
            Instr::I { imm, .. } => assert_eq!(imm as u32, img.label("table").unwrap() + 1),
            _ => panic!(),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus r1\nnop").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble("ldi r1, 99999").unwrap_err();
        assert!(e.message.contains("out of 16-bit"));

        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));

        let e = assemble("br nowhere").unwrap_err();
        assert!(e.message.contains("unknown symbol"));

        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn disassemble_roundtrips_mnemonics() {
        let img = assemble(
            r"
            add r1, r2, r3
            ldi r4, -9
            halt
        ",
        )
        .unwrap();
        assert_eq!(disassemble(img.words[0]), "add r1, r2, r3");
        assert_eq!(disassemble(img.words[1]), "ldi r4, -9");
        assert_eq!(disassemble(img.words[2]), "halt");
        assert!(disassemble(0xEE00_0000).starts_with(".word"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let img = assemble(
            r"
            ; full-line comment
            # hash comment
            nop   ; trailing
            halt  # trailing hash
        ",
        )
        .unwrap();
        assert_eq!(img.words.len(), 2);
    }
}
