//! Parity-protected direct-mapped caches.
//!
//! The Thor RD features "parity protected instruction and data caches"
//! (paper §1) — the main hardware error detection mechanism exercised by the
//! SCIFI campaigns. Each cache line stores a tag, a valid bit, one data word
//! and a parity bit covering tag and data. Scan-chain faults injected into
//! any of those bits interact with the parity check exactly as on silicon:
//!
//! * a flip in *data* or *tag* bits of a valid line is caught by the parity
//!   check on the next hit;
//! * a flip that *clears* the valid bit turns the line into a miss — the
//!   fault is overwritten by the refill (a non-effective error);
//! * a flip that *sets* the valid bit of an invalid line fabricates a bogus
//!   hit, which the parity check usually (but not always) catches.

use scanchain::BitVec;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of direct-mapped lines; must be a power of two.
    pub lines: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { lines: 32 }
    }
}

/// Hit/miss/parity-error counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that hit a valid, parity-clean line.
    pub hits: u64,
    /// Lookups that missed and refilled.
    pub misses: u64,
    /// Lookups aborted by a parity error.
    pub parity_errors: u64,
}

/// One cache line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Line {
    /// Valid bit.
    pub valid: bool,
    /// Tag (upper address bits).
    pub tag: u32,
    /// Cached data word.
    pub data: u32,
    /// Parity bit covering `tag` and `data` (even parity: stored bit makes
    /// the total number of ones even).
    pub parity: bool,
}

impl Line {
    fn computed_parity(tag: u32, data: u32) -> bool {
        (tag.count_ones() + data.count_ones()) % 2 == 1
    }

    /// Whether the line's stored parity matches its contents.
    pub fn parity_ok(&self) -> bool {
        self.parity == Line::computed_parity(self.tag, self.data)
    }
}

/// The result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Valid line, parity clean: the cached word.
    Hit(u32),
    /// No valid matching line; caller must refill.
    Miss,
    /// Valid matching line whose parity check failed.
    ParityError,
}

/// A direct-mapped, parity-protected, write-through cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    lines: Vec<Line>,
    mask: u32,
    shift: u32,
    stats: CacheStats,
    parity_enabled: bool,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `config.lines` is not a power of two or is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(
            config.lines.is_power_of_two() && config.lines > 0,
            "cache lines must be a nonzero power of two"
        );
        Cache {
            lines: vec![Line::default(); config.lines],
            mask: (config.lines - 1) as u32,
            shift: config.lines.trailing_zeros(),
            stats: CacheStats::default(),
            parity_enabled: true,
        }
    }

    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.lines.len()
    }

    /// Access to a line (for scan capture).
    pub fn line(&self, index: usize) -> &Line {
        &self.lines[index]
    }

    /// Mutable access to a line (for scan update — this is how faults land).
    pub fn line_mut(&mut self, index: usize) -> &mut Line {
        &mut self.lines[index]
    }

    /// Enables/disables the parity check (PSW-controlled EDM).
    pub fn set_parity_enabled(&mut self, on: bool) {
        self.parity_enabled = on;
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        self.lines.fill(Line::default());
        self.stats = CacheStats::default();
    }

    fn index_tag(&self, addr: u32) -> (usize, u32) {
        ((addr & self.mask) as usize, addr >> self.shift)
    }

    /// Looks up `addr`. On a parity error with the check disabled, the
    /// corrupted word is returned as a hit (silent data corruption), exactly
    /// as disabling the EDM would behave on hardware.
    pub fn lookup(&mut self, addr: u32) -> Lookup {
        let (idx, tag) = self.index_tag(addr);
        let line = self.lines[idx];
        if line.valid && line.tag == tag {
            if !line.parity_ok() && self.parity_enabled {
                self.stats.parity_errors += 1;
                return Lookup::ParityError;
            }
            // EDM disabled: corrupted data flows on silently.
            self.stats.hits += 1;
            Lookup::Hit(line.data)
        } else {
            self.stats.misses += 1;
            Lookup::Miss
        }
    }

    /// Installs `data` for `addr` with freshly computed parity (refill or
    /// write-through allocate).
    pub fn fill(&mut self, addr: u32, data: u32) {
        let (idx, tag) = self.index_tag(addr);
        self.lines[idx] = Line {
            valid: true,
            tag,
            data,
            parity: Line::computed_parity(tag, data),
        };
    }

    /// Invalidates the line holding `addr`, if it matches.
    pub fn invalidate(&mut self, addr: u32) {
        let (idx, tag) = self.index_tag(addr);
        if self.lines[idx].valid && self.lines[idx].tag == tag {
            self.lines[idx].valid = false;
        }
    }

    /// Width of the tag field in scan bits for this geometry.
    pub fn tag_bits(&self) -> usize {
        32 - self.shift as usize
    }

    /// Serialises one line to scan bits: `VALID | TAG | DATA | PAR`.
    pub fn capture_line(&self, index: usize) -> BitVec {
        let line = &self.lines[index];
        let mut bv = BitVec::zeros(1 + self.tag_bits() + 32 + 1);
        bv.set(0, line.valid);
        bv.write_range(1, self.tag_bits(), line.tag as u64);
        bv.write_range(1 + self.tag_bits(), 32, line.data as u64);
        bv.set(1 + self.tag_bits() + 32, line.parity);
        bv
    }

    /// Applies scan bits to one line (the update path faults ride in on).
    ///
    /// # Panics
    ///
    /// Panics if `bits` has the wrong length for this geometry.
    pub fn update_line(&mut self, index: usize, bits: &BitVec) {
        let tag_bits = self.tag_bits();
        assert_eq!(bits.len(), 1 + tag_bits + 32 + 1, "line image size");
        let line = &mut self.lines[index];
        line.valid = bits.get(0);
        line.tag = bits.read_range(1, tag_bits) as u32;
        line.data = bits.read_range(1 + tag_bits, 32) as u32;
        line.parity = bits.get(1 + tag_bits + 32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> Cache {
        Cache::new(CacheConfig { lines: 8 })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache();
        assert_eq!(c.lookup(100), Lookup::Miss);
        c.fill(100, 77);
        assert_eq!(c.lookup(100), Lookup::Hit(77));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_addresses_evict() {
        let mut c = cache();
        c.fill(4, 1);
        c.fill(4 + 8, 2); // same index, different tag
        assert_eq!(c.lookup(4), Lookup::Miss);
        assert_eq!(c.lookup(12), Lookup::Hit(2));
    }

    #[test]
    fn data_flip_caught_by_parity() {
        let mut c = cache();
        c.fill(5, 0xFF);
        c.line_mut(5).data ^= 1 << 9; // injected fault
        assert_eq!(c.lookup(5), Lookup::ParityError);
        assert_eq!(c.stats().parity_errors, 1);
    }

    #[test]
    fn tag_flip_becomes_miss() {
        let mut c = cache();
        c.fill(5, 0xFF);
        c.line_mut(5).tag ^= 1 << 2;
        // Tag no longer matches: a miss, so the fault gets overwritten.
        assert_eq!(c.lookup(5), Lookup::Miss);
        c.fill(5, 0xFF);
        assert_eq!(c.lookup(5), Lookup::Hit(0xFF));
    }

    #[test]
    fn parity_bit_flip_caught() {
        let mut c = cache();
        c.fill(3, 12);
        c.line_mut(3).parity = !c.line(3).parity;
        assert_eq!(c.lookup(3), Lookup::ParityError);
    }

    #[test]
    fn valid_clear_becomes_miss() {
        let mut c = cache();
        c.fill(3, 12);
        c.line_mut(3).valid = false;
        assert_eq!(c.lookup(3), Lookup::Miss);
    }

    #[test]
    fn disabled_parity_returns_corrupt_data() {
        let mut c = cache();
        c.fill(5, 0b1000);
        c.line_mut(5).data ^= 0b0010;
        c.set_parity_enabled(false);
        assert_eq!(c.lookup(5), Lookup::Hit(0b1010));
        assert_eq!(c.stats().parity_errors, 0);
    }

    #[test]
    fn invalidate_specific_line() {
        let mut c = cache();
        c.fill(9, 1);
        c.invalidate(1); // different tag, same index — no effect
        assert_eq!(c.lookup(9), Lookup::Hit(1));
        c.invalidate(9);
        assert_eq!(c.lookup(9), Lookup::Miss);
    }

    #[test]
    fn scan_line_roundtrip() {
        let mut c = cache();
        c.fill(6, 0xDEAD);
        let img = c.capture_line(6);
        let mut c2 = cache();
        c2.update_line(6, &img);
        assert_eq!(c2.line(6), c.line(6));
        assert_eq!(c2.lookup(6), Lookup::Hit(0xDEAD));
    }

    #[test]
    fn scan_image_bit_flip_matches_field_flip() {
        let mut c = cache();
        c.fill(2, 0xABCD);
        let mut img = c.capture_line(2);
        img.flip(0); // valid bit
        c.update_line(2, &img);
        assert!(!c.line(2).valid);
    }

    #[test]
    fn reset_clears_lines_and_stats() {
        let mut c = cache();
        c.fill(1, 2);
        c.lookup(1);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.lookup(1), Lookup::Miss);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        Cache::new(CacheConfig { lines: 12 });
    }
}
