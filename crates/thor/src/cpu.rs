//! The CPU core: fetch/decode/execute, EDMs, ports, watchdog, debug unit.

use crate::asm::Image;
use crate::cache::{Cache, CacheConfig, Lookup};
use crate::edm::{Detection, EdmSet};
use crate::isa::{decode, Instr, Opcode, Reg};
use crate::memory::{Memory, MemoryError};
use scanchain::{BusEvent, DebugEvent, DebugUnit};

/// Number of I/O ports in each direction.
pub const PORT_COUNT: usize = 4;

/// Construction-time CPU configuration.
#[derive(Debug, Clone, Copy)]
pub struct CpuConfig {
    /// Main memory size in words.
    pub mem_words: usize,
    /// Instruction cache geometry.
    pub icache: CacheConfig,
    /// Data cache geometry.
    pub dcache: CacheConfig,
    /// Initially enabled error detection mechanisms.
    pub edm: EdmSet,
    /// Watchdog budget in cycles; `None` disables the watchdog.
    pub watchdog_cycles: Option<u64>,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            mem_words: crate::memory::DEFAULT_WORDS,
            icache: CacheConfig::default(),
            dcache: CacheConfig::default(),
            edm: EdmSet::default(),
            watchdog_cycles: Some(2_000_000),
        }
    }
}

/// Why execution stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// An error detection mechanism fired.
    Detected(Detection),
    /// An armed debug condition fired (breakpoint reached).
    DebugEvent(DebugEvent),
    /// The workload executed `sync tag` — an iteration boundary at which
    /// the tool exchanges data with the environment simulator.
    Sync {
        /// The tag operand of the `sync` instruction.
        tag: u16,
        /// Completed loop iterations so far.
        iteration: u64,
    },
    /// The watchdog cycle budget was exhausted (time-out termination).
    Timeout,
    /// The per-call instruction budget of [`Cpu::run`] was exhausted.
    InstrLimit,
}

/// Condition-code flags.
const FLAG_Z: u8 = 1;
const FLAG_N: u8 = 2;
const FLAG_C: u8 = 4;
const FLAG_V: u8 = 8;

/// Record of the architectural reads/writes of one instruction, used by the
/// pre-injection (liveness) analysis of GOOFI's §4 extensions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessLog {
    /// Program counter of the instruction.
    pub pc: u32,
    /// Registers read.
    pub reg_reads: Vec<Reg>,
    /// Registers written.
    pub reg_writes: Vec<Reg>,
    /// Memory words read.
    pub mem_reads: Vec<u32>,
    /// Memory words written.
    pub mem_writes: Vec<u32>,
    /// Whether the instruction read the condition flags.
    pub flags_read: bool,
    /// Whether the instruction wrote the condition flags.
    pub flags_written: bool,
}

impl AccessLog {
    fn clear(&mut self) {
        self.pc = 0;
        self.reg_reads.clear();
        self.reg_writes.clear();
        self.mem_reads.clear();
        self.mem_writes.clear();
        self.flags_read = false;
        self.flags_written = false;
    }
}

/// A snapshot of the CPU's scan-observable architectural state.
///
/// This is the `statevector` that GOOFI logs to the `LoggedSystemState`
/// table after the reference run and after every experiment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateVector {
    /// General-purpose registers.
    pub regs: [u32; Reg::COUNT],
    /// Program counter.
    pub pc: u32,
    /// Condition flags.
    pub flags: u8,
    /// Instruction register (last fetched word).
    pub ir: u32,
    /// Memory address register.
    pub mar: u32,
    /// Memory data register.
    pub mdr: u32,
    /// Output port latches.
    pub out_ports: [u32; PORT_COUNT],
    /// Completed workload iterations.
    pub iterations: u64,
    /// Latched detection status (encoded; 0 = none).
    pub detection: u32,
}

impl StateVector {
    /// Serialises the snapshot to words, for hashing and database storage.
    pub fn to_words(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(Reg::COUNT + PORT_COUNT + 8);
        v.extend_from_slice(&self.regs);
        v.push(self.pc);
        v.push(self.flags as u32);
        v.push(self.ir);
        v.push(self.mar);
        v.push(self.mdr);
        v.extend_from_slice(&self.out_ports);
        v.push(self.iterations as u32);
        v.push((self.iterations >> 32) as u32);
        v.push(self.detection);
        v
    }
}

/// The simulated processor.
///
/// See the crate docs for an end-to-end example. The scan-chain view of the
/// CPU lives in [`crate::scan`].
#[derive(Debug, Clone)]
pub struct Cpu {
    pub(crate) regs: [u32; Reg::COUNT],
    pub(crate) pc: u32,
    pub(crate) flags: u8,
    pub(crate) ir: u32,
    pub(crate) mar: u32,
    pub(crate) mdr: u32,
    pub(crate) edm: EdmSet,
    pub(crate) mem: Memory,
    pub(crate) icache: Cache,
    pub(crate) dcache: Cache,
    pub(crate) in_ports: [u32; PORT_COUNT],
    pub(crate) out_ports: [u32; PORT_COUNT],
    pub(crate) cycles: u64,
    pub(crate) instret: u64,
    pub(crate) iterations: u64,
    pub(crate) debug: DebugUnit,
    pub(crate) detection: Option<Detection>,
    pub(crate) halted: bool,
    watchdog: Option<u64>,
    entry: u32,
    initial_sp: u32,
    /// The configured EDM set, restored by [`Cpu::reset`] — without it an
    /// injected PSW bit flip would survive reset and contaminate every
    /// later experiment (and the golden run) of a campaign.
    config_edm: EdmSet,
    scratch_log: AccessLog,
    pub(crate) chains: crate::scan::ChainSet,
}

impl Cpu {
    /// Creates a CPU with zeroed state.
    pub fn new(config: CpuConfig) -> Self {
        let initial_sp = config.mem_words as u32 - 1;
        let mut icache = Cache::new(config.icache);
        let mut dcache = Cache::new(config.dcache);
        icache.set_parity_enabled(config.edm.parity_i);
        dcache.set_parity_enabled(config.edm.parity_d);
        let chains = crate::scan::ChainSet::new(
            icache.line_count(),
            icache.tag_bits(),
            dcache.line_count(),
            dcache.tag_bits(),
        );
        let mut regs = [0; Reg::COUNT];
        regs[Reg::SP.index()] = initial_sp;
        Cpu {
            regs,
            pc: 0,
            flags: 0,
            ir: 0,
            mar: 0,
            mdr: 0,
            edm: config.edm,
            mem: Memory::new(config.mem_words),
            icache,
            dcache,
            in_ports: [0; PORT_COUNT],
            out_ports: [0; PORT_COUNT],
            cycles: 0,
            instret: 0,
            iterations: 0,
            debug: DebugUnit::new(),
            detection: None,
            halted: false,
            watchdog: config.watchdog_cycles,
            entry: 0,
            initial_sp,
            config_edm: config.edm,
            scratch_log: AccessLog::default(),
            chains,
        }
    }

    /// Downloads an assembled image: code at word 0, protection boundary at
    /// the image's code/data split, then resets the core.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] if the image does not fit.
    pub fn load_image(&mut self, image: &Image) -> Result<(), MemoryError> {
        self.mem.clear();
        self.mem.load_block(0, &image.words)?;
        self.mem.set_code_segment(image.code_words);
        self.entry = image.entry;
        self.reset();
        Ok(())
    }

    /// Resets the core (registers, caches, counters, detection latch, PSW
    /// error-detection mask) while leaving main memory intact. Equivalent
    /// to pulsing the reset pin.
    pub fn reset(&mut self) {
        self.regs = [0; Reg::COUNT];
        self.regs[Reg::SP.index()] = self.initial_sp;
        self.pc = self.entry;
        self.flags = 0;
        self.ir = 0;
        self.mar = 0;
        self.mdr = 0;
        // The PSW mask reverts to its configured value: a fault injected
        // into the PSW scan cell must not outlive its own experiment.
        self.edm = self.config_edm;
        self.icache.reset();
        self.dcache.reset();
        self.icache.set_parity_enabled(self.edm.parity_i);
        self.dcache.set_parity_enabled(self.edm.parity_d);
        // Both port latch directions reset, or an experiment would inherit
        // the previous run's last sensor values and follow a (slightly)
        // different trajectory than the reference run.
        self.in_ports = [0; PORT_COUNT];
        self.out_ports = [0; PORT_COUNT];
        self.cycles = 0;
        self.instret = 0;
        self.iterations = 0;
        self.debug.reset_counters();
        self.detection = None;
        self.halted = false;
    }

    /// The enabled error detection mechanisms.
    pub fn edm(&self) -> EdmSet {
        self.edm
    }

    /// Reconfigures the enabled EDMs (also reachable via the PSW scan cell).
    pub fn set_edm(&mut self, edm: EdmSet) {
        self.edm = edm;
        self.icache.set_parity_enabled(edm.parity_i);
        self.dcache.set_parity_enabled(edm.parity_d);
    }

    /// Main memory (tool-side access).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable main memory (tool-side access, used by SWIFI).
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Invalidates any cached copy of `addr` in both caches. The test card
    /// calls this after tool-side memory writes so a SWIFI fault is not
    /// silently masked by a stale cache line.
    pub fn invalidate_cached(&mut self, addr: u32) {
        self.icache.invalidate(addr);
        self.dcache.invalidate(addr);
    }

    /// The debug-event unit.
    pub fn debug_unit(&self) -> &DebugUnit {
        &self.debug
    }

    /// Mutable debug-event unit (breakpoint programming).
    pub fn debug_unit_mut(&mut self) -> &mut DebugUnit {
        &mut self.debug
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register (tool-side; scan writes use the chain interface).
    pub fn set_reg(&mut self, r: Reg, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter (tool-side).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Cycle count since reset.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Instructions retired since reset.
    pub fn instructions(&self) -> u64 {
        self.instret
    }

    /// Completed `sync` iterations since reset.
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Latched detection, if any.
    pub fn detection(&self) -> Option<Detection> {
        self.detection
    }

    /// Whether the core has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Drives an input port (environment simulator -> target).
    ///
    /// # Panics
    ///
    /// Panics if `port >= PORT_COUNT`.
    pub fn set_in_port(&mut self, port: usize, value: u32) {
        self.in_ports[port] = value;
    }

    /// Reads an output port latch (target -> environment simulator).
    ///
    /// # Panics
    ///
    /// Panics if `port >= PORT_COUNT`.
    pub fn out_port(&self, port: usize) -> u32 {
        self.out_ports[port]
    }

    /// Instruction-cache statistics.
    pub fn icache_stats(&self) -> crate::cache::CacheStats {
        self.icache.stats()
    }

    /// Data-cache statistics.
    pub fn dcache_stats(&self) -> crate::cache::CacheStats {
        self.dcache.stats()
    }

    /// Snapshot of the scan-observable state.
    pub fn state_vector(&self) -> StateVector {
        StateVector {
            regs: self.regs,
            pc: self.pc,
            flags: self.flags,
            ir: self.ir,
            mar: self.mar,
            mdr: self.mdr,
            out_ports: self.out_ports,
            iterations: self.iterations,
            detection: self.detection.map_or(0, |d| d.encode()),
        }
    }

    /// Runs until a stop condition, retiring at most `max_instructions`.
    pub fn run(&mut self, max_instructions: u64) -> StopReason {
        for _ in 0..max_instructions {
            if let Some(stop) = self.step() {
                return stop;
            }
        }
        StopReason::InstrLimit
    }

    /// Executes one instruction; `None` means execution continues.
    pub fn step(&mut self) -> Option<StopReason> {
        self.step_inner(false)
    }

    /// Executes one instruction and fills `log` with its architectural
    /// reads and writes (reference-trace collection for the pre-injection
    /// analysis).
    pub fn step_logged(&mut self, log: &mut AccessLog) -> Option<StopReason> {
        self.scratch_log.clear();
        let r = self.step_inner(true);
        std::mem::swap(log, &mut self.scratch_log);
        r
    }

    fn step_inner(&mut self, want_log: bool) -> Option<StopReason> {
        if self.halted {
            return Some(StopReason::Halted);
        }
        if let Some(d) = self.detection {
            return Some(StopReason::Detected(d));
        }
        if let Some(budget) = self.watchdog {
            if self.cycles >= budget {
                return Some(StopReason::Timeout);
            }
        }
        // Breakpoint check on fetch, before the instruction executes.
        if let Some(ev) = self.debug.observe(BusEvent::Fetch { pc: self.pc }) {
            return Some(StopReason::DebugEvent(ev));
        }
        if want_log {
            self.scratch_log.pc = self.pc;
        }

        // Control-flow check of the fetch address itself.
        if self.pc >= self.mem.code_segment() && self.edm.control_flow {
            return Some(self.detect(Detection::ControlFlow));
        }

        // Fetch through the instruction cache.
        let word = match self.icache.lookup(self.pc) {
            Lookup::Hit(w) => {
                self.cycles += 1;
                w
            }
            Lookup::Miss => match self.mem.read(self.pc) {
                Ok(w) => {
                    self.icache.fill(self.pc, w);
                    self.cycles += 4;
                    w
                }
                Err(_) => {
                    if self.edm.access_violation {
                        return Some(self.detect(Detection::AccessViolation));
                    }
                    self.cycles += 4;
                    0 // reads beyond memory float to zero (NOP)
                }
            },
            Lookup::ParityError => return Some(self.detect(Detection::ParityI)),
        };
        self.ir = word;
        self.mar = self.pc;

        // Decode.
        let instr = match decode(word) {
            Ok(i) => i,
            Err(_) => {
                if self.edm.illegal_opcode {
                    return Some(self.detect(Detection::IllegalOpcode));
                }
                // Detection disabled: the word executes as a NOP.
                self.pc = self.pc.wrapping_add(1);
                self.instret += 1;
                self.cycles += 1;
                self.debug.on_cycles(1);
                return self.post_instruction_stop();
            }
        };

        // Execute.
        let stop = self.execute(instr, want_log);
        self.instret += 1;
        if stop.is_some() {
            return stop;
        }
        self.post_instruction_stop()
    }

    /// After an instruction completes, surface any debug event latched by a
    /// data-access/branch/call/cycle trigger during execution.
    fn post_instruction_stop(&mut self) -> Option<StopReason> {
        self.debug.pending().map(StopReason::DebugEvent)
    }

    fn detect(&mut self, d: Detection) -> StopReason {
        debug_assert!(self.edm.allows(d), "masked detection {d:?} latched");
        self.detection = Some(d);
        StopReason::Detected(d)
    }

    fn set_zn(&mut self, value: u32) {
        self.flags &= !(FLAG_Z | FLAG_N);
        if value == 0 {
            self.flags |= FLAG_Z;
        }
        if (value as i32) < 0 {
            self.flags |= FLAG_N;
        }
    }

    fn set_arith_flags(&mut self, a: u32, b: u32, result: u32, carry: bool) {
        self.set_zn(result);
        self.flags &= !(FLAG_C | FLAG_V);
        if carry {
            self.flags |= FLAG_C;
        }
        // Signed overflow of a - b or a + b is summarised by the caller via
        // `carry`; V is computed from operand signs here for a + b form.
        let v = ((a ^ result) & (b ^ result)) >> 31 == 1;
        if v {
            self.flags |= FLAG_V;
        }
    }

    fn log_reg_read(&mut self, want_log: bool, r: Reg) -> u32 {
        if want_log {
            self.scratch_log.reg_reads.push(r);
        }
        self.regs[r.index()]
    }

    fn log_reg_write(&mut self, want_log: bool, r: Reg, v: u32) {
        if want_log {
            self.scratch_log.reg_writes.push(r);
        }
        self.regs[r.index()] = v;
    }

    /// Data read through the D-cache. Returns `Err(stop)` on detection.
    fn data_read(&mut self, addr: u32, want_log: bool) -> Result<u32, StopReason> {
        self.mar = addr;
        if want_log {
            self.scratch_log.mem_reads.push(addr);
        }
        let value = match self.dcache.lookup(addr) {
            Lookup::Hit(v) => {
                self.cycles += 1;
                v
            }
            Lookup::Miss => match self.mem.read(addr) {
                Ok(v) => {
                    self.dcache.fill(addr, v);
                    self.cycles += 4;
                    v
                }
                Err(MemoryError::OutOfRange { .. }) => {
                    if self.edm.access_violation {
                        return Err(self.detect(Detection::AccessViolation));
                    }
                    self.cycles += 4;
                    0
                }
                Err(MemoryError::WriteProtected { .. }) => {
                    unreachable!("read cannot hit protection")
                }
            },
            Lookup::ParityError => return Err(self.detect(Detection::ParityD)),
        };
        self.mdr = value;
        self.debug.observe(BusEvent::DataRead { addr });
        Ok(value)
    }

    /// Data write, write-through with allocate. Returns `Err(stop)` on
    /// detection.
    fn data_write(&mut self, addr: u32, value: u32, want_log: bool) -> Result<(), StopReason> {
        self.mar = addr;
        self.mdr = value;
        if want_log {
            self.scratch_log.mem_writes.push(addr);
        }
        match self.mem.write(addr, value) {
            Ok(()) => {
                self.dcache.fill(addr, value);
                self.cycles += 2;
                self.debug.observe(BusEvent::DataWrite { addr });
                Ok(())
            }
            Err(_) => {
                if self.edm.access_violation {
                    Err(self.detect(Detection::AccessViolation))
                } else {
                    // Detection disabled: the store is silently dropped.
                    self.cycles += 2;
                    Ok(())
                }
            }
        }
    }

    /// Transfers control to `target` (branch/call/return). Returns
    /// `Err(stop)` when control-flow checking rejects the target.
    fn jump(&mut self, target: u32, is_call: bool) -> Result<(), StopReason> {
        if self.edm.control_flow && target >= self.mem.code_segment() {
            return Err(self.detect(Detection::ControlFlow));
        }
        self.pc = target;
        self.cycles += 1;
        let ev = if is_call {
            BusEvent::Call { target }
        } else {
            BusEvent::Branch { target }
        };
        self.debug.observe(ev);
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn execute(&mut self, instr: Instr, want_log: bool) -> Option<StopReason> {
        use Opcode::*;
        let next_pc = self.pc.wrapping_add(1);
        let mut pc_set = false;
        let mut cost = 1u64;

        macro_rules! stop_on {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(stop) => {
                        self.debug.on_cycles(cost);
                        return Some(stop);
                    }
                }
            };
        }

        match instr {
            Instr::R { op, rd, rs1, rs2 } => {
                let a = self.log_reg_read(want_log, rs1);
                let b = self.log_reg_read(want_log, rs2);
                match op {
                    Nop => {}
                    Halt => {
                        self.halted = true;
                        self.cycles += cost;
                        self.debug.on_cycles(cost);
                        return Some(StopReason::Halted);
                    }
                    Add => {
                        let (r, c) = a.overflowing_add(b);
                        if self.edm.overflow && (a as i32).checked_add(b as i32).is_none() {
                            return Some(self.detect(Detection::Overflow));
                        }
                        self.set_arith_flags(a, b, r, c);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        self.log_reg_write(want_log, rd, r);
                    }
                    Sub | Cmp => {
                        let (r, borrow) = a.overflowing_sub(b);
                        if op == Sub
                            && self.edm.overflow
                            && (a as i32).checked_sub(b as i32).is_none()
                        {
                            return Some(self.detect(Detection::Overflow));
                        }
                        self.set_arith_flags(a, !b, r, !borrow);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        if op == Sub {
                            self.log_reg_write(want_log, rd, r);
                        }
                    }
                    Mul => {
                        cost += 3;
                        if self.edm.overflow && (a as i32).checked_mul(b as i32).is_none() {
                            return Some(self.detect(Detection::Overflow));
                        }
                        let r = a.wrapping_mul(b);
                        self.set_zn(r);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        self.log_reg_write(want_log, rd, r);
                    }
                    Div => {
                        cost += 10;
                        if b == 0 {
                            return Some(self.detect(Detection::DivideByZero));
                        }
                        let r = ((a as i32).wrapping_div(b as i32)) as u32;
                        self.set_zn(r);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        self.log_reg_write(want_log, rd, r);
                    }
                    And | Or | Xor | Shl | Shr | Asr => {
                        let r = match op {
                            And => a & b,
                            Or => a | b,
                            Xor => a ^ b,
                            Shl => a.wrapping_shl(b & 31),
                            Shr => a.wrapping_shr(b & 31),
                            Asr => ((a as i32).wrapping_shr(b & 31)) as u32,
                            _ => unreachable!(),
                        };
                        self.set_zn(r);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        self.log_reg_write(want_log, rd, r);
                    }
                    Mov => {
                        self.log_reg_write(want_log, rd, a);
                    }
                    Ldx => {
                        let addr = a.wrapping_add(b);
                        let v = stop_on!(self.data_read(addr, want_log));
                        self.log_reg_write(want_log, rd, v);
                        cost += 1;
                    }
                    Stx => {
                        let addr = a.wrapping_add(b);
                        let v = self.log_reg_read(want_log, rd);
                        stop_on!(self.data_write(addr, v, want_log));
                        cost += 1;
                    }
                    Push => {
                        let sp = self.log_reg_read(want_log, Reg::SP).wrapping_sub(1);
                        self.log_reg_write(want_log, Reg::SP, sp);
                        stop_on!(self.data_write(sp, a, want_log));
                        cost += 1;
                    }
                    Pop => {
                        let sp = self.log_reg_read(want_log, Reg::SP);
                        let v = stop_on!(self.data_read(sp, want_log));
                        self.log_reg_write(want_log, rd, v);
                        self.log_reg_write(want_log, Reg::SP, sp.wrapping_add(1));
                        cost += 1;
                    }
                    Ret => {
                        let target = self.log_reg_read(want_log, Reg::LR);
                        stop_on!(self.jump(target, false));
                        pc_set = true;
                    }
                    Jr => {
                        stop_on!(self.jump(a, false));
                        pc_set = true;
                    }
                    _ => unreachable!("imm opcode in R form"),
                }
            }
            Instr::I { op, rd, rs1, imm } => {
                let simm = imm as i32 as u32;
                let zimm = imm as u16 as u32;
                match op {
                    Addi | Subi | Muli | Cmpi => {
                        let a = self.log_reg_read(want_log, rs1);
                        match op {
                            Addi => {
                                let (r, c) = a.overflowing_add(simm);
                                if self.edm.overflow && (a as i32).checked_add(imm as i32).is_none()
                                {
                                    return Some(self.detect(Detection::Overflow));
                                }
                                self.set_arith_flags(a, simm, r, c);
                                self.log_reg_write(want_log, rd, r);
                            }
                            Subi | Cmpi => {
                                let (r, borrow) = a.overflowing_sub(simm);
                                if op == Subi
                                    && self.edm.overflow
                                    && (a as i32).checked_sub(imm as i32).is_none()
                                {
                                    return Some(self.detect(Detection::Overflow));
                                }
                                self.set_arith_flags(a, !simm, r, !borrow);
                                if op == Subi {
                                    self.log_reg_write(want_log, rd, r);
                                }
                            }
                            Muli => {
                                cost += 3;
                                if self.edm.overflow && (a as i32).checked_mul(imm as i32).is_none()
                                {
                                    return Some(self.detect(Detection::Overflow));
                                }
                                let r = a.wrapping_mul(simm);
                                self.set_zn(r);
                                self.log_reg_write(want_log, rd, r);
                            }
                            _ => unreachable!(),
                        }
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                    }
                    Andi | Ori | Xori | Shli | Shri => {
                        let a = self.log_reg_read(want_log, rs1);
                        let r = match op {
                            Andi => a & zimm,
                            Ori => a | zimm,
                            Xori => a ^ zimm,
                            Shli => a.wrapping_shl(zimm & 31),
                            Shri => a.wrapping_shr(zimm & 31),
                            _ => unreachable!(),
                        };
                        self.set_zn(r);
                        if want_log {
                            self.scratch_log.flags_written = true;
                        }
                        self.log_reg_write(want_log, rd, r);
                    }
                    Ldi => {
                        self.log_reg_write(want_log, rd, simm);
                    }
                    Lui => {
                        self.log_reg_write(want_log, rd, zimm << 16);
                    }
                    Ld => {
                        let base = self.log_reg_read(want_log, rs1);
                        let addr = base.wrapping_add(simm);
                        let v = stop_on!(self.data_read(addr, want_log));
                        self.log_reg_write(want_log, rd, v);
                        cost += 1;
                    }
                    St => {
                        let base = self.log_reg_read(want_log, rs1);
                        let addr = base.wrapping_add(simm);
                        let v = self.log_reg_read(want_log, rd);
                        stop_on!(self.data_write(addr, v, want_log));
                        cost += 1;
                    }
                    Br | Beq | Bne | Blt | Bge | Bgt | Ble => {
                        let z = self.flags & FLAG_Z != 0;
                        let n = self.flags & FLAG_N != 0;
                        let v = self.flags & FLAG_V != 0;
                        let taken = match op {
                            Br => true,
                            Beq => z,
                            Bne => !z,
                            Blt => n != v,
                            Bge => n == v,
                            Bgt => !z && n == v,
                            Ble => z || n != v,
                            _ => unreachable!(),
                        };
                        if want_log && op != Br {
                            self.scratch_log.flags_read = true;
                        }
                        if taken {
                            let target = self.pc.wrapping_add(simm);
                            stop_on!(self.jump(target, false));
                            pc_set = true;
                        }
                    }
                    Call => {
                        self.log_reg_write(want_log, Reg::LR, next_pc);
                        stop_on!(self.jump(zimm, true));
                        pc_set = true;
                    }
                    In => {
                        let v = self.in_ports[(zimm as usize) % PORT_COUNT];
                        self.log_reg_write(want_log, rd, v);
                    }
                    Out => {
                        let v = self.log_reg_read(want_log, rs1);
                        self.out_ports[(zimm as usize) % PORT_COUNT] = v;
                    }
                    Sync => {
                        self.iterations += 1;
                        self.pc = next_pc;
                        self.cycles += cost;
                        self.debug.on_cycles(cost);
                        return Some(StopReason::Sync {
                            tag: imm as u16,
                            iteration: self.iterations,
                        });
                    }
                    Trap => {
                        return Some(self.detect(Detection::Assertion(imm as u16)));
                    }
                    _ => unreachable!("register opcode in I form"),
                }
            }
        }

        if !pc_set {
            self.pc = next_pc;
        }
        self.cycles += cost;
        self.debug.on_cycles(cost);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> (Cpu, StopReason) {
        let image = assemble(src).expect("assembly");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        let stop = cpu.run(1_000_000);
        (cpu, stop)
    }

    #[test]
    fn arithmetic_and_halt() {
        let (cpu, stop) = run_asm(
            r"
            ldi r1, 6
            ldi r2, 7
            mul r3, r1, r2
            halt
        ",
        );
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(3)), 42);
        assert_eq!(cpu.instructions(), 4);
    }

    #[test]
    fn loop_with_branches() {
        // Sum 1..=10 into r2.
        let (cpu, stop) = run_asm(
            r"
            ldi r1, 10
            ldi r2, 0
        loop:
            add r2, r2, r1
            subi r1, r1, 1
            cmpi r1, 0
            bgt loop
            halt
        ",
        );
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(2)), 55);
    }

    #[test]
    fn memory_load_store() {
        let (cpu, stop) = run_asm(
            r"
            ldi r1, 123
            st  r0, r1, 200
            ld  r2, r0, 200
            halt
        ",
        );
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(2)), 123);
        assert_eq!(cpu.memory().read_raw(200).unwrap(), 123);
    }

    #[test]
    fn call_and_ret() {
        let (cpu, stop) = run_asm(
            r"
            ldi r1, 5
            call double
            halt
        double:
            add r1, r1, r1
            ret
        ",
        );
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(1)), 10);
    }

    #[test]
    fn push_pop_stack() {
        let (cpu, stop) = run_asm(
            r"
            ldi r1, 11
            ldi r2, 22
            push r1
            push r2
            pop r3
            pop r4
            halt
        ",
        );
        assert_eq!(stop, StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(3)), 22);
        assert_eq!(cpu.reg(Reg::new(4)), 11);
    }

    #[test]
    fn io_ports_roundtrip() {
        let image = assemble(
            r"
            in  r1, 0
            addi r1, r1, 1
            out 2, r1
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        cpu.set_in_port(0, 41);
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.out_port(2), 42);
    }

    #[test]
    fn sync_reports_iterations() {
        let image = assemble(
            r"
        loop:
            sync 7
            br loop
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        assert_eq!(
            cpu.run(100),
            StopReason::Sync {
                tag: 7,
                iteration: 1
            }
        );
        assert_eq!(
            cpu.run(100),
            StopReason::Sync {
                tag: 7,
                iteration: 2
            }
        );
        assert_eq!(cpu.iterations(), 2);
    }

    #[test]
    fn trap_raises_assertion() {
        let (_, stop) = run_asm("trap 9");
        assert_eq!(stop, StopReason::Detected(Detection::Assertion(9)));
    }

    #[test]
    fn divide_by_zero_detected() {
        let (_, stop) = run_asm(
            r"
            ldi r1, 4
            ldi r2, 0
            div r3, r1, r2
            halt
        ",
        );
        assert_eq!(stop, StopReason::Detected(Detection::DivideByZero));
    }

    #[test]
    fn overflow_detected_and_maskable() {
        let src = r"
            lui r1, 0x7FFF
            ori r1, r1, 0xFFFF
            addi r1, r1, 1
            halt
        ";
        let (_, stop) = run_asm(src);
        assert_eq!(stop, StopReason::Detected(Detection::Overflow));

        let image = assemble(src).unwrap();
        let mut cfg = CpuConfig::default();
        cfg.edm.overflow = false;
        let mut cpu = Cpu::new(cfg);
        cpu.load_image(&image).unwrap();
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(1)), 0x8000_0000);
    }

    #[test]
    fn store_to_code_is_access_violation() {
        let (_, stop) = run_asm(
            r"
            ldi r1, 1
            st  r0, r1, 0
            halt
        ",
        );
        assert_eq!(stop, StopReason::Detected(Detection::AccessViolation));
    }

    #[test]
    fn wild_jump_is_control_flow_error() {
        let (_, stop) = run_asm(
            r"
            ldi r1, 30000
            jr r1
            halt
        ",
        );
        assert_eq!(stop, StopReason::Detected(Detection::ControlFlow));
    }

    #[test]
    fn illegal_opcode_detected() {
        let image = assemble("halt").unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        // Overwrite the halt with an unassigned opcode; widen the code
        // segment so control-flow checking does not fire first.
        cpu.memory_mut().write_raw(0, 0xEE00_0000).unwrap();
        assert_eq!(cpu.run(10), StopReason::Detected(Detection::IllegalOpcode));
    }

    #[test]
    fn watchdog_times_out_infinite_loop() {
        let image = assemble("loop: br loop").unwrap();
        let cfg = CpuConfig {
            watchdog_cycles: Some(500),
            ..CpuConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        cpu.load_image(&image).unwrap();
        assert_eq!(cpu.run(u64::MAX), StopReason::Timeout);
    }

    #[test]
    fn instr_limit_stops_run() {
        let image = assemble("loop: br loop").unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        assert_eq!(cpu.run(10), StopReason::InstrLimit);
    }

    #[test]
    fn pc_breakpoint_halts_before_execution() {
        use scanchain::DebugCondition;
        let image = assemble(
            r"
            ldi r1, 1
            ldi r2, 2
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        cpu.debug_unit_mut().arm(DebugCondition::PcEquals(1));
        match cpu.run(100) {
            StopReason::DebugEvent(ev) => {
                assert_eq!(ev.condition, DebugCondition::PcEquals(1));
            }
            other => panic!("expected debug event, got {other:?}"),
        }
        // r2 not yet written.
        assert_eq!(cpu.reg(Reg::new(2)), 0);
        // Resume after clearing the breakpoint.
        cpu.debug_unit_mut().disarm_all();
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(2)), 2);
    }

    #[test]
    fn reset_preserves_memory_but_clears_state() {
        let image = assemble(
            r"
            ldi r1, 5
            st  r0, r1, 100
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        cpu.run(100);
        cpu.reset();
        assert_eq!(cpu.reg(Reg::new(1)), 0);
        assert_eq!(cpu.pc(), 0);
        assert!(!cpu.is_halted());
        assert_eq!(cpu.memory().read_raw(100).unwrap(), 5);
        // Re-runs identically after reset.
        assert_eq!(cpu.run(100), StopReason::Halted);
        assert_eq!(cpu.reg(Reg::new(1)), 5);
    }

    #[test]
    fn reset_restores_configured_edm_mask() {
        // A fault injected into the PSW scan cell (here: everything off)
        // must not survive the next experiment's reset, or it would
        // contaminate the rest of the campaign and the golden run.
        let mut cpu = Cpu::new(CpuConfig::default());
        let configured = cpu.edm();
        cpu.set_edm(crate::edm::EdmSet::all_off());
        cpu.reset();
        assert_eq!(cpu.edm(), configured);
    }

    #[test]
    fn step_logged_records_accesses() {
        let image = assemble(
            r"
            ldi r1, 3
            st  r0, r1, 50
            ld  r2, r0, 50
            halt
        ",
        )
        .unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        let mut log = AccessLog::default();

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.reg_writes, vec![Reg::new(1)]);

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.mem_writes, vec![50]);
        assert!(log.reg_reads.contains(&Reg::new(1)));

        assert!(cpu.step_logged(&mut log).is_none());
        assert_eq!(log.mem_reads, vec![50]);
        assert_eq!(log.reg_writes, vec![Reg::new(2)]);
    }

    #[test]
    fn state_vector_changes_with_execution() {
        let image = assemble("ldi r1, 9\nhalt").unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        let before = cpu.state_vector();
        cpu.run(10);
        let after = cpu.state_vector();
        assert_ne!(before, after);
        assert_eq!(after.regs[1], 9);
        assert_eq!(before.to_words().len(), after.to_words().len());
    }

    #[test]
    fn deterministic_execution() {
        let src = r"
            ldi r1, 100
            ldi r2, 0
        loop:
            add r2, r2, r1
            subi r1, r1, 1
            cmpi r1, 0
            bgt loop
            halt
        ";
        let (cpu1, _) = run_asm(src);
        let (cpu2, _) = run_asm(src);
        assert_eq!(cpu1.state_vector(), cpu2.state_vector());
        assert_eq!(cpu1.cycles(), cpu2.cycles());
    }
}
