//! Error detection mechanisms (EDMs) of the target CPU.
//!
//! The analysis phase of GOOFI classifies "errors that are detected by the
//! error detection mechanisms of the target system … further classified into
//! errors detected by each of the various mechanisms" (paper §3.4). The
//! [`Detection`] enum is that per-mechanism classification; [`EdmSet`] is the
//! PSW-style mask that enables/disables individual mechanisms, so campaigns
//! can measure the contribution of each one (the ablation experiments).

use std::fmt;

/// An error detected by one of the CPU's mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Detection {
    /// Parity error in the instruction cache.
    ParityI,
    /// Parity error in the data cache.
    ParityD,
    /// Unassigned opcode reached the decoder.
    IllegalOpcode,
    /// Out-of-range access or store into the protected code segment.
    AccessViolation,
    /// Branch/call/fetch target outside the code segment.
    ControlFlow,
    /// Signed arithmetic overflow.
    Overflow,
    /// Integer division by zero.
    DivideByZero,
    /// Software trap: an executable assertion in the workload fired with
    /// this assertion id.
    Assertion(u16),
}

impl Detection {
    /// Stable mechanism name used in database logs and report tables.
    pub fn mechanism(&self) -> &'static str {
        match self {
            Detection::ParityI => "parity_icache",
            Detection::ParityD => "parity_dcache",
            Detection::IllegalOpcode => "illegal_opcode",
            Detection::AccessViolation => "access_violation",
            Detection::ControlFlow => "control_flow",
            Detection::Overflow => "overflow",
            Detection::DivideByZero => "divide_by_zero",
            Detection::Assertion(_) => "assertion",
        }
    }

    /// Whether this is a hardware mechanism (as opposed to a software
    /// assertion embedded in the workload).
    pub fn is_hardware(&self) -> bool {
        !matches!(self, Detection::Assertion(_))
    }

    /// Encodes to a compact code for the scan-visible status register.
    pub fn encode(&self) -> u32 {
        match self {
            Detection::ParityI => 1,
            Detection::ParityD => 2,
            Detection::IllegalOpcode => 3,
            Detection::AccessViolation => 4,
            Detection::ControlFlow => 5,
            Detection::Overflow => 6,
            Detection::DivideByZero => 7,
            Detection::Assertion(id) => 8 | ((*id as u32) << 8),
        }
    }

    /// Decodes a status-register value; 0 means "no detection".
    pub fn decode(code: u32) -> Option<Detection> {
        match code & 0xFF {
            1 => Some(Detection::ParityI),
            2 => Some(Detection::ParityD),
            3 => Some(Detection::IllegalOpcode),
            4 => Some(Detection::AccessViolation),
            5 => Some(Detection::ControlFlow),
            6 => Some(Detection::Overflow),
            7 => Some(Detection::DivideByZero),
            8 => Some(Detection::Assertion((code >> 8) as u16)),
            _ => None,
        }
    }
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detection::Assertion(id) => write!(f, "assertion({id})"),
            other => f.write_str(other.mechanism()),
        }
    }
}

/// Enable mask for the individual mechanisms (the CPU's PSW EDM field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdmSet {
    /// Instruction-cache parity checking.
    pub parity_i: bool,
    /// Data-cache parity checking.
    pub parity_d: bool,
    /// Illegal-opcode detection (disabled: illegal words execute as NOP).
    pub illegal_opcode: bool,
    /// Memory access violation detection (disabled: reads return 0, writes
    /// are dropped).
    pub access_violation: bool,
    /// Control-flow checking of branch/call/fetch targets.
    pub control_flow: bool,
    /// Signed-overflow trap (disabled: wrapping arithmetic).
    pub overflow: bool,
}

impl Default for EdmSet {
    /// All mechanisms enabled — the Thor RD production configuration.
    fn default() -> Self {
        EdmSet::all_on()
    }
}

impl EdmSet {
    /// Every mechanism enabled.
    pub fn all_on() -> Self {
        EdmSet {
            parity_i: true,
            parity_d: true,
            illegal_opcode: true,
            access_violation: true,
            control_flow: true,
            overflow: true,
        }
    }

    /// Every mechanism disabled (bare CPU; assertions still fire).
    pub fn all_off() -> Self {
        EdmSet {
            parity_i: false,
            parity_d: false,
            illegal_opcode: false,
            access_violation: false,
            control_flow: false,
            overflow: false,
        }
    }

    /// Whether a given detection is enabled under this mask.
    pub fn allows(&self, d: Detection) -> bool {
        match d {
            Detection::ParityI => self.parity_i,
            Detection::ParityD => self.parity_d,
            Detection::IllegalOpcode => self.illegal_opcode,
            Detection::AccessViolation => self.access_violation,
            Detection::ControlFlow => self.control_flow,
            Detection::Overflow => self.overflow,
            // Divide-by-zero and assertions cannot be masked.
            Detection::DivideByZero | Detection::Assertion(_) => true,
        }
    }

    /// Packs the mask into the low bits of a PSW word.
    pub fn to_bits(self) -> u8 {
        (self.parity_i as u8)
            | (self.parity_d as u8) << 1
            | (self.illegal_opcode as u8) << 2
            | (self.access_violation as u8) << 3
            | (self.control_flow as u8) << 4
            | (self.overflow as u8) << 5
    }

    /// Unpacks a PSW word.
    pub fn from_bits(bits: u8) -> Self {
        EdmSet {
            parity_i: bits & 1 != 0,
            parity_d: bits & 2 != 0,
            illegal_opcode: bits & 4 != 0,
            access_violation: bits & 8 != 0,
            control_flow: bits & 16 != 0,
            overflow: bits & 32 != 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for d in [
            Detection::ParityI,
            Detection::ParityD,
            Detection::IllegalOpcode,
            Detection::AccessViolation,
            Detection::ControlFlow,
            Detection::Overflow,
            Detection::DivideByZero,
            Detection::Assertion(0),
            Detection::Assertion(513),
        ] {
            assert_eq!(Detection::decode(d.encode()), Some(d), "{d:?}");
        }
        assert_eq!(Detection::decode(0), None);
    }

    #[test]
    fn mechanism_names_are_stable() {
        assert_eq!(Detection::ParityI.mechanism(), "parity_icache");
        assert_eq!(Detection::Assertion(7).mechanism(), "assertion");
        assert_eq!(Detection::Assertion(7).to_string(), "assertion(7)");
    }

    #[test]
    fn hardware_vs_software() {
        assert!(Detection::ParityD.is_hardware());
        assert!(!Detection::Assertion(1).is_hardware());
    }

    #[test]
    fn edm_bits_roundtrip() {
        for bits in 0..64u8 {
            assert_eq!(EdmSet::from_bits(bits).to_bits(), bits);
        }
    }

    #[test]
    fn default_allows_everything() {
        let s = EdmSet::default();
        for d in [
            Detection::ParityI,
            Detection::AccessViolation,
            Detection::Overflow,
        ] {
            assert!(s.allows(d));
        }
    }

    #[test]
    fn all_off_still_allows_unmaskables() {
        let s = EdmSet::all_off();
        assert!(!s.allows(Detection::ParityI));
        assert!(!s.allows(Detection::Overflow));
        assert!(s.allows(Detection::DivideByZero));
        assert!(s.allows(Detection::Assertion(3)));
    }
}
