//! Instruction set architecture: opcodes, registers, encode/decode.
//!
//! Instructions are 32-bit words:
//!
//! ```text
//!  31      24 23  20 19  16 15  12 11           0
//! +----------+------+------+------+--------------+
//! |  opcode  |  rd  | rs1  | rs2  |   (unused)   |   register form
//! +----------+------+------+------+--------------+
//! |  opcode  |  rd  | rs1  |      imm16          |   immediate form
//! +----------+------+------+---------------------+
//! ```
//!
//! Immediate-form instructions carry a signed 16-bit immediate in the low 16
//! bits (so `rs2` is not available to them). The encoding is deliberately
//! sparse: most opcode bytes are unassigned, so that a bit flip in the opcode
//! field of a latched instruction frequently produces an *illegal opcode*
//! detection — matching the behaviour fault-injection studies observe on
//! real instruction sets.

use std::fmt;

/// A general-purpose register, `r0`..`r15`.
///
/// By software convention `r14` is the stack pointer and `r15` the link
/// register; the hardware treats all sixteen identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;
    /// Stack pointer alias (`r14`).
    pub const SP: Reg = Reg(14);
    /// Link register alias (`r15`).
    pub const LR: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// The register index, 0..16.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// All registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Operation codes. The discriminant is the encoded opcode byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    Nop = 0x00,
    Halt = 0x01,
    // Register ALU.
    Add = 0x10,
    Sub = 0x11,
    Mul = 0x12,
    Div = 0x13,
    And = 0x14,
    Or = 0x15,
    Xor = 0x16,
    Shl = 0x17,
    Shr = 0x18,
    Asr = 0x19,
    Cmp = 0x1A,
    Mov = 0x1B,
    // Immediate ALU.
    Addi = 0x20,
    Subi = 0x21,
    Muli = 0x22,
    Andi = 0x23,
    Ori = 0x24,
    Xori = 0x25,
    Shli = 0x26,
    Shri = 0x27,
    Cmpi = 0x28,
    Ldi = 0x29,
    Lui = 0x2A,
    // Memory.
    Ld = 0x30,
    St = 0x31,
    Ldx = 0x32,
    Stx = 0x33,
    Push = 0x34,
    Pop = 0x35,
    // Control flow.
    Br = 0x40,
    Beq = 0x41,
    Bne = 0x42,
    Blt = 0x43,
    Bge = 0x44,
    Bgt = 0x45,
    Ble = 0x46,
    Call = 0x47,
    Ret = 0x48,
    Jr = 0x49,
    // I/O and system.
    In = 0x50,
    Out = 0x51,
    Sync = 0x52,
    Trap = 0x53,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x00 => Nop,
            0x01 => Halt,
            0x10 => Add,
            0x11 => Sub,
            0x12 => Mul,
            0x13 => Div,
            0x14 => And,
            0x15 => Or,
            0x16 => Xor,
            0x17 => Shl,
            0x18 => Shr,
            0x19 => Asr,
            0x1A => Cmp,
            0x1B => Mov,
            0x20 => Addi,
            0x21 => Subi,
            0x22 => Muli,
            0x23 => Andi,
            0x24 => Ori,
            0x25 => Xori,
            0x26 => Shli,
            0x27 => Shri,
            0x28 => Cmpi,
            0x29 => Ldi,
            0x2A => Lui,
            0x30 => Ld,
            0x31 => St,
            0x32 => Ldx,
            0x33 => Stx,
            0x34 => Push,
            0x35 => Pop,
            0x40 => Br,
            0x41 => Beq,
            0x42 => Bne,
            0x43 => Blt,
            0x44 => Bge,
            0x45 => Bgt,
            0x46 => Ble,
            0x47 => Call,
            0x48 => Ret,
            0x49 => Jr,
            0x50 => In,
            0x51 => Out,
            0x52 => Sync,
            0x53 => Trap,
            _ => return None,
        })
    }

    /// Mnemonic in lower case, as accepted by the assembler.
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            Nop => "nop",
            Halt => "halt",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Asr => "asr",
            Cmp => "cmp",
            Mov => "mov",
            Addi => "addi",
            Subi => "subi",
            Muli => "muli",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Shli => "shli",
            Shri => "shri",
            Cmpi => "cmpi",
            Ldi => "ldi",
            Lui => "lui",
            Ld => "ld",
            St => "st",
            Ldx => "ldx",
            Stx => "stx",
            Push => "push",
            Pop => "pop",
            Br => "br",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bgt => "bgt",
            Ble => "ble",
            Call => "call",
            Ret => "ret",
            Jr => "jr",
            In => "in",
            Out => "out",
            Sync => "sync",
            Trap => "trap",
        }
    }

    /// All defined opcodes.
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Nop, Halt, Add, Sub, Mul, Div, And, Or, Xor, Shl, Shr, Asr, Cmp, Mov, Addi, Subi, Muli,
            Andi, Ori, Xori, Shli, Shri, Cmpi, Ldi, Lui, Ld, St, Ldx, Stx, Push, Pop, Br, Beq, Bne,
            Blt, Bge, Bgt, Ble, Call, Ret, Jr, In, Out, Sync, Trap,
        ]
    }
}

/// A decoded instruction.
///
/// `R`-form carries `rd, rs1, rs2`; `I`-form carries `rd, rs1, imm16`.
/// Semantics of the fields depend on the opcode — see [`Instr`] helper
/// constructors and the CPU's execute step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Register-register form.
    R {
        /// Operation.
        op: Opcode,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// Immediate form.
    I {
        /// Operation.
        op: Opcode,
        /// Destination register.
        rd: Reg,
        /// Source register (base address for loads/stores).
        rs1: Reg,
        /// Signed 16-bit immediate.
        imm: i16,
    },
}

impl Instr {
    /// The instruction's opcode.
    pub fn opcode(self) -> Opcode {
        match self {
            Instr::R { op, .. } | Instr::I { op, .. } => op,
        }
    }

    /// Builds a register-form instruction.
    pub fn r(op: Opcode, rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
        Instr::R { op, rd, rs1, rs2 }
    }

    /// Builds an immediate-form instruction.
    pub fn i(op: Opcode, rd: Reg, rs1: Reg, imm: i16) -> Instr {
        Instr::I { op, rd, rs1, imm }
    }

    /// Whether the opcode uses the immediate form.
    pub fn uses_imm(op: Opcode) -> bool {
        use Opcode::*;
        matches!(
            op,
            Addi | Subi
                | Muli
                | Andi
                | Ori
                | Xori
                | Shli
                | Shri
                | Cmpi
                | Ldi
                | Lui
                | Ld
                | St
                | Br
                | Beq
                | Bne
                | Blt
                | Bge
                | Bgt
                | Ble
                | Call
                | In
                | Out
                | Sync
                | Trap
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match *self {
            Instr::R { op, rd, rs1, rs2 } => match op {
                Nop | Halt | Ret => write!(f, "{}", op.mnemonic()),
                Mov => write!(f, "mov {rd}, {rs1}"),
                Cmp => write!(f, "cmp {rs1}, {rs2}"),
                Push => write!(f, "push {rs1}"),
                Pop => write!(f, "pop {rd}"),
                Jr => write!(f, "jr {rs1}"),
                Ldx => write!(f, "ldx {rd}, {rs1}, {rs2}"),
                Stx => write!(f, "stx {rs1}, {rs2}, {rd}"),
                _ => write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            },
            Instr::I { op, rd, rs1, imm } => match op {
                Ldi | Lui => write!(f, "{} {rd}, {imm}", op.mnemonic()),
                Cmpi => write!(f, "cmpi {rs1}, {imm}"),
                Ld => write!(f, "ld {rd}, {rs1}, {imm}"),
                St => write!(f, "st {rs1}, {rd}, {imm}"),
                Br | Call => write!(f, "{} {imm}", op.mnemonic()),
                Beq | Bne | Blt | Bge | Bgt | Ble => write!(f, "{} {imm}", op.mnemonic()),
                In => write!(f, "in {rd}, {imm}"),
                Out => write!(f, "out {imm}, {rs1}"),
                Sync | Trap => write!(f, "{} {imm}", op.mnemonic()),
                _ => write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic()),
            },
        }
    }
}

/// Failure to decode an instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction to its 32-bit word.
pub fn encode(instr: Instr) -> u32 {
    match instr {
        Instr::R { op, rd, rs1, rs2 } => {
            ((op as u32) << 24)
                | ((rd.index() as u32) << 20)
                | ((rs1.index() as u32) << 16)
                | ((rs2.index() as u32) << 12)
        }
        Instr::I { op, rd, rs1, imm } => {
            ((op as u32) << 24)
                | ((rd.index() as u32) << 20)
                | ((rs1.index() as u32) << 16)
                | (imm as u16 as u32)
        }
    }
}

/// Decodes a 32-bit word to an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] when the opcode byte is unassigned — the hardware
/// *illegal opcode* detection.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let op = Opcode::from_byte((word >> 24) as u8).ok_or(DecodeError { word })?;
    let rd = Reg::new(((word >> 20) & 0xF) as u8);
    let rs1 = Reg::new(((word >> 16) & 0xF) as u8);
    if Instr::uses_imm(op) {
        Ok(Instr::I {
            op,
            rd,
            rs1,
            imm: (word & 0xFFFF) as u16 as i16,
        })
    } else {
        let rs2 = Reg::new(((word >> 12) & 0xF) as u8);
        Ok(Instr::R { op, rd, rs1, rs2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_byte_roundtrip() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_byte(op as u8), Some(op), "{op:?}");
        }
    }

    #[test]
    fn unassigned_opcodes_do_not_decode() {
        for b in [0x02u8, 0x0F, 0x1C, 0x2B, 0x36, 0x4A, 0x54, 0x80, 0xFF] {
            assert_eq!(Opcode::from_byte(b), None, "{b:#x}");
            assert!(decode((b as u32) << 24).is_err());
        }
    }

    #[test]
    fn encode_decode_r_form() {
        let i = Instr::r(Opcode::Add, Reg::new(3), Reg::new(7), Reg::new(12));
        assert_eq!(decode(encode(i)).unwrap(), i);
    }

    #[test]
    fn encode_decode_i_form_negative_imm() {
        let i = Instr::i(Opcode::Ldi, Reg::new(5), Reg::new(0), -123);
        let w = encode(i);
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn all_opcodes_roundtrip_both_forms() {
        for &op in Opcode::all() {
            let i = if Instr::uses_imm(op) {
                Instr::i(op, Reg::new(1), Reg::new(2), -42)
            } else {
                Instr::r(op, Reg::new(1), Reg::new(2), Reg::new(3))
            };
            assert_eq!(decode(encode(i)).unwrap(), i, "{op:?}");
        }
    }

    #[test]
    fn reg_aliases() {
        assert_eq!(Reg::SP.index(), 14);
        assert_eq!(Reg::LR.index(), 15);
        assert_eq!(Reg::all().count(), 16);
        assert_eq!(Reg::new(9).to_string(), "r9");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_validated() {
        Reg::new(16);
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::r(Opcode::Add, Reg::new(1), Reg::new(2), Reg::new(3)).to_string(),
            "add r1, r2, r3"
        );
        assert_eq!(
            Instr::i(Opcode::Ldi, Reg::new(4), Reg::new(0), 7).to_string(),
            "ldi r4, 7"
        );
        assert_eq!(
            Instr::r(Opcode::Halt, Reg::new(0), Reg::new(0), Reg::new(0)).to_string(),
            "halt"
        );
    }
}
