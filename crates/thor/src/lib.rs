//! A Thor-RD-like microprocessor simulator — the GOOFI target system.
//!
//! The GOOFI paper (DSN 2003) demonstrates scan-chain implemented fault
//! injection (SCIFI) on the Thor RD, a radiation-hardened CPU from SAAB
//! Ericsson Space with parity-protected instruction and data caches and
//! IEEE 1149.1 test logic giving access to "almost all of the state elements"
//! of the chip. The real chip (and its proprietary ISA) is not available, so
//! this crate provides a behaviourally equivalent substitute:
//!
//! * a 32-bit load/store ISA with an assembler ([`asm`]) so realistic
//!   workloads can be written;
//! * parity-protected direct-mapped instruction and data caches ([`cache`](Cache));
//! * a set of hardware error detection mechanisms ([`Detection`]): cache
//!   parity, illegal opcode, memory access violation, control-flow checking,
//!   arithmetic overflow, division by zero, and software (assertion) traps;
//! * internal, cache, boundary and debug scan chains exposing every state
//!   element, with the same read-only/writable split the paper describes
//!   ([`Cpu`] implements [`scanchain::ScanTarget`]);
//! * a debug-event unit (breakpoints via scan chains) and cycle-accounting
//!   watchdog, which provide GOOFI's fault triggers and termination
//!   conditions.
//!
//! # Quick start
//!
//! ```
//! use thor::{asm, Cpu, StopReason};
//!
//! let image = asm::assemble(r#"
//!         ldi  r1, 20
//!         ldi  r2, 22
//!         add  r3, r1, r2
//!         st   r0, r3, 100     ; mem[100] = r3
//!         halt
//! "#).unwrap();
//! let mut cpu = Cpu::new(Default::default());
//! cpu.load_image(&image).unwrap();
//! assert_eq!(cpu.run(1_000), StopReason::Halted);
//! assert_eq!(cpu.memory().read_raw(100).unwrap(), 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod cache;
mod cpu;
mod edm;
mod isa;
mod memory;
pub mod scan;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use cpu::{AccessLog, Cpu, CpuConfig, StateVector, StopReason, PORT_COUNT};
pub use edm::{Detection, EdmSet};
pub use isa::{decode, encode, DecodeError, Instr, Opcode, Reg};
pub use memory::{Memory, MemoryError, PAGE_WORDS};
pub use scan::ChainSet;
