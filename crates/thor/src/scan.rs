//! Scan-chain exposure of the CPU state ([`scanchain::ScanTarget`] impl).
//!
//! Mirrors the Thor RD's test logic: the scan chains give access to "almost
//! all of the state elements" of the processor (paper §1), with some
//! locations read-only ("can therefore only be used to observe the state of
//! the microprocessor", §3.1). Five chains are exposed:
//!
//! | chain      | contents                                             |
//! |------------|------------------------------------------------------|
//! | `internal` | PC, FLAGS, IR, MAR, MDR, R0–R15, PSW (+ RO status)   |
//! | `icache`   | valid/tag/data/parity bits of every I-cache line     |
//! | `dcache`   | valid/tag/data/parity bits of every D-cache line     |
//! | `boundary` | input pins (writable) and output pins (observe-only) |
//! | `debug`    | debug-unit condition slots (+ RO hit/counters)       |
//!
//! Main memory is deliberately *not* scannable — exactly like the real
//! target, where memory faults are the domain of pre-runtime SWIFI while
//! SCIFI reaches the microarchitectural state (the basis of experiment E2).

use crate::cpu::{Cpu, PORT_COUNT};
use crate::edm::EdmSet;
use crate::isa::Reg;
use scanchain::{BitVec, CellAccess, ChainLayout, DebugUnit, ScanError, ScanTarget};

/// Name of the internal (register/latch) chain.
pub const INTERNAL: &str = "internal";
/// Name of the instruction-cache chain.
pub const ICACHE: &str = "icache";
/// Name of the data-cache chain.
pub const DCACHE: &str = "dcache";
/// Name of the boundary (pin) chain.
pub const BOUNDARY: &str = "boundary";
/// Name of the debug-unit chain.
pub const DEBUG: &str = "debug";

/// The five chain layouts of a CPU instance (geometry-dependent).
#[derive(Debug, Clone)]
pub struct ChainSet {
    internal: ChainLayout,
    icache: ChainLayout,
    dcache: ChainLayout,
    boundary: ChainLayout,
    debug: ChainLayout,
}

impl ChainSet {
    /// Builds the chain layouts for the given cache geometries.
    pub fn new(
        icache_lines: usize,
        icache_tag_bits: usize,
        dcache_lines: usize,
        dcache_tag_bits: usize,
    ) -> Self {
        let internal = ChainLayout::builder(INTERNAL)
            .cell("PC", 32, CellAccess::ReadWrite)
            .cell("FLAGS", 4, CellAccess::ReadWrite)
            .cell("IR", 32, CellAccess::ReadWrite)
            .cell("MAR", 32, CellAccess::ReadWrite)
            .cell("MDR", 32, CellAccess::ReadWrite)
            .cell_array("R", Reg::COUNT, 32, CellAccess::ReadWrite)
            .cell("PSW", 6, CellAccess::ReadWrite)
            .cell("DETECT", 32, CellAccess::ReadOnly)
            .cell("ITER", 32, CellAccess::ReadOnly)
            .cell("HALTED", 1, CellAccess::ReadOnly)
            .build();
        let boundary = {
            let mut b = ChainLayout::builder(BOUNDARY);
            for i in 0..PORT_COUNT {
                b = b.cell(format!("IN_PORT{i}"), 32, CellAccess::ReadWrite);
            }
            for i in 0..PORT_COUNT {
                b = b.cell(format!("OUT_PORT{i}"), 32, CellAccess::ReadOnly);
            }
            b.cell("ERROR_PIN", 1, CellAccess::ReadOnly)
                .cell("HALT_PIN", 1, CellAccess::ReadOnly)
                .build()
        };
        ChainSet {
            internal,
            icache: cache_layout(ICACHE, icache_lines, icache_tag_bits),
            dcache: cache_layout(DCACHE, dcache_lines, dcache_tag_bits),
            boundary,
            debug: DebugUnit::chain_layout(),
        }
    }

    /// All chain names in SCAN_N index order.
    pub fn names() -> [&'static str; 5] {
        [INTERNAL, ICACHE, DCACHE, BOUNDARY, DEBUG]
    }

    /// Layout by chain name.
    pub fn by_name(&self, name: &str) -> Option<&ChainLayout> {
        match name {
            INTERNAL => Some(&self.internal),
            ICACHE => Some(&self.icache),
            DCACHE => Some(&self.dcache),
            BOUNDARY => Some(&self.boundary),
            DEBUG => Some(&self.debug),
            _ => None,
        }
    }
}

fn cache_layout(name: &str, lines: usize, tag_bits: usize) -> ChainLayout {
    let mut b = ChainLayout::builder(name);
    for i in 0..lines {
        b = b
            .cell(format!("L{i}.VALID"), 1, CellAccess::ReadWrite)
            .cell(format!("L{i}.TAG"), tag_bits, CellAccess::ReadWrite)
            .cell(format!("L{i}.DATA"), 32, CellAccess::ReadWrite)
            .cell(format!("L{i}.PAR"), 1, CellAccess::ReadWrite);
    }
    b.build()
}

impl Cpu {
    /// The CPU's scan-chain layouts.
    pub fn chains(&self) -> &ChainSet {
        &self.chains
    }

    fn capture_internal(&self) -> Result<BitVec, ScanError> {
        let l = &self.chains.internal;
        let mut bits = BitVec::zeros(l.total_bits());
        l.write_cell(&mut bits, "PC", self.pc as u64)?;
        l.write_cell(&mut bits, "FLAGS", self.flags as u64)?;
        l.write_cell(&mut bits, "IR", self.ir as u64)?;
        l.write_cell(&mut bits, "MAR", self.mar as u64)?;
        l.write_cell(&mut bits, "MDR", self.mdr as u64)?;
        for r in Reg::all() {
            l.write_cell(
                &mut bits,
                &format!("R{}", r.index()),
                self.regs[r.index()] as u64,
            )?;
        }
        l.write_cell(&mut bits, "PSW", self.edm.to_bits() as u64)?;
        l.write_cell(
            &mut bits,
            "DETECT",
            self.detection.map_or(0, |d| d.encode()) as u64,
        )?;
        l.write_cell(&mut bits, "ITER", self.iterations & 0xFFFF_FFFF)?;
        l.write_cell(&mut bits, "HALTED", self.halted as u64)?;
        Ok(bits)
    }

    fn update_internal(&mut self, bits: &BitVec) -> Result<(), ScanError> {
        let l = self.chains.internal.clone();
        self.pc = l.read_cell(bits, "PC")? as u32;
        self.flags = l.read_cell(bits, "FLAGS")? as u8;
        self.ir = l.read_cell(bits, "IR")? as u32;
        self.mar = l.read_cell(bits, "MAR")? as u32;
        self.mdr = l.read_cell(bits, "MDR")? as u32;
        for i in 0..Reg::COUNT {
            self.regs[i] = l.read_cell(bits, &format!("R{i}"))? as u32;
        }
        let edm = EdmSet::from_bits(l.read_cell(bits, "PSW")? as u8);
        self.set_edm(edm);
        // DETECT / ITER / HALTED are read-only: ignored on update.
        Ok(())
    }

    fn capture_cache(&self, which: &str) -> BitVec {
        let (cache, layout) = if which == ICACHE {
            (&self.icache, &self.chains.icache)
        } else {
            (&self.dcache, &self.chains.dcache)
        };
        let tag_bits = cache.tag_bits();
        let line_width = 1 + tag_bits + 32 + 1;
        let mut bits = BitVec::zeros(layout.total_bits());
        for i in 0..cache.line_count() {
            let line = cache.line(i);
            let off = i * line_width;
            bits.set(off, line.valid);
            bits.write_range(off + 1, tag_bits, line.tag as u64);
            bits.write_range(off + 1 + tag_bits, 32, line.data as u64);
            bits.set(off + 1 + tag_bits + 32, line.parity);
        }
        bits
    }

    fn update_cache(&mut self, which: &str, bits: &BitVec) {
        let cache = if which == ICACHE {
            &mut self.icache
        } else {
            &mut self.dcache
        };
        let tag_bits = cache.tag_bits();
        let line_width = 1 + tag_bits + 32 + 1;
        for i in 0..cache.line_count() {
            let off = i * line_width;
            let line = cache.line_mut(i);
            line.valid = bits.get(off);
            line.tag = bits.read_range(off + 1, tag_bits) as u32;
            line.data = bits.read_range(off + 1 + tag_bits, 32) as u32;
            line.parity = bits.get(off + 1 + tag_bits + 32);
        }
    }

    fn capture_boundary(&self) -> Result<BitVec, ScanError> {
        let l = &self.chains.boundary;
        let mut bits = BitVec::zeros(l.total_bits());
        for i in 0..PORT_COUNT {
            l.write_cell(&mut bits, &format!("IN_PORT{i}"), self.in_ports[i] as u64)?;
            l.write_cell(&mut bits, &format!("OUT_PORT{i}"), self.out_ports[i] as u64)?;
        }
        l.write_cell(&mut bits, "ERROR_PIN", self.detection.is_some() as u64)?;
        l.write_cell(&mut bits, "HALT_PIN", self.halted as u64)?;
        Ok(bits)
    }

    fn update_boundary(&mut self, bits: &BitVec) -> Result<(), ScanError> {
        let l = self.chains.boundary.clone();
        for i in 0..PORT_COUNT {
            self.in_ports[i] = l.read_cell(bits, &format!("IN_PORT{i}"))? as u32;
        }
        Ok(())
    }
}

impl ScanTarget for Cpu {
    fn chain_names(&self) -> Vec<String> {
        ChainSet::names().iter().map(|s| s.to_string()).collect()
    }

    fn chain_layout(&self, chain: &str) -> Option<&ChainLayout> {
        self.chains.by_name(chain)
    }

    fn capture_chain(&self, chain: &str) -> Result<BitVec, ScanError> {
        match chain {
            INTERNAL => self.capture_internal(),
            ICACHE | DCACHE => Ok(self.capture_cache(chain)),
            BOUNDARY => self.capture_boundary(),
            DEBUG => self.debug.capture(),
            _ => Err(ScanError::UnknownChain(chain.to_string())),
        }
    }

    fn update_chain(&mut self, chain: &str, bits: &BitVec) -> Result<(), ScanError> {
        let layout = self
            .chains
            .by_name(chain)
            .ok_or_else(|| ScanError::UnknownChain(chain.to_string()))?;
        if bits.len() != layout.total_bits() {
            return Err(ScanError::LengthMismatch {
                expected: layout.total_bits(),
                got: bits.len(),
            });
        }
        match chain {
            INTERNAL => self.update_internal(bits),
            ICACHE | DCACHE => {
                self.update_cache(chain, bits);
                Ok(())
            }
            BOUNDARY => self.update_boundary(bits),
            DEBUG => self.debug.update(bits),
            _ => Err(ScanError::UnknownChain(chain.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::{CpuConfig, StopReason};
    use crate::edm::Detection;
    use scanchain::TestCard;

    fn cpu_with(src: &str) -> Cpu {
        let image = assemble(src).unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&image).unwrap();
        cpu
    }

    #[test]
    fn chain_names_and_layouts_exist() {
        let cpu = Cpu::new(CpuConfig::default());
        for name in ChainSet::names() {
            assert!(cpu.chain_layout(name).is_some(), "{name}");
            let img = cpu.capture_chain(name).unwrap();
            assert_eq!(img.len(), cpu.chain_layout(name).unwrap().total_bits());
        }
        assert!(cpu.chain_layout("nope").is_none());
    }

    #[test]
    fn register_visible_and_writable_via_scan() {
        let mut cpu = cpu_with("ldi r3, 77\nhalt");
        cpu.run(10);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        assert_eq!(card.read_cell(INTERNAL, "R3").unwrap(), 77);
        card.write_cell(INTERNAL, "R5", 0xFEED).unwrap();
        assert_eq!(card.target().reg(Reg::new(5)), 0xFEED);
    }

    #[test]
    fn detect_cell_is_read_only_and_reflects_detection() {
        let mut cpu = cpu_with("trap 3");
        cpu.run(10);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let code = card.read_cell(INTERNAL, "DETECT").unwrap() as u32;
        assert_eq!(Detection::decode(code), Some(Detection::Assertion(3)));
        assert!(card.write_cell(INTERNAL, "DETECT", 0).is_err());
    }

    #[test]
    fn psw_write_disables_edm() {
        let cpu = cpu_with("halt");
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        card.write_cell(INTERNAL, "PSW", 0).unwrap();
        assert_eq!(card.target().edm(), EdmSet::all_off());
    }

    #[test]
    fn icache_fault_injected_via_scan_is_parity_detected() {
        // Program long enough that word 0 is refetched from cache: a loop.
        let mut cpu = cpu_with(
            r"
        loop:
            addi r1, r1, 1
            cmpi r1, 3
            blt loop
            halt
        ",
        );
        // Prime the cache.
        cpu.step();
        cpu.step();
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        // Flip a data bit of I-cache line 0 (holds the instruction at pc 0).
        card.flip_cell_bit(ICACHE, "L0.DATA", 5).unwrap();
        let mut cpu = card.into_target();
        assert_eq!(cpu.run(100), StopReason::Detected(Detection::ParityI));
    }

    #[test]
    fn dcache_fault_detected_on_next_load() {
        let mut cpu = cpu_with(
            r"
            ld r1, r0, 40
            ld r2, r0, 40
            halt
        ",
        );
        cpu.memory_mut().write_raw(40, 1234).unwrap();
        cpu.step(); // first load primes the D-cache
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        // line index = 40 % 32 = 8
        card.flip_cell_bit(DCACHE, "L8.DATA", 0).unwrap();
        let mut cpu = card.into_target();
        assert_eq!(cpu.run(100), StopReason::Detected(Detection::ParityD));
    }

    #[test]
    fn boundary_chain_reads_outputs_and_writes_inputs() {
        let mut cpu = cpu_with(
            r"
            in r1, 1
            out 0, r1
            halt
        ",
        );
        cpu.set_in_port(1, 99);
        cpu.run(10);
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        assert_eq!(card.read_cell(BOUNDARY, "OUT_PORT0").unwrap(), 99);
        assert_eq!(card.read_cell(BOUNDARY, "HALT_PIN").unwrap(), 1);
        card.write_cell(BOUNDARY, "IN_PORT2", 7).unwrap();
        assert!(card.write_cell(BOUNDARY, "OUT_PORT0", 0).is_err());
    }

    #[test]
    fn debug_chain_programs_breakpoints() {
        use scanchain::DebugCondition;
        let cpu = cpu_with("nop\nnop\nnop\nhalt");
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let layout = DebugUnit::chain_layout();
        let mut bits = card.read_chain(DEBUG).unwrap();
        layout.write_cell(&mut bits, "COND0.KIND", 1).unwrap(); // PcEquals
        layout.write_cell(&mut bits, "COND0.OPERAND", 2).unwrap();
        card.write_chain(DEBUG, &bits).unwrap();
        let mut cpu = card.into_target();
        match cpu.run(100) {
            StopReason::DebugEvent(ev) => {
                assert_eq!(ev.condition, DebugCondition::PcEquals(2));
            }
            other => panic!("expected breakpoint, got {other:?}"),
        }
    }

    #[test]
    fn pc_flip_via_scan_causes_control_flow_error() {
        let mut cpu = cpu_with("nop\nnop\nhalt");
        cpu.step();
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        // Set PC far outside the 3-word code segment.
        card.write_cell(INTERNAL, "PC", 0x4000).unwrap();
        let mut cpu = card.into_target();
        assert_eq!(cpu.run(100), StopReason::Detected(Detection::ControlFlow));
    }

    #[test]
    fn full_chain_write_roundtrip_preserves_state() {
        let mut cpu = cpu_with("ldi r1, 5\nldi r2, 6\nhalt");
        cpu.step();
        let before = cpu.state_vector();
        let mut card = TestCard::new(cpu);
        card.init().unwrap();
        let bits = card.read_chain(INTERNAL).unwrap();
        card.write_chain(INTERNAL, &bits).unwrap();
        assert_eq!(card.target().state_vector(), before);
    }
}
