//! Detailed ISA semantics: condition flags, signed comparisons across
//! overflow boundaries, masked-EDM fallback behaviour and cycle accounting.

use thor::{asm::assemble, Cpu, CpuConfig, Detection, EdmSet, Reg, StopReason};

fn run(src: &str) -> Cpu {
    run_with(src, CpuConfig::default())
}

fn run_with(src: &str, config: CpuConfig) -> Cpu {
    let image = assemble(src).expect("assemble");
    let mut cpu = Cpu::new(config);
    cpu.load_image(&image).unwrap();
    let stop = cpu.run(1_000_000);
    assert!(
        matches!(stop, StopReason::Halted | StopReason::Detected(_)),
        "unexpected stop {stop:?}"
    );
    cpu
}

fn no_overflow() -> CpuConfig {
    CpuConfig {
        edm: EdmSet {
            overflow: false,
            ..EdmSet::all_on()
        },
        ..CpuConfig::default()
    }
}

#[test]
fn signed_comparison_across_magnitudes() {
    // For each (a, b, expected_less) check blt takes the right arm.
    let cases: [(i32, i32, bool); 8] = [
        (1, 2, true),
        (2, 1, false),
        (-1, 1, true),
        (1, -1, false),
        (-5, -3, true),
        (i32::MIN + 1, i32::MAX, true),
        (i32::MAX, i32::MIN + 1, false),
        (0, 0, false),
    ];
    for (a, b, less) in cases {
        let src = format!(
            r"
            li r1, {a}
            li r2, {b}
            cmp r1, r2
            blt yes
            ldi r3, 0
            halt
        yes:
            ldi r3, 1
            halt
        ",
        );
        let cpu = run_with(&src, no_overflow());
        assert_eq!(cpu.reg(Reg::new(3)), less as u32, "{a} < {b}");
    }
}

#[test]
fn bgt_ble_bge_cover_equalities() {
    let triples = [(3, 3), (4, 3), (3, 4), (-2, 2)];
    for (a, b) in triples {
        let src = format!(
            r"
            li r1, {a}
            li r2, {b}
            ldi r4, 0
            cmp r1, r2
            ble le_label
            br after1
        le_label:
            ori r4, r4, 1
        after1:
            cmp r1, r2
            bge ge_label
            br after2
        ge_label:
            ori r4, r4, 2
        after2:
            cmp r1, r2
            bgt gt_label
            br done
        gt_label:
            ori r4, r4, 4
        done:
            halt
        ",
        );
        let cpu = run_with(&src, no_overflow());
        let flags = cpu.reg(Reg::new(4));
        assert_eq!(flags & 1 != 0, a <= b, "le for {a},{b}");
        assert_eq!(flags & 2 != 0, a >= b, "ge for {a},{b}");
        assert_eq!(flags & 4 != 0, a > b, "gt for {a},{b}");
    }
}

#[test]
fn zero_and_negative_flags_on_logic_ops() {
    let cpu = run(r"
        ldi r1, 5
        xor r2, r1, r1     ; zero result
        beq was_zero
        trap 1
    was_zero:
        li  r3, 0x80000000
        or  r4, r3, r3     ; negative result
        blt was_negative
        trap 2
    was_negative:
        halt
    ");
    assert!(cpu.detection().is_none());
}

#[test]
fn asr_vs_shr_semantics() {
    let cpu = run_with(
        r"
        li  r1, -8
        ldi r2, 2
        asr r3, r1, r2     ; arithmetic: -2
        shr r4, r1, r2     ; logical: large positive
        halt
    ",
        no_overflow(),
    );
    assert_eq!(cpu.reg(Reg::new(3)) as i32, -2);
    assert_eq!(cpu.reg(Reg::new(4)), 0xFFFF_FFF8u32 >> 2);
}

#[test]
fn division_semantics_signed() {
    let cpu = run(r"
        li  r1, -7
        ldi r2, 2
        div r3, r1, r2
        ldi r4, 7
        li  r5, -2
        div r6, r4, r5
        halt
    ");
    assert_eq!(cpu.reg(Reg::new(3)) as i32, -3); // trunc toward zero
    assert_eq!(cpu.reg(Reg::new(6)) as i32, -3);
}

#[test]
fn sub_overflow_detected_only_when_signed_overflow() {
    // i32::MIN - 1 overflows.
    let cpu = run(r"
        li  r1, 0x80000000
        subi r2, r1, 1
        halt
    ");
    assert_eq!(cpu.detection(), Some(Detection::Overflow));
    // Unsigned borrow alone (0 - 1) is not signed overflow.
    let cpu = run(r"
        ldi r1, 0
        subi r2, r1, 1
        halt
    ");
    assert_eq!(cpu.detection(), None);
    assert_eq!(cpu.reg(Reg::new(2)) as i32, -1);
}

#[test]
fn masked_illegal_opcode_executes_as_nop() {
    let image = assemble("nop\nnop\nhalt").unwrap();
    let mut cfg = CpuConfig::default();
    cfg.edm.illegal_opcode = false;
    let mut cpu = Cpu::new(cfg);
    cpu.load_image(&image).unwrap();
    cpu.memory_mut().write_raw(1, 0xEE00_0000).unwrap(); // unassigned opcode
    assert_eq!(cpu.run(100), StopReason::Halted);
    assert_eq!(cpu.instructions(), 3);
}

#[test]
fn masked_access_violation_reads_zero_and_drops_stores() {
    let mut cfg = CpuConfig::default();
    cfg.edm.access_violation = false;
    let cpu = run_with(
        r"
        li  r1, 0x7FFFFFFF     ; far out of range
        ldx r2, r1, r0         ; read -> 0
        ldi r3, 9
        stx r1, r0, r3         ; dropped store
        halt
    ",
        cfg,
    );
    assert_eq!(cpu.reg(Reg::new(2)), 0);
    assert!(cpu.detection().is_none());
}

#[test]
fn masked_control_flow_lets_execution_fall_into_data() {
    // With CFC off, a jump into the data segment executes data words; the
    // data word below decodes as an unassigned opcode, so the illegal
    // opcode mechanism catches it instead — a realistic EDM interplay.
    let mut cfg = CpuConfig::default();
    cfg.edm.control_flow = false;
    let cpu = run_with(
        r"
        li r1, data
        jr r1
        halt
    .data
    data:
        .word 0xEE000000
    ",
        cfg,
    );
    assert_eq!(cpu.detection(), Some(Detection::IllegalOpcode));
}

#[test]
fn cycle_accounting_distinguishes_hits_and_misses() {
    // A tight loop: first iteration misses the I-cache, later ones hit.
    let image = assemble(
        r"
        ldi r1, 100
    loop:
        subi r1, r1, 1
        cmpi r1, 0
        bgt loop
        halt
    ",
    )
    .unwrap();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.load_image(&image).unwrap();
    assert_eq!(cpu.run(1_000_000), StopReason::Halted);
    let stats = cpu.icache_stats();
    assert!(stats.misses <= 5, "misses {}", stats.misses);
    assert!(stats.hits > 250, "hits {}", stats.hits);
    // Cycles: roughly 1/instr + branch penalties, far below the
    // all-miss bound of ~4/instr.
    assert!(cpu.cycles() < cpu.instructions() * 3);
    assert!(cpu.cycles() > cpu.instructions());
}

#[test]
fn lui_ori_builds_full_constants() {
    let cpu = run(r"
        lui r1, 0xDEAD
        ori r1, r1, 0xBEEF
        halt
    ");
    assert_eq!(cpu.reg(Reg::new(1)), 0xDEAD_BEEF);
}

#[test]
fn nested_calls_preserve_lr_through_stack() {
    let cpu = run(r"
        call outer
        halt
    outer:
        push lr
        call inner
        pop lr
        addi r1, r1, 100
        ret
    inner:
        addi r1, r1, 1
        ret
    ");
    assert_eq!(cpu.reg(Reg::new(1)), 101);
}

#[test]
fn stack_pointer_starts_at_top_of_memory() {
    let cpu = Cpu::new(CpuConfig {
        mem_words: 4096,
        ..CpuConfig::default()
    });
    assert_eq!(cpu.reg(Reg::SP), 4095);
}
