//! Property-based tests for the CPU substrate.

use proptest::prelude::*;
use scanchain::{ScanTarget, TestCard};
use thor::{asm, decode, encode, Cpu, CpuConfig, Instr, Opcode, Reg, StopReason};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    let ops = Opcode::all().to_vec();
    (0..ops.len(), arb_reg(), arb_reg(), arb_reg(), any::<i16>()).prop_map(
        move |(i, rd, rs1, rs2, imm)| {
            let op = ops[i];
            if Instr::uses_imm(op) {
                Instr::i(op, rd, rs1, imm)
            } else {
                Instr::r(op, rd, rs1, rs2)
            }
        },
    )
}

proptest! {
    #[test]
    fn instruction_encode_decode_roundtrip(instr in arb_instr()) {
        prop_assert_eq!(decode(encode(instr)).unwrap(), instr);
    }

    #[test]
    fn decode_is_stable_under_reencoding(word: u32) {
        // Arbitrary words either fail to decode (illegal opcode) or decode
        // to an instruction whose canonical encoding decodes identically.
        if let Ok(instr) = decode(word) {
            prop_assert_eq!(decode(encode(instr)).unwrap(), instr);
        }
    }

    #[test]
    fn sorting_random_data_on_cpu(mut data in proptest::collection::vec(0u32..100_000, 2..24)) {
        // Generate a bubble-sort program over the given data.
        let n = data.len();
        let words: Vec<String> = data.iter().map(u32::to_string).collect();
        let src = format!(
            r"
        .equ N, {n}
                ldi r1, 0
                li  r3, arr
        outer:
                ldi r2, 0
        inner:
                ldx r4, r3, r2
                addi r5, r2, 1
                ldx r6, r3, r5
                cmp r4, r6
                ble noswap
                stx r3, r2, r6
                stx r3, r5, r4
        noswap:
                addi r2, r2, 1
                cmpi r2, N-1
                blt inner
                addi r1, r1, 1
                cmpi r1, N-1
                blt outer
                halt
        .data
        arr:    .word {words}
        ",
            n = n,
            words = words.join(", "),
        );
        let image = asm::assemble(&src).unwrap();
        let arr = image.label("arr").unwrap();
        let mut cpu = Cpu::new(CpuConfig {
            watchdog_cycles: Some(50_000_000),
            ..CpuConfig::default()
        });
        cpu.load_image(&image).unwrap();
        prop_assert_eq!(cpu.run(10_000_000), StopReason::Halted);
        let sorted = cpu.memory().read_block(arr, n).unwrap();
        data.sort_unstable();
        prop_assert_eq!(sorted, data);
    }

    #[test]
    fn register_scan_write_read_roundtrip(
        reg in 1u8..14,
        value: u32,
    ) {
        let mut card = TestCard::new(Cpu::new(CpuConfig::default()));
        card.init().unwrap();
        let cell = format!("R{reg}");
        card.write_cell("internal", &cell, value as u64).unwrap();
        prop_assert_eq!(card.read_cell("internal", &cell).unwrap(), value as u64);
        prop_assert_eq!(card.target().reg(Reg::new(reg)), value);
    }

    #[test]
    fn full_internal_chain_write_is_lossless_for_rw_cells(seed: u64) {
        let mut card = TestCard::new(Cpu::new(CpuConfig::default()));
        card.init().unwrap();
        let layout = card.target().chain_layout("internal").unwrap().clone();
        let mut x = seed | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let image = scanchain::BitVec::from_bits(
            (0..layout.total_bits()).map(|_| next() & 1 == 1),
        );
        card.write_chain("internal", &image).unwrap();
        let read_back = card.read_chain("internal").unwrap();
        for cell in layout.writable_cells() {
            for bit in cell.bit_range() {
                prop_assert_eq!(
                    read_back.get(bit),
                    image.get(bit),
                    "cell {} bit {}",
                    &cell.name,
                    bit
                );
            }
        }
    }

    #[test]
    fn execution_is_deterministic_under_any_inputs(
        inputs in proptest::collection::vec(any::<u32>(), 4),
    ) {
        let wl = workloads_source();
        let image = asm::assemble(&wl).unwrap();
        let run = || {
            let mut cpu = Cpu::new(CpuConfig::default());
            cpu.load_image(&image).unwrap();
            for (port, v) in inputs.iter().enumerate() {
                cpu.set_in_port(port, *v);
            }
            let stop = cpu.run(100_000);
            (stop, cpu.state_vector(), cpu.cycles())
        };
        prop_assert_eq!(run(), run());
    }
}

/// A small port-echo program for the determinism property.
fn workloads_source() -> String {
    r"
        in r1, 0
        in r2, 1
        add r3, r1, r2
        out 0, r3
        xor r4, r1, r2
        out 1, r4
        halt
    "
    .to_string()
}

#[test]
fn disassembly_of_workloads_reassembles_equivalently() {
    // Every code word of every workload disassembles to text that, when
    // fed back through the assembler as a standalone instruction, encodes
    // to the original word (branch displacements are relative, so they are
    // checked in a zero-origin context).
    for wl in workloads_list() {
        for (addr, &word) in wl.0.iter().enumerate() {
            let text = thor::asm::disassemble(word);
            if text.starts_with(".word") {
                continue;
            }
            let op = decode(word).unwrap().opcode();
            if matches!(
                op,
                Opcode::Br
                    | Opcode::Beq
                    | Opcode::Bne
                    | Opcode::Blt
                    | Opcode::Bge
                    | Opcode::Bgt
                    | Opcode::Ble
                    | Opcode::Call
            ) {
                continue; // label-relative syntax differs from display form
            }
            let reassembled =
                asm::assemble(&text).unwrap_or_else(|e| panic!("word {addr} `{text}`: {e}"));
            assert_eq!(reassembled.words[0], word, "word {addr} `{text}`");
        }
    }
}

fn workloads_list() -> Vec<(Vec<u32>, String)> {
    // Reuse the asm test corpus: assemble a few known programs.
    let sources = [
        "ldi r1, 5\nadd r2, r1, r1\nst r0, r2, 40\nld r3, r0, 40\nhalt",
        "in r1, 0\nout 1, r1\nsync 3\ntrap 9",
        "push r1\npop r2\nmov r3, r2\nret",
    ];
    sources
        .iter()
        .map(|s| (asm::assemble(s).unwrap().words, s.to_string()))
        .collect()
}
