//! Workload program library for the GOOFI target system.
//!
//! A fault-injection campaign runs a *workload* on the target: "the workload
//! may consist of a program that either terminates by itself or is executed
//! as an infinite loop" exchanging data with an environment simulator each
//! iteration (paper §3.2). This crate packages six workloads of both kinds,
//! written in the target's assembly language:
//!
//! | name         | kind        | exercises                                   |
//! |--------------|-------------|---------------------------------------------|
//! | `bubblesort` | terminating | data-dependent branches, memory traffic     |
//! | `matmul`     | terminating | nested loops, multiplier                     |
//! | `crc32`      | terminating | bit manipulation, long dependency chains     |
//! | `primes`     | terminating | division unit                                |
//! | `fibonacci`  | terminating | recursion, call/ret, stack                   |
//! | `pi-control` | control loop| I/O ports, executable assertions, `sync`     |
//! | `pi-control-ber` | control loop| assertions + best-effort recovery \[12\]  |
//!
//! `pi-control` reproduces the control application of the paper's reference
//! \[12\] ("Reducing Critical Failures for Control Algorithms Using
//! Executable Assertions and Best Effort Recovery"): a fixed-point PI
//! controller with executable assertions on its input and output, closed
//! over a plant from the `envsim` crate.
//!
//! The RV32I second target has its own machine-encoded library —
//! `rv-fibonacci` and `rv-memcpy`, behind [`riscv_all`]/[`riscv_by_name`] —
//! with golden-trace tests pinning exact retired-instruction and cycle
//! counts (see `tests/riscv_golden.rs`).
//!
//! # Example
//!
//! ```
//! use thor::{Cpu, StopReason};
//!
//! let wl = workloads::by_name("bubblesort").unwrap();
//! let mut cpu = Cpu::new(Default::default());
//! cpu.load_image(&wl.image).unwrap();
//! assert_eq!(cpu.run(1_000_000), StopReason::Halted);
//! let out = wl.read_output(&cpu).unwrap();
//! assert!(out.windows(2).all(|w| w[0] <= w[1]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod programs;
mod riscv_programs;

pub use programs::{
    bubblesort, crc32, fibonacci, matmul, pi_control, pi_control_ber, primes, ASSERT_INPUT_RANGE,
    ASSERT_OUTPUT_RANGE, CONTROL_SETPOINT, CRC_LEN, FIB_N, MAT_N, PRIMES_LIMIT, SORT_LEN,
};
pub use riscv_programs::{
    riscv_all, riscv_by_name, riscv_fibonacci, riscv_memcpy, RiscvWorkload, RISCV_FIB_N,
    RISCV_FIB_OUT, RISCV_MEMCPY_DATA, RISCV_MEMCPY_DST, RISCV_MEMCPY_WORDS,
};

use thor::asm::Image;
use thor::{Cpu, MemoryError};

/// Whether a workload terminates by itself or loops forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Runs to a `halt` instruction.
    Terminating,
    /// An infinite control loop with a `sync` at each iteration boundary;
    /// the campaign bounds the number of iterations (paper §3.2).
    ControlLoop,
}

/// Where a workload's result lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputSpec {
    /// A block of data memory: `[addr, addr+len)`.
    Memory {
        /// First word address.
        addr: u32,
        /// Number of words.
        len: u32,
    },
    /// The output-port latches (control workloads).
    Ports,
}

/// A runnable workload: source, assembled image and result location.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Workload name (campaign key).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Assembly source text.
    pub source: String,
    /// Assembled image.
    pub image: Image,
    /// Terminating or control loop.
    pub kind: WorkloadKind,
    /// Result location.
    pub output: OutputSpec,
}

impl Workload {
    /// Reads the workload's output from a CPU that has run it.
    ///
    /// For [`OutputSpec::Ports`] the four output-port latches are returned.
    ///
    /// # Errors
    ///
    /// Returns a [`MemoryError`] if the output region is out of range
    /// (possible after an injected fault corrupts a pointer).
    pub fn read_output(&self, cpu: &Cpu) -> Result<Vec<u32>, MemoryError> {
        match self.output {
            OutputSpec::Memory { addr, len } => cpu.memory().read_block(addr, len as usize),
            OutputSpec::Ports => Ok((0..thor::PORT_COUNT).map(|p| cpu.out_port(p)).collect()),
        }
    }
}

/// All workloads in the library.
pub fn all() -> Vec<Workload> {
    vec![
        bubblesort(),
        matmul(),
        crc32(),
        primes(),
        fibonacci(),
        pi_control(),
        pi_control_ber(),
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_consistent() {
        let ws = all();
        assert_eq!(ws.len(), 7);
        for w in &ws {
            assert!(by_name(&w.name).is_some(), "{}", w.name);
            assert!(!w.image.words.is_empty(), "{}", w.name);
            assert!(w.image.code_words > 0, "{}", w.name);
        }
        assert!(by_name("nope").is_none());
    }
}
