//! The workload programs, written in target assembly.

use crate::{OutputSpec, Workload, WorkloadKind};
use thor::asm::assemble;

/// Deterministic pseudo-random data generator (xorshift), used to fill the
/// input arrays of the data-processing workloads.
fn test_data(seed: u32, count: usize, modulo: u32) -> Vec<u32> {
    let mut x = seed | 1;
    (0..count)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x % modulo
        })
        .collect()
}

fn words_directive(values: &[u32]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn build(name: &str, description: &str, source: String, kind: WorkloadKind) -> Workload {
    let image =
        assemble(&source).unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}"));
    let output = match kind {
        WorkloadKind::ControlLoop => OutputSpec::Ports,
        WorkloadKind::Terminating => {
            let addr = image
                .label("result")
                .unwrap_or_else(|| panic!("workload `{name}` must define a `result` label"));
            let len = image.label("result_end").map(|end| end - addr).unwrap_or(1);
            OutputSpec::Memory { addr, len }
        }
    };
    Workload {
        name: name.to_string(),
        description: description.to_string(),
        source,
        image,
        kind,
        output,
    }
}

/// Number of elements sorted by [`bubblesort`].
pub const SORT_LEN: usize = 16;

/// Bubble sort over [`SORT_LEN`] pseudo-random words.
pub fn bubblesort() -> Workload {
    let data = test_data(0xB00B5EED, SORT_LEN, 10_000);
    let source = format!(
        r"; bubble sort of {n} words
.equ N, {n}
        ldi r1, 0            ; pass counter
        li  r3, result       ; array base
outer:
        ldi r2, 0            ; j
inner:
        ldx r4, r3, r2       ; a[j]
        addi r5, r2, 1
        ldx r6, r3, r5       ; a[j+1]
        cmp r4, r6
        ble noswap
        stx r3, r2, r6
        stx r3, r5, r4
noswap:
        addi r2, r2, 1
        cmpi r2, N-1
        blt inner
        addi r1, r1, 1
        cmpi r1, N-1
        blt outer
        halt
.data
result:
        .word {data}
result_end:
",
        n = SORT_LEN,
        data = words_directive(&data),
    );
    build(
        "bubblesort",
        "bubble sort: data-dependent branching and memory traffic",
        source,
        WorkloadKind::Terminating,
    )
}

/// Matrix dimension of [`matmul`].
pub const MAT_N: usize = 4;

/// 4x4 integer matrix multiplication `C = A * B`.
pub fn matmul() -> Workload {
    let a = test_data(0xA11CE, MAT_N * MAT_N, 50);
    let b = test_data(0xB0B, MAT_N * MAT_N, 50);
    let source = format!(
        r"; {n}x{n} matrix multiply
.equ N, {n}
        ldi r1, 0            ; i
iloop:
        ldi r2, 0            ; j
jloop:
        ldi r3, 0            ; k
        ldi r4, 0            ; acc
kloop:
        muli r10, r1, N
        add  r10, r10, r3
        li   r5, amat
        ldx  r8, r5, r10     ; A[i][k]
        muli r10, r3, N
        add  r10, r10, r2
        li   r6, bmat
        ldx  r9, r6, r10     ; B[k][j]
        mul  r8, r8, r9
        add  r4, r4, r8
        addi r3, r3, 1
        cmpi r3, N
        blt  kloop
        muli r10, r1, N
        add  r10, r10, r2
        li   r7, result
        stx  r7, r10, r4     ; C[i][j] = acc
        addi r2, r2, 1
        cmpi r2, N
        blt  jloop
        addi r1, r1, 1
        cmpi r1, N
        blt  iloop
        halt
.data
amat:   .word {a}
bmat:   .word {b}
result: .space {nn}
result_end:
",
        n = MAT_N,
        nn = MAT_N * MAT_N,
        a = words_directive(&a),
        b = words_directive(&b),
    );
    build(
        "matmul",
        "4x4 matrix multiplication: nested loops and the multiplier",
        source,
        WorkloadKind::Terminating,
    )
}

/// Number of words hashed by [`crc32`].
pub const CRC_LEN: usize = 16;

/// Bitwise CRC-32 (polynomial `0xEDB88320`) over [`CRC_LEN`] words.
pub fn crc32() -> Workload {
    let data = test_data(0xC4C32, CRC_LEN, u32::MAX);
    let source = format!(
        r"; CRC-32 over {len} words (bitwise, reflected polynomial)
.equ LEN, {len}
        li  r1, 0xFFFFFFFF   ; crc
        li  r7, 0xEDB88320   ; polynomial
        ldi r2, 0            ; word index
wloop:
        li  r3, data
        ldx r4, r3, r2
        xor r1, r1, r4
        ldi r5, 32           ; bit counter
bloop:
        andi r6, r1, 1
        cmpi r6, 0
        beq  even
        shri r1, r1, 1
        xor  r1, r1, r7
        br   next
even:
        shri r1, r1, 1
next:
        subi r5, r5, 1
        cmpi r5, 0
        bgt  bloop
        addi r2, r2, 1
        cmpi r2, LEN
        blt  wloop
        li  r3, result
        st  r3, r1, 0
        halt
.data
data:   .word {data}
result: .word 0
result_end:
",
        len = CRC_LEN,
        data = words_directive(&data),
    );
    build(
        "crc32",
        "bitwise CRC-32: shifts, masks and long dependency chains",
        source,
        WorkloadKind::Terminating,
    )
}

/// Upper bound of the prime count in [`primes`].
pub const PRIMES_LIMIT: u32 = 100;

/// Counts primes below [`PRIMES_LIMIT`] by trial division.
pub fn primes() -> Workload {
    let source = format!(
        r"; count primes below {limit} by trial division
.equ LIMIT, {limit}
        ldi r1, 2            ; candidate n
        ldi r3, 0            ; prime count
nloop:
        ldi r2, 2            ; divisor d
dloop:
        mul r4, r2, r2
        cmp r4, r1
        bgt prime            ; d*d > n => prime
        div r4, r1, r2
        mul r4, r4, r2
        cmp r4, r1
        beq notprime         ; n divisible by d
        addi r2, r2, 1
        br  dloop
prime:
        addi r3, r3, 1
notprime:
        addi r1, r1, 1
        cmpi r1, LIMIT
        blt nloop
        li  r5, result
        st  r5, r3, 0
        halt
.data
result: .word 0
result_end:
",
        limit = PRIMES_LIMIT,
    );
    build(
        "primes",
        "prime counting by trial division: exercises the divider",
        source,
        WorkloadKind::Terminating,
    )
}

/// Argument of the recursive Fibonacci workload.
pub const FIB_N: u32 = 15;

/// Recursive Fibonacci — deep call/return and stack traffic.
pub fn fibonacci() -> Workload {
    let source = format!(
        r"; recursive fibonacci({n})
        ldi r1, {n}
        call fib
        li  r5, result
        st  r5, r2, 0
        halt
fib:                         ; r1 = n, returns r2 = fib(n)
        cmpi r1, 2
        blt base
        push lr
        push r1
        subi r1, r1, 1
        call fib             ; r2 = fib(n-1)
        pop r1
        push r2
        subi r1, r1, 2
        call fib             ; r2 = fib(n-2)
        pop r3
        add r2, r2, r3
        pop lr
        ret
base:
        mov r2, r1
        ret
.data
result: .word 0
result_end:
",
        n = FIB_N,
    );
    build(
        "fibonacci",
        "recursive fibonacci: call/ret, link register and stack",
        source,
        WorkloadKind::Terminating,
    )
}

/// Fixed-point set point of the PI controller (10.0 * 256).
pub const CONTROL_SETPOINT: i32 = 2560;

/// Assertion id fired when the control output leaves its plausible range.
pub const ASSERT_OUTPUT_RANGE: u16 = 1;
/// Assertion id fired when the sensor input leaves its plausible range.
pub const ASSERT_INPUT_RANGE: u16 = 2;

/// Fixed-point PI speed controller with executable assertions.
///
/// Each iteration: read the sensor from input port 0, compute
/// `u = (Kp*e + Ki*sum(e)) >> 8`, assert `u` and the sensor are in range
/// (`trap 1` / `trap 2` otherwise — the executable assertions of the
/// paper's reference \[12\]), write `u` to output port 0 and `sync`.
pub fn pi_control() -> Workload {
    let source = format!(
        r"; fixed-point PI controller with executable assertions
.equ KP, 64              ; 0.25 in Q8
.equ KI, 8               ; 0.03125 in Q8
.equ SETPOINT, {sp}
.equ SENSOR_MAX, 8192    ; plausible speed ceiling (32.0)
.equ U_MAX, 16384        ; actuator limit (64.0)
        ldi r10, 0           ; integral accumulator
        ldi r12, 8           ; Q8 shift amount
loop:
        in   r1, 0           ; sensor
        cmpi r1, SENSOR_MAX  ; executable assertion on the input
        bgt  bad_input
        cmpi r1, 0
        blt  bad_input
        li   r2, SETPOINT
        sub  r3, r2, r1      ; e = setpoint - sensor
        add  r10, r10, r3    ; integral += e
        muli r4, r3, KP
        asr  r4, r4, r12     ; (Kp*e) >> 8
        muli r5, r10, KI
        asr  r5, r5, r12     ; (Ki*sum) >> 8
        add  r6, r4, r5      ; u
        li   r7, U_MAX       ; executable assertion on the output
        cmp  r6, r7
        bgt  bad_output
        li   r7, -16384
        cmp  r6, r7
        blt  bad_output
        out  0, r6
        sync 0
        br   loop
bad_output:
        trap {t_out}
bad_input:
        trap {t_in}
",
        sp = CONTROL_SETPOINT,
        t_out = ASSERT_OUTPUT_RANGE,
        t_in = ASSERT_INPUT_RANGE,
    );
    build(
        "pi-control",
        "PI speed controller with executable assertions (paper ref [12])",
        source,
        WorkloadKind::ControlLoop,
    )
}

/// PI controller with executable assertions *and best-effort recovery*.
///
/// The companion study \[12\] pairs the assertions of [`pi_control`] with
/// best-effort recovery: instead of failing stop (`trap`), an implausible
/// value is replaced with the best available estimate and the loop carries
/// on — an implausible sensor reading is assumed to be at the set point, a
/// saturated control output is clamped to the actuator limit and the
/// wound-up integral term is reset. Comparing this workload against
/// [`pi_control`] under identical faults reproduces that paper's headline:
/// recovery trades fail-stop detections for continued (usually correct)
/// service.
pub fn pi_control_ber() -> Workload {
    let source = format!(
        r"; fixed-point PI controller with assertions + best-effort recovery
.equ KP, 64
.equ KI, 8
.equ SETPOINT, {sp}
.equ SENSOR_MAX, 8192
.equ U_MAX, 16384
        ldi r10, 0           ; integral accumulator
        ldi r12, 8           ; Q8 shift amount
loop:
        in   r1, 0           ; sensor
        cmpi r1, SENSOR_MAX  ; executable assertion on the input
        bgt  fix_input
        cmpi r1, 0
        blt  fix_input
input_ok:
        li   r2, SETPOINT
        sub  r3, r2, r1
        add  r10, r10, r3
        muli r4, r3, KP
        asr  r4, r4, r12
        muli r5, r10, KI
        asr  r5, r5, r12
        add  r6, r4, r5      ; u
        li   r7, U_MAX       ; executable assertion on the output
        cmp  r6, r7
        bgt  fix_high
        li   r7, -16384
        cmp  r6, r7
        blt  fix_low
emit:
        out  0, r6
        sync 0
        br   loop
fix_input:
        li   r1, SETPOINT    ; best effort: assume plant at set point
        br   input_ok
fix_high:
        li   r6, U_MAX       ; clamp to actuator limit
        ldi  r10, 0          ; reset the wound-up integral
        br   emit
fix_low:
        li   r6, -16384
        ldi  r10, 0
        br   emit
",
        sp = CONTROL_SETPOINT,
    );
    build(
        "pi-control-ber",
        "PI controller with assertions + best-effort recovery (paper ref [12])",
        source,
        WorkloadKind::ControlLoop,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use envsim::{DcMotor, Environment};
    use thor::{Cpu, CpuConfig, StopReason};

    fn run_to_halt(w: &Workload) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&w.image).unwrap();
        assert_eq!(cpu.run(5_000_000), StopReason::Halted, "{}", w.name);
        cpu
    }

    #[test]
    fn bubblesort_sorts() {
        let w = bubblesort();
        let cpu = run_to_halt(&w);
        let out = w.read_output(&cpu).unwrap();
        assert_eq!(out.len(), SORT_LEN);
        let mut expected = test_data(0xB00B5EED, SORT_LEN, 10_000);
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn matmul_matches_reference() {
        let w = matmul();
        let cpu = run_to_halt(&w);
        let out = w.read_output(&cpu).unwrap();
        let a = test_data(0xA11CE, MAT_N * MAT_N, 50);
        let b = test_data(0xB0B, MAT_N * MAT_N, 50);
        let mut expected = vec![0u32; MAT_N * MAT_N];
        for i in 0..MAT_N {
            for j in 0..MAT_N {
                let mut acc = 0u32;
                for k in 0..MAT_N {
                    acc = acc.wrapping_add(a[i * MAT_N + k].wrapping_mul(b[k * MAT_N + j]));
                }
                expected[i * MAT_N + j] = acc;
            }
        }
        assert_eq!(out, expected);
    }

    #[test]
    fn crc32_matches_reference() {
        let w = crc32();
        let cpu = run_to_halt(&w);
        let out = w.read_output(&cpu).unwrap();
        // Reference CRC over the same words (bitwise, reflected).
        let data = test_data(0xC4C32, CRC_LEN, u32::MAX);
        let mut crc = 0xFFFF_FFFFu32;
        for w in data {
            crc ^= w;
            for _ in 0..32 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        assert_eq!(out, vec![crc]);
    }

    #[test]
    fn primes_counts_25() {
        let w = primes();
        let cpu = run_to_halt(&w);
        assert_eq!(w.read_output(&cpu).unwrap(), vec![25]);
    }

    #[test]
    fn fibonacci_15_is_610() {
        let w = fibonacci();
        let cpu = run_to_halt(&w);
        assert_eq!(w.read_output(&cpu).unwrap(), vec![610]);
    }

    #[test]
    fn pi_control_converges_on_dc_motor() {
        let w = pi_control();
        let mut cpu = Cpu::new(CpuConfig {
            watchdog_cycles: None,
            ..CpuConfig::default()
        });
        cpu.load_image(&w.image).unwrap();
        let mut motor = DcMotor::new();
        let mut sensor = 0u32;
        for _ in 0..300 {
            cpu.set_in_port(0, sensor);
            match cpu.run(10_000) {
                StopReason::Sync { .. } => {}
                other => panic!("unexpected stop: {other:?}"),
            }
            let inputs = motor.exchange(&[cpu.out_port(0)]);
            sensor = inputs[0];
        }
        let speed = motor.speed();
        assert!(
            (speed - CONTROL_SETPOINT).abs() < 128,
            "controller failed to converge: speed={speed}"
        );
    }

    #[test]
    fn pi_control_ber_converges_and_recovers() {
        let w = pi_control_ber();
        let mut cpu = Cpu::new(CpuConfig {
            watchdog_cycles: None,
            ..CpuConfig::default()
        });
        cpu.load_image(&w.image).unwrap();
        let mut motor = DcMotor::new();
        let mut sensor = 0u32;
        for i in 0..300 {
            cpu.set_in_port(0, sensor);
            match cpu.run(10_000) {
                StopReason::Sync { .. } => {}
                other => panic!("unexpected stop: {other:?}"),
            }
            let inputs = motor.exchange(&[cpu.out_port(0)]);
            sensor = inputs[0];
            // Mid-run, feed one wildly implausible sensor value: the BER
            // workload must keep running instead of trapping.
            if i == 150 {
                sensor = 1_000_000;
            }
        }
        let speed = motor.speed();
        assert!(
            (speed - CONTROL_SETPOINT).abs() < 128,
            "BER controller failed to converge: speed={speed}"
        );
    }

    #[test]
    fn pi_control_ber_converges_on_jet_engine() {
        use envsim::JetEngine;
        let w = pi_control_ber();
        let mut cpu = Cpu::new(CpuConfig {
            watchdog_cycles: None,
            ..CpuConfig::default()
        });
        cpu.load_image(&w.image).unwrap();
        let mut engine = JetEngine::new();
        let mut sensor = envsim::JET_IDLE as u32;
        for _ in 0..2_000 {
            cpu.set_in_port(0, sensor);
            match cpu.run(10_000) {
                StopReason::Sync { .. } => {}
                other => panic!("unexpected stop: {other:?}"),
            }
            sensor = engine.exchange(&[cpu.out_port(0)])[0];
        }
        // Spool-up is slow, but the integral term gets there.
        assert!(
            (engine.speed() - CONTROL_SETPOINT).abs() < 64,
            "speed {}",
            engine.speed()
        );
    }

    #[test]
    fn pi_control_asserts_on_implausible_sensor() {
        let w = pi_control();
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&w.image).unwrap();
        cpu.set_in_port(0, 1_000_000); // absurd sensor value
        match cpu.run(10_000) {
            StopReason::Detected(thor::Detection::Assertion(id)) => {
                assert_eq!(id, ASSERT_INPUT_RANGE);
            }
            other => panic!("expected input assertion, got {other:?}"),
        }
    }

    #[test]
    fn workload_runs_are_deterministic() {
        for w in crate::all() {
            if w.kind != WorkloadKind::Terminating {
                continue;
            }
            let a = run_to_halt(&w).state_vector();
            let b = run_to_halt(&w).state_vector();
            assert_eq!(a, b, "{}", w.name);
        }
    }
}
