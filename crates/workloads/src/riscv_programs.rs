//! RV32I workload programs for the second target system.
//!
//! The Thor workloads in [`crate::programs`] are written in Thor assembly
//! and assembled at build time; the RV32I core has no assembler, so these
//! programs are machine-encoded directly through [`riscv::encode`]. That is
//! deliberate: every word in the image is the canonical encoding of a typed
//! [`riscv::Instr`], which the decoder proptests in the `riscv` crate prove
//! round-trips exactly — the golden-trace tests over these workloads
//! therefore pin the *executed* semantics, not an assembler's output.
//!
//! Two programs are provided, mirroring the genericity experiment of the
//! paper (§5: the framework is proven generic by porting a second target):
//!
//! | name             | kind        | exercises                                |
//! |------------------|-------------|------------------------------------------|
//! | `rv-fibonacci`   | terminating | recursion, `jal`/`jalr`, stack traffic   |
//! | `rv-memcpy`      | terminating | word copy loop, byte loads, checksums    |

use crate::{OutputSpec, WorkloadKind};
use riscv::{
    encode, AluImmOp, AluOp, BranchCond, Cpu, Image, Instr, LoadWidth, MemoryError, Reg,
    StoreWidth, ECALL_HALT, PORT_COUNT,
};

/// `rv-fibonacci` computes `fib(RISCV_FIB_N)` recursively.
pub const RISCV_FIB_N: u32 = 10;

/// Word address where `rv-fibonacci` stores its result.
pub const RISCV_FIB_OUT: u32 = 64;

/// Number of words `rv-memcpy` copies.
pub const RISCV_MEMCPY_WORDS: u32 = 8;

/// Word address of the `rv-memcpy` destination block.
pub const RISCV_MEMCPY_DST: u32 = 64;

/// Source data copied by `rv-memcpy` (also byte-checksummed).
pub const RISCV_MEMCPY_DATA: [u32; RISCV_MEMCPY_WORDS as usize] = [
    0x0000_0001,
    0x0102_0304,
    0xDEAD_BEEF,
    0x8000_0000,
    0x7FFF_FFFF,
    0x0000_0000,
    0x1234_5678,
    0xCAFE_F00D,
];

/// A runnable RV32I workload: encoded image and result location.
///
/// The RV32I twin of [`crate::Workload`]. There is no `source` field —
/// the program *is* its typed instruction list, rendered below in the
/// builder functions.
#[derive(Debug, Clone)]
pub struct RiscvWorkload {
    /// Workload name (campaign key). Prefixed `rv-` so a database holding
    /// campaigns for both targets cannot confuse the two libraries.
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Encoded image, ready for [`riscv::Cpu::load_image`].
    pub image: Image,
    /// Terminating or control loop.
    pub kind: WorkloadKind,
    /// Result location.
    pub output: OutputSpec,
}

impl RiscvWorkload {
    /// Reads the workload's output from a CPU that has run it.
    ///
    /// # Errors
    ///
    /// Returns a [`MemoryError`] if the output region is out of range
    /// (possible after an injected fault corrupts a pointer).
    pub fn read_output(&self, cpu: &Cpu) -> Result<Vec<u32>, MemoryError> {
        match self.output {
            OutputSpec::Memory { addr, len } => cpu.memory().read_block(addr, len as usize),
            OutputSpec::Ports => Ok((0..PORT_COUNT).map(|p| cpu.out_port(p)).collect()),
        }
    }
}

// Short typed-instruction builders so the programs below read like listings.
fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
    Instr::AluImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    }
}

fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Instr {
    Instr::Alu {
        op: AluOp::Add,
        rd,
        rs1,
        rs2,
    }
}

fn lw(rd: Reg, rs1: Reg, offset: i32) -> Instr {
    Instr::Load {
        width: LoadWidth::W,
        rd,
        rs1,
        offset,
    }
}

fn lbu(rd: Reg, rs1: Reg, offset: i32) -> Instr {
    Instr::Load {
        width: LoadWidth::Bu,
        rd,
        rs1,
        offset,
    }
}

fn sw(rs1: Reg, rs2: Reg, offset: i32) -> Instr {
    Instr::Store {
        width: StoreWidth::W,
        rs1,
        rs2,
        offset,
    }
}

fn beq(rs1: Reg, rs2: Reg, offset: i32) -> Instr {
    Instr::Branch {
        cond: BranchCond::Eq,
        rs1,
        rs2,
        offset,
    }
}

fn blt(rs1: Reg, rs2: Reg, offset: i32) -> Instr {
    Instr::Branch {
        cond: BranchCond::Lt,
        rs1,
        rs2,
        offset,
    }
}

fn jal(rd: Reg, offset: i32) -> Instr {
    Instr::Jal { rd, offset }
}

fn jalr(rd: Reg, rs1: Reg, offset: i32) -> Instr {
    Instr::Jalr { rd, rs1, offset }
}

fn image(code: &[Instr], data: &[u32]) -> Image {
    let mut words: Vec<u32> = code.iter().copied().map(encode).collect();
    let code_words = words.len() as u32;
    words.extend_from_slice(data);
    Image {
        words,
        code_words,
        entry: 0,
    }
}

/// `rv-fibonacci`: recursive `fib(RISCV_FIB_N)`, result stored at word
/// [`RISCV_FIB_OUT`]. Exercises `jal`/`jalr` call/return and stack traffic
/// through `sp`, the RV32I counterpart of Thor's `fibonacci`.
pub fn riscv_fibonacci() -> RiscvWorkload {
    let t0 = Reg::new(5);
    let s0 = Reg::new(8);
    let out_byte = (RISCV_FIB_OUT * 4) as i32;
    #[rustfmt::skip]
    let code = [
        // -- main ------------------------------------------------ word --
        addi(Reg::A0, Reg::X0, RISCV_FIB_N as i32),             //  0
        jal(Reg::RA, 16),                                       //  1  call fib (word 5)
        sw(Reg::X0, Reg::A0, out_byte),                         //  2
        addi(Reg::A7, Reg::X0, ECALL_HALT as i32),              //  3
        Instr::Ecall,                                           //  4
        // -- fib(n in a0) -----------------------------------------------
        addi(t0, Reg::X0, 2),                                   //  5
        blt(Reg::A0, t0, 60),                                   //  6  n < 2 -> ret (word 21)
        addi(Reg::SP, Reg::SP, -12),                            //  7
        sw(Reg::SP, Reg::RA, 0),                                //  8
        sw(Reg::SP, s0, 4),                                     //  9
        sw(Reg::SP, Reg::A0, 8),                                // 10
        addi(Reg::A0, Reg::A0, -1),                             // 11
        jal(Reg::RA, -28),                                      // 12  fib(n-1)
        addi(s0, Reg::A0, 0),                                   // 13
        lw(Reg::A0, Reg::SP, 8),                                // 14
        addi(Reg::A0, Reg::A0, -2),                             // 15
        jal(Reg::RA, -44),                                      // 16  fib(n-2)
        add(Reg::A0, Reg::A0, s0),                              // 17
        lw(Reg::RA, Reg::SP, 0),                                // 18
        lw(s0, Reg::SP, 4),                                     // 19
        addi(Reg::SP, Reg::SP, 12),                             // 20
        jalr(Reg::X0, Reg::RA, 0),                              // 21  ret
    ];
    RiscvWorkload {
        name: "rv-fibonacci".into(),
        description: format!("recursive fib({RISCV_FIB_N}) on RV32I: call/ret, stack"),
        image: image(&code, &[]),
        kind: WorkloadKind::Terminating,
        output: OutputSpec::Memory {
            addr: RISCV_FIB_OUT,
            len: 1,
        },
    }
}

/// `rv-memcpy`: copies [`RISCV_MEMCPY_DATA`] word-by-word to
/// [`RISCV_MEMCPY_DST`], then byte-checksums the copy with `lbu` and stores
/// the sum just past the destination block. Exercises the load/store unit
/// at both widths plus data-dependent loop control.
pub fn riscv_memcpy() -> RiscvWorkload {
    let (t0, t1, t2, t3, t4) = (
        Reg::new(5),
        Reg::new(6),
        Reg::new(7),
        Reg::new(28),
        Reg::new(29),
    );
    let n = RISCV_MEMCPY_WORDS as i32;
    let dst_byte = (RISCV_MEMCPY_DST * 4) as i32;
    let sum_byte = ((RISCV_MEMCPY_DST + RISCV_MEMCPY_WORDS) * 4) as i32;
    // The source block sits immediately after the 22 code words.
    let src_byte = 22 * 4;
    #[rustfmt::skip]
    let code = [
        // -- word copy ------------------------------------------- word --
        addi(t0, Reg::X0, src_byte),                            //  0
        addi(t1, Reg::X0, dst_byte),                            //  1
        addi(t2, Reg::X0, n),                                   //  2
        beq(t2, Reg::X0, 28),                                   //  3  done -> word 10
        lw(t3, t0, 0),                                          //  4
        sw(t1, t3, 0),                                          //  5
        addi(t0, t0, 4),                                        //  6
        addi(t1, t1, 4),                                        //  7
        addi(t2, t2, -1),                                       //  8
        jal(Reg::X0, -24),                                      //  9  -> word 3
        // -- byte checksum of the copy ----------------------------------
        addi(t0, Reg::X0, dst_byte),                            // 10
        addi(t2, Reg::X0, n * 4),                               // 11
        addi(t4, Reg::X0, 0),                                   // 12
        beq(t2, Reg::X0, 24),                                   // 13  done -> word 19
        lbu(t3, t0, 0),                                         // 14
        add(t4, t4, t3),                                        // 15
        addi(t0, t0, 1),                                        // 16
        addi(t2, t2, -1),                                       // 17
        jal(Reg::X0, -20),                                      // 18  -> word 13
        sw(Reg::X0, t4, sum_byte),                              // 19
        addi(Reg::A7, Reg::X0, ECALL_HALT as i32),              // 20
        Instr::Ecall,                                           // 21
    ];
    debug_assert_eq!(code.len(), src_byte as usize / 4);
    RiscvWorkload {
        name: "rv-memcpy".into(),
        description: format!("{RISCV_MEMCPY_WORDS}-word memcpy plus byte checksum on RV32I"),
        image: image(&code, &RISCV_MEMCPY_DATA),
        kind: WorkloadKind::Terminating,
        output: OutputSpec::Memory {
            addr: RISCV_MEMCPY_DST,
            // The copied block plus the checksum word stored just past it.
            len: RISCV_MEMCPY_WORDS + 1,
        },
    }
}

/// All RV32I workloads in the library.
pub fn riscv_all() -> Vec<RiscvWorkload> {
    vec![riscv_fibonacci(), riscv_memcpy()]
}

/// Looks an RV32I workload up by name.
pub fn riscv_by_name(name: &str) -> Option<RiscvWorkload> {
    riscv_all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use riscv::{CpuConfig, StopReason};

    fn run(w: &RiscvWorkload) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.load_image(&w.image).unwrap();
        assert_eq!(cpu.run(1_000_000), StopReason::Halted, "{}", w.name);
        cpu
    }

    #[test]
    fn registry_is_consistent() {
        let ws = riscv_all();
        assert_eq!(ws.len(), 2);
        for w in &ws {
            assert!(riscv_by_name(&w.name).is_some(), "{}", w.name);
            assert!(w.image.code_words > 0, "{}", w.name);
            assert!(
                w.image.words.len() >= w.image.code_words as usize,
                "{}",
                w.name
            );
        }
        assert!(riscv_by_name("rv-nope").is_none());
    }

    #[test]
    fn fibonacci_computes_fib_n() {
        let cpu = run(&riscv_fibonacci());
        let out = riscv_fibonacci().read_output(&cpu).unwrap();
        assert_eq!(out, vec![55]); // fib(10)
    }

    #[test]
    fn memcpy_copies_and_checksums() {
        let cpu = run(&riscv_memcpy());
        let out = riscv_memcpy().read_output(&cpu).unwrap();
        assert_eq!(&out[..8], &RISCV_MEMCPY_DATA);
        let byte_sum: u32 = RISCV_MEMCPY_DATA
            .iter()
            .flat_map(|w| w.to_le_bytes())
            .map(u32::from)
            .sum();
        assert_eq!(out[8], byte_sum);
    }
}
