//! Golden-trace tests for the RV32I workload library.
//!
//! Every constant here was computed by hand from the cycle model documented
//! on `riscv::Cpu` (base 1 cycle, +2 load/store, +1 taken branch, +2
//! `jal`/`jalr`) and cross-checked against an actual run. A fault-free run
//! of each workload must reproduce them bit-for-bit: the campaign layer's
//! golden-run cache, trigger fast-forward and pre-injection analysis all
//! assume the core is cycle-deterministic, so any drift in these numbers is
//! a regression even if the workload's *output* stays correct.

use riscv::{AccessLog, Cpu, CpuConfig, StopReason};
use workloads::{
    riscv_by_name, riscv_fibonacci, riscv_memcpy, RiscvWorkload, RISCV_MEMCPY_DATA,
    RISCV_MEMCPY_WORDS,
};

/// `rv-fibonacci`: 5 main instructions, 88 recursive frames of 17 and 89
/// base cases of 3 (fib(11) = 89 leaves for n = 10).
const FIB_INSTRET: u64 = 1768;
const FIB_CYCLES: u64 = 3623;

/// `rv-memcpy`: 3 + 8*7 + 1 copy, 3 + 32*6 + 1 checksum, 3 tail.
const MEMCPY_INSTRET: u64 = 259;
const MEMCPY_CYCLES: u64 = 439;

fn run(w: &RiscvWorkload) -> Cpu {
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.load_image(&w.image).unwrap();
    assert_eq!(cpu.run(1_000_000), StopReason::Halted, "{}", w.name);
    cpu
}

#[test]
fn fibonacci_golden_counters_and_output() {
    let w = riscv_fibonacci();
    let cpu = run(&w);
    assert_eq!(cpu.instructions(), FIB_INSTRET);
    assert_eq!(cpu.cycles(), FIB_CYCLES);
    assert_eq!(cpu.iterations(), 0);
    assert_eq!(w.read_output(&cpu).unwrap(), vec![55]);
}

#[test]
fn memcpy_golden_counters_and_output() {
    let w = riscv_memcpy();
    let cpu = run(&w);
    assert_eq!(cpu.instructions(), MEMCPY_INSTRET);
    assert_eq!(cpu.cycles(), MEMCPY_CYCLES);
    let out = w.read_output(&cpu).unwrap();
    assert_eq!(&out[..RISCV_MEMCPY_WORDS as usize], &RISCV_MEMCPY_DATA);
    let byte_sum: u32 = RISCV_MEMCPY_DATA
        .iter()
        .flat_map(|word| word.to_le_bytes())
        .map(u32::from)
        .sum();
    assert_eq!(out[RISCV_MEMCPY_WORDS as usize], byte_sum);
}

#[test]
fn memcpy_golden_pc_trace_prefix() {
    // The first twelve fetches: prologue (words 0-2), one full copy
    // iteration (3-9), then back to the loop head for the second element.
    const PREFIX: [u32; 12] = [0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 12, 16];
    let w = riscv_memcpy();
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.load_image(&w.image).unwrap();
    let mut log = AccessLog::default();
    for (i, expected_pc) in PREFIX.into_iter().enumerate() {
        assert!(
            cpu.step_logged(&mut log).is_none(),
            "early stop at step {i}"
        );
        assert_eq!(log.pc, expected_pc, "step {i}");
    }
}

#[test]
fn golden_runs_are_deterministic() {
    for w in workloads::riscv_all() {
        let a = run(&w);
        let b = run(&w);
        assert_eq!(a.instructions(), b.instructions(), "{}", w.name);
        assert_eq!(a.cycles(), b.cycles(), "{}", w.name);
        assert_eq!(
            w.read_output(&a).unwrap(),
            w.read_output(&b).unwrap(),
            "{}",
            w.name
        );
    }
}

#[test]
fn by_name_round_trips_the_registry() {
    for w in workloads::riscv_all() {
        let again = riscv_by_name(&w.name).expect(&w.name);
        assert_eq!(again.image, w.image, "{}", w.name);
    }
}
