//! SCIFI on a closed-loop control application — the scenario of the paper's
//! reference \[12\]: a PI controller with executable assertions, driving a
//! DC-motor plant through the environment simulator, with faults injected
//! into the controller's internal state.
//!
//! ```sh
//! cargo run --example control_loop
//! ```

use goofi::analysis::{classify_campaign, report, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Termination};
use goofi::core::fault::FaultSpace;
use goofi::core::monitor::ProgressMonitor;
use goofi::envsim::DcMotor;
use goofi::goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = workloads::by_name("pi-control").expect("workload exists");
    let mut target = ThorTarget::default();
    let target_data = TargetSystemData::from_target(&target, "Thor-RD-like CPU simulator");

    // Restrict the fault space to the controller's working registers — the
    // locations the paper's assertions are designed to guard.
    let space = FaultSpace {
        scan_cells: target_data
            .locations
            .iter()
            .filter(|(chain, cell, _, rw)| {
                *rw && chain == "internal" && (cell.starts_with('R') || cell == "FLAGS")
            })
            .map(|(chain, cell, width, _)| (chain.clone(), cell.clone(), *width))
            .collect(),
        memory: None,
        // Inject while the loop runs: the reference completes its 200
        // iterations in roughly 5,000 instructions.
        time_window: 200..4_800,
    };
    let faults = space.sample_campaign(150, &mut StdRng::seed_from_u64(12));

    let campaign = Campaign::builder("control-loop")
        .target_system(&target_data.name)
        .workload(goofi::core::campaign::WorkloadImage {
            name: workload.name.clone(),
            words: workload.image.words.clone(),
            code_words: workload.image.code_words,
            entry: workload.image.entry,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Ports)
        .termination(Termination {
            max_instructions: 3_000_000,
            // The paper: for infinite-loop workloads "the user must specify
            // the maximum number of iterations".
            max_iterations: Some(200),
        })
        .faults(faults)
        .build()?;

    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let mut motor = DcMotor::new();
    let result = algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut motor)?;

    println!(
        "reference run: {} after {} iterations, control output {}",
        result.reference.termination,
        result.reference.state.iterations,
        result.reference.state.outputs[0] as i32,
    );

    let classified = classify_campaign(&result.reference, &result.records);
    let stats = CampaignStats::from_classified(&classified);
    println!(
        "\n{}",
        report::full_report("PI controller under fault injection", &stats)
    );

    // The executable assertions of [12] show up as `assertion` detections.
    let asserted = stats.by_mechanism.get("assertion").copied().unwrap_or(0);
    println!(
        "executable assertions caught {asserted} of {} detected errors",
        stats.category_count("detected"),
    );
    Ok(())
}
