//! Detail-mode error-propagation analysis — the paper's §2.3 workflow.
//!
//! A campaign finds an escaped error (a fail-silence violation); the
//! interesting experiment is re-run in detail mode with `parentExperiment`
//! linking it back, and the per-instruction trace shows where the error
//! first appeared and how it spread.
//!
//! ```sh
//! cargo run --example error_propagation
//! ```

use goofi::analysis::{classify, propagation, Outcome};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Termination};
use goofi::core::logging::LoggingMode;
use goofi::core::monitor::ProgressMonitor;
use goofi::envsim::NullEnvironment;
use goofi::goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = workloads::by_name("crc32").expect("workload exists");
    let mut target = ThorTarget::default();
    let target_data = TargetSystemData::from_target(&target, "Thor-RD-like CPU simulator");

    // Normal-mode campaign: find an escaped error.
    let space = target_data.fault_space(None, 100..2_000);
    let faults = space.sample_campaign(300, &mut StdRng::seed_from_u64(41));
    let campaign = Campaign::builder("prop-hunt")
        .target_system(&target_data.name)
        .workload(goofi::core::campaign::WorkloadImage {
            name: workload.name.clone(),
            words: workload.image.words.clone(),
            code_words: workload.image.code_words,
            entry: workload.image.entry,
        })
        .observe_chains(["internal"])
        .output(match workload.output {
            workloads::OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
            workloads::OutputSpec::Ports => OutputRegion::Ports,
        })
        .termination(Termination {
            max_instructions: 200_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()?;

    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let result =
        algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut NullEnvironment)?;

    let escaped_index = result
        .records
        .iter()
        .position(|r| matches!(classify(&result.reference, r), Outcome::Escaped { .. }));
    let Some(index) = escaped_index else {
        println!("no escaped error in this campaign — try another seed");
        return Ok(());
    };
    let record = &result.records[index];
    println!(
        "escaped error found: {} ({})",
        record.name,
        record.fault.as_ref().expect("faulty record"),
    );

    // Re-run in detail mode (parentExperiment workflow).
    let mut detail_campaign = campaign.clone();
    detail_campaign.logging = LoggingMode::Detail;
    let reference =
        algorithms::make_reference_run(&mut target, &detail_campaign, &mut NullEnvironment)?;
    let detailed =
        algorithms::rerun_detailed(&mut target, &detail_campaign, index, &mut NullEnvironment)?;
    println!(
        "detail re-run `{}` (parent: {})",
        detailed.name,
        detailed.parent.as_deref().unwrap_or("-"),
    );

    // Propagation profile.
    let prop = propagation::analyse(&reference.trace, &detailed.trace);
    match prop.first_divergence {
        Some(step) => {
            println!(
                "first divergence at instruction {step}; corruption peaks at \
                 {} bits (instruction {:?}); {} instructions compared",
                prop.peak_bits(),
                prop.peak_step(),
                prop.compared_steps,
            );
            println!("\ncorrupted scan bits over time (every 200 instructions):");
            for s in prop.series.iter().skip(step).step_by(200) {
                println!(
                    "  instr {:>6}: {:>4} bits {}",
                    s.step,
                    s.total_bits,
                    if s.outputs_differ {
                        "(outputs differ)"
                    } else {
                        ""
                    },
                );
            }
        }
        None => println!("traces never diverged (fault overwritten before use)"),
    }
    Ok(())
}
