//! Porting GOOFI to a new target system — the paper's Figure 3 workflow.
//!
//! The paper's `Framework` class is a template whose methods all read
//! "Write your code here!". This example plays the role of the porting
//! programmer: it defines a brand-new target system (a tiny 8-bit
//! accumulator machine, nothing like Thor) and implements just enough of
//! the `TargetAccess` building blocks for the SWIFI algorithm to run —
//! demonstrating the paper's claim that the algorithms are reusable across
//! target systems unchanged.
//!
//! ```sh
//! cargo run --example port_a_target
//! ```

use goofi::analysis::{classify_campaign, report, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi::core::fault::{FaultLocation, FaultSpec};
use goofi::core::monitor::ProgressMonitor;
use goofi::core::preinject::StepAccess;
use goofi::core::trigger::Trigger;
use goofi::core::{
    readout_restore, readout_snapshot, DetectionInfo, GoofiError, RunBudget, RunEvent, TargetAccess,
};
use goofi::envsim::NullEnvironment;
use goofi::scanchain::{BitVec, CellAccess, ChainLayout};

/// A deliberately tiny target: an 8-bit accumulator machine with 256 words
/// of memory and a single "illegal opcode" detection mechanism.
///
/// Instruction encoding (one 32-bit word each, low byte = opcode):
/// 0 = halt, 1 = load acc from mem\[op\], 2 = add mem\[op\] to acc,
/// 3 = store acc to mem\[op\]. The operand lives in byte 1.
struct AccumulatorMachine {
    mem: Vec<u32>,
    acc: u8,
    pc: u8,
    halted: bool,
    detected: bool,
    instructions: u64,
}

impl AccumulatorMachine {
    fn new() -> Self {
        AccumulatorMachine {
            mem: vec![0; 256],
            acc: 0,
            pc: 0,
            halted: false,
            detected: false,
            instructions: 0,
        }
    }

    /// The machine's one boundary scan chain: every architectural register
    /// as a read-write cell. Making all of them writable is what lets the
    /// *generic* snapshot fallback ([`readout_snapshot`] /
    /// [`readout_restore`]) control the full machine state without any
    /// native snapshot support.
    fn scan_layout() -> ChainLayout {
        ChainLayout::builder("core")
            .cell("ACC", 8, CellAccess::ReadWrite)
            .cell("PC", 8, CellAccess::ReadWrite)
            .cell("HALT", 1, CellAccess::ReadWrite)
            .cell("DET", 1, CellAccess::ReadWrite)
            .build()
    }

    fn step_once(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.detected {
            return Some(RunEvent::Detected(DetectionInfo {
                mechanism: "illegal_opcode".into(),
                code: 1,
            }));
        }
        let word = self.mem[self.pc as usize];
        let (op, operand) = ((word & 0xFF) as u8, ((word >> 8) & 0xFF) as usize);
        self.pc = self.pc.wrapping_add(1);
        self.instructions += 1;
        match op {
            0 => {
                self.halted = true;
                return Some(RunEvent::Halted);
            }
            1 => self.acc = self.mem[operand] as u8,
            2 => self.acc = self.acc.wrapping_add(self.mem[operand] as u8),
            3 => self.mem[operand] = self.acc as u32,
            _ => {
                self.detected = true;
                return Some(RunEvent::Detected(DetectionInfo {
                    mechanism: "illegal_opcode".into(),
                    code: 1,
                }));
            }
        }
        None
    }
}

// The porting step: implement the building blocks the SWIFI algorithm
// needs, plus one boundary scan chain over the architectural registers.
// Methods the port does not need yet stay "Write your code here!"
// (Unimplemented) — any algorithm touching them fails fast with the
// missing method's name, exactly like the paper's workflow. Note there is
// no native `snapshot`/`restore` override: the scan chain plus memory
// access is already enough for the generic readout fallback (see main).
impl TargetAccess for AccumulatorMachine {
    fn target_name(&self) -> &str {
        "accumulator-8"
    }

    fn init_test_card(&mut self) -> goofi::core::Result<()> {
        Ok(()) // no test card on this target
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> goofi::core::Result<()> {
        self.mem.fill(0);
        self.mem[..image.words.len()].copy_from_slice(&image.words);
        self.acc = 0;
        self.pc = image.entry as u8;
        self.halted = false;
        self.detected = false;
        self.instructions = 0;
        Ok(())
    }

    fn reset_target(&mut self) -> goofi::core::Result<()> {
        self.acc = 0;
        self.pc = 0;
        self.halted = false;
        self.detected = false;
        self.instructions = 0;
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi::core::Result<()> {
        let start = addr as usize;
        self.mem[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> goofi::core::Result<Vec<u32>> {
        Ok(self.mem[addr as usize..addr as usize + len].to_vec())
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi::core::Result<()> {
        self.mem[addr as usize] ^= 1 << bit;
        Ok(())
    }

    fn memory_size(&self) -> u32 {
        self.mem.len() as u32
    }

    fn set_breakpoint(&mut self, _trigger: Trigger) -> goofi::core::Result<()> {
        Err(GoofiError::Unimplemented("set_breakpoint")) // Write your code here!
    }

    fn clear_breakpoints(&mut self) -> goofi::core::Result<()> {
        Ok(()) // nothing to clear
    }

    fn run_workload(&mut self, budget: RunBudget) -> goofi::core::Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.step_once() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }

    fn step_instruction(&mut self) -> goofi::core::Result<Option<RunEvent>> {
        Ok(self.step_once())
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        vec![Self::scan_layout()]
    }

    fn read_scan_chain(&mut self, chain: &str) -> goofi::core::Result<BitVec> {
        if chain != "core" {
            return Err(GoofiError::Target(format!("unknown scan chain: {chain}")));
        }
        let layout = Self::scan_layout();
        let mut bits = BitVec::zeros(layout.total_bits());
        layout.write_cell(&mut bits, "ACC", u64::from(self.acc))?;
        layout.write_cell(&mut bits, "PC", u64::from(self.pc))?;
        layout.write_cell(&mut bits, "HALT", u64::from(self.halted))?;
        layout.write_cell(&mut bits, "DET", u64::from(self.detected))?;
        Ok(bits)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi::core::Result<()> {
        if chain != "core" {
            return Err(GoofiError::Target(format!("unknown scan chain: {chain}")));
        }
        let layout = Self::scan_layout();
        self.acc = layout.read_cell(bits, "ACC")? as u8;
        self.pc = layout.read_cell(bits, "PC")? as u8;
        self.halted = layout.read_cell(bits, "HALT")? != 0;
        self.detected = layout.read_cell(bits, "DET")? != 0;
        Ok(())
    }

    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi::core::Result<()> {
        Ok(()) // no ports
    }

    fn read_output_ports(&mut self) -> goofi::core::Result<Vec<u32>> {
        Ok(Vec::new())
    }

    fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    fn cycles_executed(&self) -> u64 {
        self.instructions // one cycle per instruction
    }

    fn iterations_completed(&self) -> u64 {
        0
    }

    fn step_traced(&mut self) -> goofi::core::Result<(Option<RunEvent>, StepAccess)> {
        Err(GoofiError::Unimplemented("step_traced")) // Write your code here!
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workload for the new target: sum mem[16..20] into mem[32].
    let instr = |op: u32, operand: u32| op | (operand << 8);
    let mut words = vec![
        instr(1, 16), // load  acc, [16]
        instr(2, 17), // add   acc, [17]
        instr(2, 18),
        instr(2, 19),
        instr(3, 32), // store [32], acc
        instr(0, 0),  // halt
    ];
    words.resize(16, 0);
    words.extend([11, 22, 33, 44]); // addresses 16..20
    let workload = WorkloadImage {
        name: "sum4".into(),
        words,
        code_words: 6,
        entry: 0,
    };

    // A pre-runtime SWIFI campaign over the whole image, one flip per bit
    // of the first eight words.
    let mut faults = Vec::new();
    for addr in 0..8u32 {
        for bit in 0..16u8 {
            faults.push(FaultSpec::single(
                FaultLocation::Memory { addr, bit },
                Trigger::PreRuntime,
            ));
        }
    }
    let n = faults.len();
    let campaign = Campaign::builder("port-demo")
        .target_system("accumulator-8")
        .technique(goofi::core::campaign::Technique::SwifiPreRuntime)
        .workload(workload)
        .output(OutputRegion::Memory { addr: 32, len: 1 })
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()?;

    // The *same* faultinjector_swifi that drives the Thor target drives the
    // new machine — no algorithm changes, just the port above.
    let mut target = AccumulatorMachine::new();
    let monitor = ProgressMonitor::new(n);
    let result =
        algorithms::faultinjector_swifi(&mut target, &campaign, &monitor, &mut NullEnvironment)?;

    let classified = classify_campaign(&result.reference, &result.records);
    let stats = CampaignStats::from_classified(&classified);
    println!(
        "{}",
        report::full_report("exhaustive SWIFI on the freshly ported target", &stats)
    );
    println!(
        "reference output: {:?} (11+22+33+44 = 110)",
        result.reference.state.outputs
    );

    // Second porting milestone: state capture without native snapshot
    // support. `AccumulatorMachine` never implements `snapshot`/`restore`
    // (a fresh port rarely can — on real hardware those need simulator or
    // debug-unit cooperation). The generic scan-readout fallback only
    // needs what the port already has: scan chains and memory access.
    let mut target = AccumulatorMachine::new();
    target.load_workload(&campaign.workload)?;
    target.run_workload(RunBudget {
        max_instructions: 3,
    })?;
    let captured = readout_snapshot(&mut target)?;

    // Wreck the machine state, then roll it back through the chain.
    target.flip_memory_bit(17, 4)?;
    target.run_workload(RunBudget::default())?;
    readout_restore(&mut target, &captured)?;

    let resumed = target.run_workload(RunBudget::default())?;
    assert!(matches!(resumed, RunEvent::Halted));
    assert_eq!(target.read_memory(32, 1)?, vec![110]);
    println!("readout snapshot/restore: rolled back mid-run state, re-ran to the correct sum");
    Ok(())
}
