//! Porting GOOFI to a new target system — the paper's Figure 3 workflow.
//!
//! The paper's `Framework` class is a template whose methods all read
//! "Write your code here!". This example plays the role of the porting
//! programmer: it defines a brand-new target system (a tiny 8-bit
//! accumulator machine, nothing like Thor) and implements just enough of
//! the `TargetAccess` building blocks for the SWIFI algorithm to run —
//! demonstrating the paper's claim that the algorithms are reusable across
//! target systems unchanged.
//!
//! ```sh
//! cargo run --example port_a_target
//! ```

use goofi::analysis::{classify_campaign, report, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, Termination, WorkloadImage};
use goofi::core::fault::{FaultLocation, FaultSpec};
use goofi::core::monitor::ProgressMonitor;
use goofi::core::preinject::StepAccess;
use goofi::core::trigger::Trigger;
use goofi::core::{DetectionInfo, GoofiError, RunBudget, RunEvent, TargetAccess};
use goofi::envsim::NullEnvironment;
use goofi::scanchain::{BitVec, ChainLayout};

/// A deliberately tiny target: an 8-bit accumulator machine with 256 words
/// of memory and a single "illegal opcode" detection mechanism.
///
/// Instruction encoding (one 32-bit word each, low byte = opcode):
/// 0 = halt, 1 = load acc from mem\[op\], 2 = add mem\[op\] to acc,
/// 3 = store acc to mem\[op\]. The operand lives in byte 1.
struct AccumulatorMachine {
    mem: Vec<u32>,
    acc: u8,
    pc: u8,
    halted: bool,
    detected: bool,
    instructions: u64,
}

impl AccumulatorMachine {
    fn new() -> Self {
        AccumulatorMachine {
            mem: vec![0; 256],
            acc: 0,
            pc: 0,
            halted: false,
            detected: false,
            instructions: 0,
        }
    }

    fn step_once(&mut self) -> Option<RunEvent> {
        if self.halted {
            return Some(RunEvent::Halted);
        }
        if self.detected {
            return Some(RunEvent::Detected(DetectionInfo {
                mechanism: "illegal_opcode".into(),
                code: 1,
            }));
        }
        let word = self.mem[self.pc as usize];
        let (op, operand) = ((word & 0xFF) as u8, ((word >> 8) & 0xFF) as usize);
        self.pc = self.pc.wrapping_add(1);
        self.instructions += 1;
        match op {
            0 => {
                self.halted = true;
                return Some(RunEvent::Halted);
            }
            1 => self.acc = self.mem[operand] as u8,
            2 => self.acc = self.acc.wrapping_add(self.mem[operand] as u8),
            3 => self.mem[operand] = self.acc as u32,
            _ => {
                self.detected = true;
                return Some(RunEvent::Detected(DetectionInfo {
                    mechanism: "illegal_opcode".into(),
                    code: 1,
                }));
            }
        }
        None
    }
}

// The porting step: implement the building blocks the SWIFI algorithm
// needs. Scan-chain methods stay "Write your code here!" (Unimplemented) —
// this target has no test logic, so only SWIFI campaigns can run, exactly
// like a real port that starts with one technique.
impl TargetAccess for AccumulatorMachine {
    fn target_name(&self) -> &str {
        "accumulator-8"
    }

    fn init_test_card(&mut self) -> goofi::core::Result<()> {
        Ok(()) // no test card on this target
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> goofi::core::Result<()> {
        self.mem.fill(0);
        self.mem[..image.words.len()].copy_from_slice(&image.words);
        self.acc = 0;
        self.pc = image.entry as u8;
        self.halted = false;
        self.detected = false;
        self.instructions = 0;
        Ok(())
    }

    fn reset_target(&mut self) -> goofi::core::Result<()> {
        self.acc = 0;
        self.pc = 0;
        self.halted = false;
        self.detected = false;
        self.instructions = 0;
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi::core::Result<()> {
        let start = addr as usize;
        self.mem[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> goofi::core::Result<Vec<u32>> {
        Ok(self.mem[addr as usize..addr as usize + len].to_vec())
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi::core::Result<()> {
        self.mem[addr as usize] ^= 1 << bit;
        Ok(())
    }

    fn memory_size(&self) -> u32 {
        self.mem.len() as u32
    }

    fn set_breakpoint(&mut self, _trigger: Trigger) -> goofi::core::Result<()> {
        Err(GoofiError::Unimplemented("set_breakpoint")) // Write your code here!
    }

    fn clear_breakpoints(&mut self) -> goofi::core::Result<()> {
        Ok(()) // nothing to clear
    }

    fn run_workload(&mut self, budget: RunBudget) -> goofi::core::Result<RunEvent> {
        for _ in 0..budget.max_instructions {
            if let Some(ev) = self.step_once() {
                return Ok(ev);
            }
        }
        Ok(RunEvent::BudgetExhausted)
    }

    fn step_instruction(&mut self) -> goofi::core::Result<Option<RunEvent>> {
        Ok(self.step_once())
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        Vec::new() // no scan chains
    }

    fn read_scan_chain(&mut self, _chain: &str) -> goofi::core::Result<BitVec> {
        Err(GoofiError::Unimplemented("read_scan_chain")) // Write your code here!
    }

    fn write_scan_chain(&mut self, _chain: &str, _bits: &BitVec) -> goofi::core::Result<()> {
        Err(GoofiError::Unimplemented("write_scan_chain")) // Write your code here!
    }

    fn write_input_ports(&mut self, _inputs: &[u32]) -> goofi::core::Result<()> {
        Ok(()) // no ports
    }

    fn read_output_ports(&mut self) -> goofi::core::Result<Vec<u32>> {
        Ok(Vec::new())
    }

    fn instructions_executed(&self) -> u64 {
        self.instructions
    }

    fn cycles_executed(&self) -> u64 {
        self.instructions // one cycle per instruction
    }

    fn iterations_completed(&self) -> u64 {
        0
    }

    fn step_traced(&mut self) -> goofi::core::Result<(Option<RunEvent>, StepAccess)> {
        Err(GoofiError::Unimplemented("step_traced")) // Write your code here!
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A workload for the new target: sum mem[16..20] into mem[32].
    let instr = |op: u32, operand: u32| op | (operand << 8);
    let mut words = vec![
        instr(1, 16), // load  acc, [16]
        instr(2, 17), // add   acc, [17]
        instr(2, 18),
        instr(2, 19),
        instr(3, 32), // store [32], acc
        instr(0, 0),  // halt
    ];
    words.resize(16, 0);
    words.extend([11, 22, 33, 44]); // addresses 16..20
    let workload = WorkloadImage {
        name: "sum4".into(),
        words,
        code_words: 6,
        entry: 0,
    };

    // A pre-runtime SWIFI campaign over the whole image, one flip per bit
    // of the first eight words.
    let mut faults = Vec::new();
    for addr in 0..8u32 {
        for bit in 0..16u8 {
            faults.push(FaultSpec::single(
                FaultLocation::Memory { addr, bit },
                Trigger::PreRuntime,
            ));
        }
    }
    let n = faults.len();
    let campaign = Campaign::builder("port-demo")
        .target_system("accumulator-8")
        .technique(goofi::core::campaign::Technique::SwifiPreRuntime)
        .workload(workload)
        .output(OutputRegion::Memory { addr: 32, len: 1 })
        .termination(Termination {
            max_instructions: 1_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()?;

    // The *same* faultinjector_swifi that drives the Thor target drives the
    // new machine — no algorithm changes, just the port above.
    let mut target = AccumulatorMachine::new();
    let monitor = ProgressMonitor::new(n);
    let result =
        algorithms::faultinjector_swifi(&mut target, &campaign, &monitor, &mut NullEnvironment)?;

    let classified = classify_campaign(&result.reference, &result.records);
    let stats = CampaignStats::from_classified(&classified);
    println!(
        "{}",
        report::full_report("exhaustive SWIFI on the freshly ported target", &stats)
    );
    println!(
        "reference output: {:?} (11+22+33+44 = 110)",
        result.reference.state.outputs
    );
    Ok(())
}
