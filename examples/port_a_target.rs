//! Porting GOOFI to a new target system — the paper's Figure 3 workflow.
//!
//! The paper's `Framework` class is a template whose methods all read
//! "Write your code here!". This example plays the role of the porting
//! programmer on day one of the RV32I port: it wires the *real* `riscv`
//! core into the `TargetAccess` building blocks — but only the minimal
//! ones. No native snapshot, no copy-on-write cleverness, and `step_traced`
//! still says "Write your code here!".
//!
//! Three things then come for free, which is the paper's genericity claim
//! made runnable:
//!
//! 1. [`goofi::core::conformance::ReadoutFallback`] wraps the fresh port
//!    and supplies `snapshot`/`restore` generically from the port's own
//!    scan chains and memory access;
//! 2. the [`goofi::core::conformance`] suite — the same table of checks the
//!    shipped Thor and RV32I ports must pass — proves the port upholds the
//!    `TargetAccess` contract;
//! 3. the *same* `faultinjector_swifi` that drives Thor campaigns runs an
//!    exhaustive pre-runtime campaign against the new CPU unchanged.
//!
//! The shipped `goofi-riscv` crate is where this port ends up after
//! polishing (native CoW snapshots, access tracing, real cold reset); this
//! example is the honest first milestone on the way there.
//!
//! ```sh
//! cargo run --example port_a_target
//! ```

use goofi::analysis::{classify_campaign, report, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, Technique, Termination, WorkloadImage};
use goofi::core::conformance::{run_suite, ConformanceSpec, ReadoutFallback};
use goofi::core::fault::{FaultLocation, FaultSpec};
use goofi::core::monitor::ProgressMonitor;
use goofi::core::trigger::Trigger;
use goofi::core::{DetectionInfo, GoofiError, RunBudget, RunEvent, TargetAccess};
use goofi::envsim::NullEnvironment;
use goofi::scanchain::{BitVec, ChainLayout, TestCard};
use riscv::{Cpu, CpuConfig, Image, StopReason, PORT_COUNT};

/// Day one of the RV32I port: the real core behind the real scan-chain
/// test card, and nothing else. Contrast with `goofi_riscv::RiscvTarget`,
/// which adds native copy-on-write snapshots, access tracing and true
/// cold-reset semantics on top of exactly this skeleton.
struct FreshRv32iPort {
    card: TestCard<Cpu>,
}

impl FreshRv32iPort {
    fn new() -> Self {
        FreshRv32iPort {
            card: TestCard::new(Cpu::new(CpuConfig::default())),
        }
    }

    fn map_stop(&mut self, stop: StopReason) -> RunEvent {
        match stop {
            StopReason::Halted => RunEvent::Halted,
            StopReason::Detected(d) => RunEvent::Detected(DetectionInfo {
                mechanism: d.mechanism().to_string(),
                code: d.encode(),
            }),
            StopReason::DebugEvent(ev) => {
                // Unlatch so execution can continue after injection.
                self.card.target_mut().debug_unit_mut().clear();
                RunEvent::Breakpoint {
                    at_instruction: ev.at_instruction,
                    at_cycle: ev.at_cycle,
                }
            }
            StopReason::Sync { iteration, .. } => RunEvent::IterationBoundary { iteration },
            StopReason::Timeout => RunEvent::Timeout,
            StopReason::InstrLimit => RunEvent::BudgetExhausted,
        }
    }
}

fn scan_err(e: goofi::scanchain::ScanError) -> GoofiError {
    GoofiError::Scan(e)
}

fn mem_err(e: riscv::MemoryError) -> GoofiError {
    GoofiError::Target(format!("memory access failed: {e}"))
}

// The porting step: each building block is a one-to-few-line mapping onto
// the core or the test card. Anything not needed yet keeps the template's
// "Write your code here!" default — including `snapshot`/`restore`, which
// a fresh port of real hardware rarely can implement natively.
impl TargetAccess for FreshRv32iPort {
    fn target_name(&self) -> &str {
        "rv32i"
    }

    fn init_test_card(&mut self) -> goofi::core::Result<()> {
        self.card.init().map_err(scan_err)
    }

    fn load_workload(&mut self, image: &WorkloadImage) -> goofi::core::Result<()> {
        // WorkloadImage fields are in the target's native units; an RV32I
        // entry point is a byte address.
        let rv_image = Image {
            words: image.words.clone(),
            code_words: image.code_words,
            entry: image.entry,
        };
        self.card
            .target_mut()
            .load_image(&rv_image)
            .map_err(mem_err)
    }

    fn reset_target(&mut self) -> goofi::core::Result<()> {
        self.card.target_mut().reset();
        Ok(())
    }

    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi::core::Result<()> {
        self.card
            .target_mut()
            .memory_mut()
            .load_block(addr, data)
            .map_err(mem_err)
    }

    fn read_memory(&mut self, addr: u32, len: usize) -> goofi::core::Result<Vec<u32>> {
        self.card
            .target()
            .memory()
            .read_block(addr, len)
            .map_err(mem_err)
    }

    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi::core::Result<()> {
        self.card
            .target_mut()
            .memory_mut()
            .flip_bit(addr, bit)
            .map_err(mem_err)
    }

    fn memory_size(&self) -> u32 {
        self.card.target().memory().len() as u32
    }

    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi::core::Result<()> {
        let condition = trigger
            .to_debug_condition()
            .ok_or_else(|| GoofiError::Config("pre-runtime triggers need no breakpoint".into()))?;
        self.card.target_mut().debug_unit_mut().arm(condition);
        Ok(())
    }

    fn clear_breakpoints(&mut self) -> goofi::core::Result<()> {
        self.card.target_mut().debug_unit_mut().disarm_all();
        Ok(())
    }

    fn run_workload(&mut self, budget: RunBudget) -> goofi::core::Result<RunEvent> {
        let stop = self.card.target_mut().run(budget.max_instructions);
        Ok(self.map_stop(stop))
    }

    fn step_instruction(&mut self) -> goofi::core::Result<Option<RunEvent>> {
        let stop = self.card.target_mut().step();
        Ok(stop.map(|s| self.map_stop(s)))
    }

    fn chain_layouts(&self) -> Vec<ChainLayout> {
        riscv::ChainSet::names()
            .iter()
            .filter_map(|n| self.card.target().chains().by_name(n).cloned())
            .collect()
    }

    fn read_scan_chain(&mut self, chain: &str) -> goofi::core::Result<BitVec> {
        self.card.read_chain(chain).map_err(scan_err)
    }

    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi::core::Result<()> {
        self.card
            .write_chain(chain, bits)
            .map(|_| ())
            .map_err(scan_err)
    }

    fn write_input_ports(&mut self, inputs: &[u32]) -> goofi::core::Result<()> {
        for (port, value) in inputs.iter().enumerate().take(PORT_COUNT) {
            self.card.target_mut().set_in_port(port, *value);
        }
        Ok(())
    }

    fn read_output_ports(&mut self) -> goofi::core::Result<Vec<u32>> {
        Ok((0..PORT_COUNT)
            .map(|p| self.card.target().out_port(p))
            .collect())
    }

    fn instructions_executed(&self) -> u64 {
        self.card.target().instructions()
    }

    fn cycles_executed(&self) -> u64 {
        self.card.target().cycles()
    }

    fn iterations_completed(&self) -> u64 {
        self.card.target().iterations()
    }

    fn step_traced(
        &mut self,
    ) -> goofi::core::Result<(Option<RunEvent>, goofi::core::preinject::StepAccess)> {
        Err(GoofiError::Unimplemented("step_traced")) // Write your code here!
    }
}

/// The RV32I workload library speaks `riscv::Image`; the framework speaks
/// `WorkloadImage`. Same fields, target-native units on both sides.
fn to_workload_image(w: &workloads::RiscvWorkload) -> WorkloadImage {
    WorkloadImage {
        name: w.name.clone(),
        words: w.image.words.clone(),
        code_words: w.image.code_words,
        entry: w.image.entry,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let memcpy = workloads::riscv_memcpy();
    let workload = to_workload_image(&memcpy);

    // Milestone 1: generic snapshot support. The fresh port never
    // implements `snapshot`/`restore`; the readout fallback builds both
    // from the scan chains and memory access the port already has.
    let mut target = ReadoutFallback::new(FreshRv32iPort::new());

    // Milestone 2: prove the contract. This is the same table-driven suite
    // the shipped Thor and RV32I ports are held to — if it passes, every
    // campaign algorithm in the tool will drive this port unchanged.
    let mut spec = ConformanceSpec::new("fresh rv32i port via readout fallback", workload.clone());
    spec.expect_name = Some("rv32i".into());
    spec.expect_snapshot = Some(true); // supplied by the fallback
    spec.expect_prefix_safe = Some(true);
    // Scan chains cannot reach the core's private execution counters, so a
    // readout restore brings state back but not `instructions_executed`.
    spec.counters_restored = false;
    let conformance = run_suite(&mut target, &spec);
    println!("{conformance}");
    assert!(conformance.passed(), "fresh port violates the contract");

    // Milestone 3: a real campaign. One pre-runtime flip per bit of the
    // copy loop's first eight code words, driven by the *same*
    // faultinjector_swifi that runs Thor campaigns.
    let mut faults = Vec::new();
    for addr in 0..8u32 {
        for bit in 0..32u8 {
            faults.push(FaultSpec::single(
                FaultLocation::Memory { addr, bit },
                Trigger::PreRuntime,
            ));
        }
    }
    let n = faults.len();
    let campaign = Campaign::builder("port-demo")
        .target_system("rv32i")
        .technique(Technique::SwifiPreRuntime)
        .workload(workload)
        .output(OutputRegion::Memory {
            addr: workloads::RISCV_MEMCPY_DST,
            len: workloads::RISCV_MEMCPY_WORDS + 1,
        })
        .termination(Termination {
            max_instructions: 100_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()?;

    let monitor = ProgressMonitor::new(n);
    let result =
        algorithms::faultinjector_swifi(&mut target, &campaign, &monitor, &mut NullEnvironment)?;

    let classified = classify_campaign(&result.reference, &result.records);
    let stats = CampaignStats::from_classified(&classified);
    println!(
        "{}",
        report::full_report("exhaustive SWIFI on the freshly ported RV32I core", &stats)
    );
    println!(
        "reference output: {:?} (copied words + byte checksum)",
        result.reference.state.outputs
    );
    Ok(())
}
