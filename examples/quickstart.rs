//! Quickstart: a minimal SCIFI fault-injection campaign, end to end.
//!
//! Covers the paper's four phases in ~80 lines: describe the target system
//! (configuration), build a campaign of random bit flips (set-up), run it
//! (fault injection), and classify + report the outcomes (analysis).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use goofi::analysis::{classify_campaign, report, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Termination};
use goofi::core::monitor::ProgressMonitor;
use goofi::envsim::NullEnvironment;
use goofi::goofi_thor::ThorTarget;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Configuration phase: describe the target system. -----------------
    let mut target = ThorTarget::default();
    let target_data = TargetSystemData::from_target(&target, "Thor-RD-like CPU simulator");
    println!(
        "target `{}`: {} scan locations, {} words of memory",
        target_data.name,
        target_data.locations.len(),
        target_data.memory_words,
    );

    // --- Set-up phase: workload, fault space, campaign. --------------------
    let workload = workloads::by_name("bubblesort").expect("workload exists");
    let space = target_data.fault_space(None, 0..2_000);
    println!(
        "fault space: {} injectable bits x 2000 time points",
        space.bit_count()
    );
    let faults = space.sample_campaign(200, &mut StdRng::seed_from_u64(2003));

    let campaign = Campaign::builder("quickstart")
        .target_system(&target_data.name)
        .workload(goofi::core::campaign::WorkloadImage {
            name: workload.name.clone(),
            words: workload.image.words.clone(),
            code_words: workload.image.code_words,
            entry: workload.image.entry,
        })
        .observe_chains(["internal"])
        .output(match workload.output {
            workloads::OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
            workloads::OutputSpec::Ports => OutputRegion::Ports,
        })
        .termination(Termination {
            max_instructions: 200_000,
            max_iterations: None,
        })
        .faults(faults)
        .build()?;

    // --- Fault-injection phase. --------------------------------------------
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let result =
        algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut NullEnvironment)?;
    println!(
        "ran {} experiments (reference terminated: {})",
        result.records.len(),
        result.reference.termination,
    );

    // --- Analysis phase. ----------------------------------------------------
    let classified = classify_campaign(&result.reference, &result.records);
    let stats = CampaignStats::from_classified(&classified);
    println!("\n{}", report::full_report("quickstart campaign", &stats));
    Ok(())
}
