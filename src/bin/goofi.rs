//! `goofi` — the command-line front end of the tool.
//!
//! The original GOOFI drove campaigns from a Java Swing GUI (paper Figures
//! 5–7); this binary is the equivalent operator interface: it walks the
//! same four phases against a campaign database file.
//!
//! ```text
//! goofi targets                         # configuration phase: show the target system
//! goofi workloads                       # available workloads
//! goofi new <db> --name c1 --workload bubblesort --experiments 200
//!                                       # set-up phase: store campaign in <db>
//! goofi run <db> --name c1              # fault-injection phase
//! goofi report <db> --name c1           # analysis phase
//! goofi sql <db> "SELECT ..."           # ad-hoc analysis queries
//! ```

use goofi::analysis::{queries, report};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Technique, Termination};
use goofi::core::journal::ExperimentJournal;
use goofi::core::link::{UnreliableTarget, VerifiedTarget};
use goofi::core::logging::LoggingMode;
use goofi::core::monitor::ProgressMonitor;
use goofi::core::policy::{Backoff, ExperimentPolicy, WatchdogBudget};
use goofi::core::service::{
    self, ChaosConfig, FaultNet, NetFaultConfig, RealNet, Response, Scheduler, ServiceConfig,
    Transport, WorkerArgs, WorkerCommand,
};
use goofi::core::supervisor::WedgeableTarget;
use goofi::core::telemetry::{JsonlSink, MetricsSnapshot, RingSink, Stage, Telemetry, TraceSink};
use goofi::core::{dbio, runner};
use goofi::core::{GoofiError, TargetAccess};
use goofi::envsim::{DcMotor, Environment, JetEngine, NullEnvironment, WaterTank};
use goofi::goofi_riscv::RiscvTarget;
use goofi::goofi_thor::ThorTarget;
use goofi::goofidb::Database;
use goofi::scanchain::{LinkFaultConfig, WedgeConfig};
use goofi::targets::TargetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;

/// Signal plumbing: SIGINT/SIGTERM set a flag the long-running commands
/// poll, so an interrupted campaign stops through the normal error path —
/// journals are closed cleanly and the flight recorder is dumped — instead
/// of the process dying mid-write.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::Release);
    }

    /// Installs the SIGINT/SIGTERM handlers (no-op outside unix).
    pub fn install() {
        #[cfg(unix)]
        {
            extern "C" {
                fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
            }
            const SIGINT: i32 = 2;
            const SIGTERM: i32 = 15;
            unsafe {
                signal(SIGINT, on_signal);
                signal(SIGTERM, on_signal);
            }
        }
    }

    /// Whether a SIGINT/SIGTERM has arrived.
    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::Acquire)
    }
}

/// Spawns a watcher that turns an incoming SIGINT/SIGTERM into a clean
/// campaign stop via [`ProgressMonitor::stop`]; the run then unwinds
/// through the regular error path (journal close + flight-recorder dump).
fn stop_on_signal(monitor: &ProgressMonitor) {
    let monitor = monitor.clone();
    std::thread::spawn(move || loop {
        if signals::interrupted() {
            monitor.stop();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

fn main() -> ExitCode {
    signals::install();
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("goofi: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(());
    };
    match command.as_str() {
        "targets" => cmd_targets(),
        "workloads" => cmd_workloads(),
        "new" => cmd_new(&args[1..]),
        "run" => cmd_run(&args[1..]),
        "resume" => cmd_resume(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "worker" => cmd_worker(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "report" => cmd_report(&args[1..]),
        "sql" => cmd_sql(&args[1..]),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `goofi help`)")),
    }
}

fn print_usage() {
    println!(
        "GOOFI - generic object-oriented fault injection tool\n\n\
         usage:\n  \
         goofi targets\n  \
         goofi workloads\n  \
         goofi new <db> --name <campaign> --workload <name> [--target thor|riscv]\n        \
            [--experiments N]\n        \
            [--seed S] [--technique scifi|swifi-pre|swifi-run|pin] [--time-window A:B]\n        \
            [--max-instr N] [--max-iterations N] [--detail] [--with-caches]\n        \
            [--on-error failfast|skip|retry-skip|retry-fail] [--retries N]\n        \
            [--backoff-ms A:B] [--watchdog-cycles N] [--watchdog-ms N]\n        \
            [--revalidate-every N] [--health-check-every N]\n  \
         goofi run <db> --name <campaign> [--target thor|riscv] [--workers N]\n        \
            [--env none|motor|tank|jet]\n        \
            [--journal <file>] [--link-faults <spec>] [--verify-reads]\n        \
            [--health-check-every N] [--wedge <spec>] [--trace <file>] [--metrics]\n        \
            [--no-snapshot]\n  \
         goofi resume <db> --name <campaign> --journal <file> [--target thor|riscv]\n        \
            [--workers N]\n        \
            [--env none|motor|tank|jet] [--link-faults <spec>] [--verify-reads]\n        \
            [--health-check-every N] [--wedge <spec>] [--trace <file>] [--metrics]\n  \
         goofi serve <db> [--addr HOST:PORT] [--workers N] [--lease-ms N]\n        \
            [--poison-after N] [--chaos kill-after=N,seed=S[,kills=K][,mode=exit|stall]]\n        \
            [--net-chaos drop=P,corrupt=P,...,seed=S | at=N,kind=K,seed=S]\n  \
         goofi submit <addr> --name <campaign> [--target thor|riscv] [--workers N] [--watch]\n  \
         goofi submit <addr> --job <id> --watch | --status | --shutdown\n  \
         goofi worker --db <db> --campaign <name> --shard K --range A:B --journal <file>\n        \
            [--attempt N] [--chaos <spec>] [--net-chaos <spec>]   (spawned by `goofi serve`)\n  \
         goofi fsck <db> [--name <campaign> --journal <file>] [--repair]\n  \
         goofi report <db> --name <campaign> [--timings <trace>] [--trace <file>]\n  \
         goofi sql <db> \"<SELECT ...>\""
    );
}

fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            // Boolean flags have no value; detect by peeking.
            let boolean = matches!(
                name,
                "detail"
                    | "with-caches"
                    | "verify-reads"
                    | "metrics"
                    | "watch"
                    | "status"
                    | "shutdown"
                    | "repair"
                    | "no-snapshot"
            );
            if boolean {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("--{name} needs a value"))?;
                flags.insert(name.to_string(), value.clone());
                i += 2;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn load_db(path: &str) -> Result<Database, String> {
    if !Path::new(path).exists() {
        let mut db = Database::new();
        dbio::init_schema(&mut db).map_err(|e| e.to_string())?;
        return Ok(db);
    }
    // Checksummed load; corruption points at `goofi fsck --repair`.
    dbio::load_database(&goofi::core::vfs::RealFs, path).map_err(|e| e.to_string())
}

fn save_db(path: &str, db: &Database) -> Result<(), String> {
    // Atomic: a crash mid-save never leaves a torn database file.
    dbio::save_database(&goofi::core::vfs::RealFs, path, db).map_err(|e| e.to_string())
}

/// Builds the campaign's resilience policy from command-line flags.
fn policy_from_flags(flags: &HashMap<String, String>) -> Result<ExperimentPolicy, String> {
    let mut policy = match flags.get("on-error").map(String::as_str) {
        None | Some("failfast") => ExperimentPolicy::fail_fast(),
        Some("skip") => ExperimentPolicy::skip_and_continue(),
        Some("retry-skip") => ExperimentPolicy::retry_then_skip(3),
        Some("retry-fail") => ExperimentPolicy::retry_then_fail(3),
        Some(other) => return Err(format!("unknown --on-error `{other}`")),
    };
    if let Some(v) = flags.get("retries") {
        policy.max_retries = v.parse().map_err(|_| "bad --retries")?;
    }
    if let Some(v) = flags.get("backoff-ms") {
        let (a, b) = v.split_once(':').ok_or("bad --backoff-ms, use A:B")?;
        policy.backoff = Backoff::exponential(
            a.parse().map_err(|_| "bad --backoff-ms start")?,
            b.parse().map_err(|_| "bad --backoff-ms cap")?,
        );
    }
    let mut watchdog = WatchdogBudget::default();
    if let Some(v) = flags.get("watchdog-cycles") {
        watchdog.max_cycles = Some(v.parse().map_err(|_| "bad --watchdog-cycles")?);
    }
    if let Some(v) = flags.get("watchdog-ms") {
        watchdog.max_wall_ms = Some(v.parse().map_err(|_| "bad --watchdog-ms")?);
    }
    if let Some(v) = flags.get("revalidate-every") {
        policy = policy.with_revalidation(v.parse().map_err(|_| "bad --revalidate-every")?);
    }
    if let Some(v) = flags.get("health-check-every") {
        policy = policy.with_health_check(v.parse().map_err(|_| "bad --health-check-every")?);
    }
    Ok(policy.with_watchdog(watchdog))
}

/// Applies the `--health-check-every` override to a loaded campaign, so
/// supervision can be switched on (or its cadence changed) at run time
/// without re-creating the campaign.
fn apply_health_check_override(
    campaign: &mut Campaign,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    if let Some(v) = flags.get("health-check-every") {
        campaign.policy = campaign
            .policy
            .with_health_check(v.parse().map_err(|_| "bad --health-check-every")?);
    }
    Ok(())
}

/// Parses the `--wedge` target-misbehaviour spec shared by `run` and
/// `resume` (see [`WedgeConfig::decode`] for the `key=value` grammar).
fn wedge_flag(flags: &HashMap<String, String>) -> Result<Option<WedgeConfig>, String> {
    match flags.get("wedge") {
        Some(spec) => Ok(Some(
            WedgeConfig::decode(spec).ok_or_else(|| format!("bad --wedge spec `{spec}`"))?,
        )),
        None => Ok(None),
    }
}

/// Parses the `--link-faults`/`--verify-reads` transport flags shared by
/// `run` and `resume`.
fn link_flags(flags: &HashMap<String, String>) -> Result<(Option<LinkFaultConfig>, bool), String> {
    let link = match flags.get("link-faults") {
        Some(spec) => Some(
            LinkFaultConfig::decode(spec)
                .ok_or_else(|| format!("bad --link-faults spec `{spec}`"))?,
        ),
        None => None,
    };
    Ok((link, flags.contains_key("verify-reads")))
}

/// Builds the run's telemetry from the `--trace`/`--metrics` flags shared
/// by `run` and `resume`: disabled when neither is given; otherwise a
/// JSONL trace sink (when `--trace <file>` names one) plus an in-memory
/// flight recorder holding the last
/// [`goofi::core::telemetry::FLIGHT_RECORDER_SPANS`] spans for a crash dump.
fn telemetry_from_flags(flags: &HashMap<String, String>) -> Result<Telemetry, String> {
    let trace_path = flags.get("trace");
    if trace_path.is_none() && !flags.contains_key("metrics") {
        return Ok(Telemetry::disabled());
    }
    let mut sinks: Vec<Arc<dyn TraceSink>> = Vec::new();
    if let Some(path) = trace_path {
        let sink = JsonlSink::create(Path::new(path))
            .map_err(|e| format!("creating trace file {path}: {e}"))?;
        sinks.push(Arc::new(sink));
    }
    sinks.push(Arc::new(RingSink::new(
        goofi::core::telemetry::FLIGHT_RECORDER_SPANS,
    )));
    Ok(Telemetry::with_sinks(sinks))
}

/// Dumps the flight recorder next to the run's journal (falling back to the
/// trace file, then the database) after a fatal campaign error, and folds
/// the dump location into the error message.
fn dump_flight(
    tel: &Telemetry,
    flags: &HashMap<String, String>,
    db_path: &str,
    msg: String,
) -> String {
    if !tel.is_enabled() {
        return msg;
    }
    let base = flags
        .get("journal")
        .or_else(|| flags.get("trace"))
        .map_or(db_path, String::as_str);
    let path = format!("{base}.flight");
    match tel.dump_flight(Path::new(&path)) {
        Ok(n) if n > 0 => format!("{msg}\nflight recorder: last {n} span(s) dumped to {path}"),
        Ok(_) => msg,
        Err(e) => format!("{msg}\nflight recorder dump to {path} failed: {e}"),
    }
}

/// Parses the optional `--target` flag against the target registry.
fn target_flag(flags: &HashMap<String, String>) -> Result<Option<TargetKind>, String> {
    match flags.get("target") {
        Some(v) => TargetKind::parse(v)
            .map(Some)
            .ok_or_else(|| format!("unknown --target `{v}` (see `goofi targets`)")),
        None => Ok(None),
    }
}

/// Resolves the target system a loaded campaign runs on. The campaign's
/// stored `target_system` owns the choice; an explicit `--target` flag is
/// a cross-check that fails loudly on mismatch rather than an override,
/// since the fault list was sampled against one chain layout.
fn campaign_target(
    campaign: &Campaign,
    flags: &HashMap<String, String>,
) -> Result<TargetKind, String> {
    let stored = TargetKind::from_system_name(&campaign.target_system).ok_or_else(|| {
        format!(
            "campaign `{}` targets unknown system `{}`",
            campaign.name, campaign.target_system,
        )
    })?;
    if let Some(asked) = target_flag(flags)? {
        if asked != stored {
            return Err(format!(
                "campaign `{}` targets `{}`, not `{}`",
                campaign.name,
                stored.flag(),
                asked.flag(),
            ));
        }
    }
    Ok(stored)
}

/// Assembles the target decorator stack: an optional wedge-simulating
/// [`WedgeableTarget`] closest to the hardware, an optional fault-injecting
/// [`UnreliableTarget`] above it, and an optional [`VerifiedTarget`]
/// recovery layer on top. `worker` offsets the wedge and link-fault seeds
/// so parallel workers draw distinct (but still deterministic) streams.
fn decorate_target(
    kind: TargetKind,
    wedge: Option<WedgeConfig>,
    link: Option<LinkFaultConfig>,
    verify: bool,
    monitor: &ProgressMonitor,
    worker: u64,
) -> Box<dyn TargetAccess> {
    let base = kind.build();
    let wedged: Box<dyn TargetAccess> = match wedge {
        Some(mut cfg) => {
            cfg.seed = cfg.seed.wrapping_add(worker);
            Box::new(WedgeableTarget::new(base, cfg))
        }
        None => Box::new(base),
    };
    let inner: Box<dyn TargetAccess> = match link {
        Some(mut cfg) => {
            cfg.seed = cfg.seed.wrapping_add(worker);
            Box::new(UnreliableTarget::new(wedged, cfg))
        }
        None => wedged,
    };
    if verify {
        Box::new(VerifiedTarget::new(inner).with_monitor(monitor.clone()))
    } else {
        inner
    }
}

/// Stores whatever a failed campaign completed before erroring out, so an
/// aborted run never throws away finished experiments.
fn salvage_partial(db: &mut Database, db_path: &str, err: GoofiError) -> String {
    match err {
        GoofiError::ExperimentFailed { failure, partial } => {
            let salvaged = partial.records.len();
            let stored = dbio::store_result(db, &partial)
                .map_err(|e| e.to_string())
                .and_then(|()| save_db(db_path, db));
            match stored {
                Ok(()) => {
                    format!("{failure}; salvaged {salvaged} completed record(s) to {db_path}")
                }
                Err(e) => format!("{failure}; salvaging partial results also failed: {e}"),
            }
        }
        GoofiError::TargetOffline { context, partial } => {
            let salvaged = partial.records.len();
            let what = format!("target offline: recovery ladder exhausted during {context}");
            let stored = dbio::store_result(db, &partial)
                .map_err(|e| e.to_string())
                .and_then(|()| save_db(db_path, db));
            match stored {
                Ok(()) => format!("{what}; salvaged {salvaged} completed record(s) to {db_path}"),
                Err(e) => format!("{what}; salvaging partial results also failed: {e}"),
            }
        }
        other => other.to_string(),
    }
}

fn cmd_targets() -> Result<(), String> {
    for (i, kind) in TargetKind::ALL.into_iter().enumerate() {
        if i > 0 {
            println!();
        }
        let target = kind.build();
        let data = TargetSystemData::from_target(&*target, kind.description());
        println!(
            "target system: {} (--target {}): {}",
            data.name,
            kind.flag(),
            kind.description(),
        );
        println!("memory: {} words", data.memory_words);
        let mut per_chain: HashMap<&str, (usize, usize)> = HashMap::new();
        for (chain, _, width, rw) in &data.locations {
            let entry = per_chain.entry(chain.as_str()).or_insert((0, 0));
            entry.0 += width;
            if *rw {
                entry.1 += width;
            }
        }
        let mut chains: Vec<_> = per_chain.into_iter().collect();
        chains.sort();
        println!("\n{:<12} {:>10} {:>16}", "chain", "bits", "writable bits");
        for (chain, (bits, writable)) in chains {
            println!("{chain:<12} {bits:>10} {writable:>16}");
        }
    }
    Ok(())
}

fn cmd_workloads() -> Result<(), String> {
    let kind_str = |kind: &workloads::WorkloadKind| match kind {
        workloads::WorkloadKind::Terminating => "terminating",
        workloads::WorkloadKind::ControlLoop => "control-loop",
    };
    println!("{:<14} {:<8} {:<12} description", "name", "target", "kind");
    for w in workloads::all() {
        println!(
            "{:<14} {:<8} {:<12} {}",
            w.name,
            TargetKind::Thor.flag(),
            kind_str(&w.kind),
            w.description,
        );
    }
    for w in workloads::riscv_all() {
        println!(
            "{:<14} {:<8} {:<12} {}",
            w.name,
            TargetKind::Riscv.flag(),
            kind_str(&w.kind),
            w.description,
        );
    }
    Ok(())
}

fn cmd_new(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("new: missing <db> path")?;
    let name = flags.get("name").ok_or("new: --name is required")?;
    let workload_name = flags.get("workload").ok_or("new: --workload is required")?;
    let kind = target_flag(&flags)?.unwrap_or_default();
    // Unified view over the per-target workload libraries: everything the
    // set-up phase needs is an image plus kind and output location.
    struct PickedWorkload {
        name: String,
        words: Vec<u32>,
        code_words: u32,
        entry: u32,
        kind: workloads::WorkloadKind,
        output: workloads::OutputSpec,
    }
    let wl = match kind {
        TargetKind::Thor => workloads::by_name(workload_name).map(|w| PickedWorkload {
            name: w.name,
            words: w.image.words,
            code_words: w.image.code_words,
            entry: w.image.entry,
            kind: w.kind,
            output: w.output,
        }),
        TargetKind::Riscv => workloads::riscv_by_name(workload_name).map(|w| PickedWorkload {
            name: w.name,
            words: w.image.words,
            code_words: w.image.code_words,
            entry: w.image.entry,
            kind: w.kind,
            output: w.output,
        }),
    }
    .ok_or_else(|| {
        format!("unknown workload `{workload_name}` for --target {kind} (see `goofi workloads`)")
    })?;
    let experiments: usize = flags
        .get("experiments")
        .map_or(Ok(100), |v| v.parse().map_err(|_| "bad --experiments"))?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(2003), |v| v.parse().map_err(|_| "bad --seed"))?;
    let technique = match flags.get("technique").map(String::as_str) {
        None | Some("scifi") => Technique::Scifi,
        Some("swifi-pre") => Technique::SwifiPreRuntime,
        Some("swifi-run") => Technique::SwifiRuntime,
        Some("pin") => Technique::PinLevel,
        Some(other) => return Err(format!("unknown technique `{other}`")),
    };
    let max_instructions: u64 = flags
        .get("max-instr")
        .map_or(Ok(1_000_000), |v| v.parse().map_err(|_| "bad --max-instr"))?;
    let max_iterations: Option<u64> = match flags.get("max-iterations") {
        Some(v) => Some(v.parse().map_err(|_| "bad --max-iterations")?),
        None => match wl.kind {
            workloads::WorkloadKind::ControlLoop => Some(200),
            workloads::WorkloadKind::Terminating => None,
        },
    };

    let target = kind.build();
    let data = TargetSystemData::from_target(&*target, kind.description());
    let time_window = match flags.get("time-window") {
        Some(v) => {
            let (a, b) = v.split_once(':').ok_or("bad --time-window, use A:B")?;
            let a: u64 = a.parse().map_err(|_| "bad --time-window start")?;
            let b: u64 = b.parse().map_err(|_| "bad --time-window end")?;
            a..b
        }
        None => 0..10_000,
    };

    let mut rng = StdRng::seed_from_u64(seed);
    let faults = match technique {
        Technique::Scifi => {
            let mut space = data.fault_space(None, time_window);
            if !flags.contains_key("with-caches") {
                space.scan_cells.retain(|(chain, _, _)| chain == "internal");
            } else {
                space.scan_cells.retain(|(chain, _, _)| {
                    matches!(chain.as_str(), "internal" | "icache" | "dcache")
                });
            }
            space.sample_campaign(experiments, &mut rng)
        }
        Technique::PinLevel => {
            // Pins reached through the boundary chain (the writable cells
            // are the input pins).
            let mut space = data.fault_space(None, time_window);
            space.scan_cells.retain(|(chain, _, _)| chain == "boundary");
            space.sample_campaign(experiments, &mut rng)
        }
        Technique::SwifiRuntime => {
            let space = goofi::core::fault::FaultSpace {
                scan_cells: vec![],
                memory: Some(0..wl.words.len() as u32),
                time_window,
            };
            space.sample_campaign(experiments, &mut rng)
        }
        Technique::SwifiPreRuntime => {
            let space = goofi::core::fault::FaultSpace {
                scan_cells: vec![],
                memory: Some(0..wl.words.len() as u32),
                time_window: 0..1,
            };
            space
                .sample_campaign(experiments, &mut rng)
                .into_iter()
                .map(|mut f| {
                    f.trigger = goofi::core::trigger::Trigger::PreRuntime;
                    f
                })
                .collect()
        }
    };

    let campaign = Campaign::builder(name.clone())
        .target_system(&data.name)
        .technique(technique)
        .workload(goofi::core::campaign::WorkloadImage {
            name: wl.name.clone(),
            words: wl.words.clone(),
            code_words: wl.code_words,
            entry: wl.entry,
        })
        .observe_chains(["internal"])
        .output(match wl.output {
            workloads::OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
            workloads::OutputSpec::Ports => OutputRegion::Ports,
        })
        .termination(Termination {
            max_instructions,
            max_iterations,
        })
        .logging(if flags.contains_key("detail") {
            LoggingMode::Detail
        } else {
            LoggingMode::Normal
        })
        .policy(policy_from_flags(&flags)?)
        .faults(faults)
        .build()
        .map_err(|e| e.to_string())?;

    let mut db = load_db(db_path)?;
    dbio::store_target_system(&mut db, &data).map_err(|e| e.to_string())?;
    dbio::store_campaign(&mut db, &campaign).map_err(|e| e.to_string())?;
    save_db(db_path, &db)?;
    println!(
        "campaign `{name}`: {} experiments on `{}` (target {}) stored in {db_path}",
        campaign.experiment_count(),
        workload_name,
        kind.flag(),
    );
    Ok(())
}

fn make_env(kind: Option<&str>) -> Result<Box<dyn Environment>, String> {
    Ok(match kind {
        None | Some("none") => Box::new(NullEnvironment),
        Some("motor") => Box::new(DcMotor::new()),
        Some("tank") => Box::new(WaterTank::new()),
        Some("jet") => Box::new(JetEngine::new()),
        Some(other) => return Err(format!("unknown environment `{other}`")),
    })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("run: missing <db> path")?;
    let name = flags.get("name").ok_or("run: --name is required")?;
    let workers: usize = flags
        .get("workers")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "bad --workers"))?;

    let mut db = load_db(db_path)?;
    // The paper's readCampaignData step.
    let mut campaign = dbio::load_campaign(&db, name).map_err(|e| e.to_string())?;
    apply_health_check_override(&mut campaign, &flags)?;
    let campaign = campaign;
    let kind = campaign_target(&campaign, &flags)?;
    let tel = telemetry_from_flags(&flags)?;
    let monitor = ProgressMonitor::with_telemetry(campaign.experiment_count(), tel.clone());
    stop_on_signal(&monitor);
    println!(
        "running campaign `{name}`: {} experiments on {} ({}, {:?} logging)",
        campaign.experiment_count(),
        kind.system_name(),
        campaign.technique.encode(),
        campaign.logging,
    );

    let env_kind = flags.get("env").cloned();
    make_env(env_kind.as_deref())?; // validate before the workers clone it
    let (link, verify) = link_flags(&flags)?;
    let wedge = wedge_flag(&flags)?;
    let journal_path = flags.get("journal").cloned();
    let snapshots = !flags.contains_key("no-snapshot");
    let started = std::time::Instant::now();
    let result = if workers <= 1 {
        let mut target = decorate_target(kind, wedge, link, verify, &monitor, 0);
        let mut env = make_env(env_kind.as_deref())?;
        let mut journal = match &journal_path {
            Some(p) => {
                Some(ExperimentJournal::create(p, &campaign.name).map_err(|e| e.to_string())?)
            }
            None => None,
        };
        // The golden cache lives next to the journal; a journal-less run
        // has nowhere durable to keep it.
        let cache = journal_path.as_ref().map(|p| {
            goofi::core::golden::GoldenCache::new(
                &goofi::core::vfs::RealFs,
                Path::new(p.as_str()),
                &campaign,
                env.name(),
            )
        });
        algorithms::run_campaign_journaled_opts(
            &mut target,
            &campaign,
            &monitor,
            env.as_mut(),
            journal.as_mut(),
            cache.as_ref(),
            snapshots,
        )
    } else {
        let env_kind2 = env_kind.clone();
        let mut journal = match &journal_path {
            Some(p) => {
                Some(ExperimentJournal::create(p, &campaign.name).map_err(|e| e.to_string())?)
            }
            None => None,
        };
        let worker_seq = std::sync::atomic::AtomicU64::new(0);
        let make_monitor = monitor.clone();
        runner::run_campaign_parallel_journaled_opts(
            move || {
                let worker = worker_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                decorate_target(kind, wedge, link, verify, &make_monitor, worker)
            },
            Some(move || {
                // Validated before the workers started; a NullEnvironment
                // fallback keeps a worker thread from panicking regardless.
                make_env(env_kind2.as_deref()).unwrap_or_else(|_| Box::new(NullEnvironment))
            }),
            &campaign,
            &monitor,
            workers,
            journal.as_mut(),
            snapshots,
        )
    };
    let result = result
        .map_err(|e| dump_flight(&tel, &flags, db_path, salvage_partial(&mut db, db_path, e)))?;
    finish_run(
        &mut db,
        db_path,
        &monitor,
        &campaign,
        &result,
        started.elapsed(),
        flags.contains_key("metrics"),
    )
}

fn cmd_resume(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("resume: missing <db> path")?;
    let name = flags.get("name").ok_or("resume: --name is required")?;
    let journal_path = flags
        .get("journal")
        .ok_or("resume: --journal is required")?;
    let workers: usize = flags
        .get("workers")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "bad --workers"))?;

    let mut db = load_db(db_path)?;
    let mut campaign = dbio::load_campaign(&db, name).map_err(|e| e.to_string())?;
    apply_health_check_override(&mut campaign, &flags)?;
    let campaign = campaign;
    let kind = campaign_target(&campaign, &flags)?;
    let tel = telemetry_from_flags(&flags)?;
    let monitor = ProgressMonitor::with_telemetry(campaign.experiment_count(), tel.clone());
    stop_on_signal(&monitor);
    let env_kind = flags.get("env").cloned();
    make_env(env_kind.as_deref())?; // validate before the workers clone it
    let (link, verify) = link_flags(&flags)?;
    let wedge = wedge_flag(&flags)?;
    // Auto-fsck: salvage a torn/garbled journal before resuming from it,
    // and tell the operator what was dropped. (The runner re-checks through
    // its own VFS; this pass makes the repair visible.)
    let salvage = goofi::core::journal::salvage_with(
        &goofi::core::vfs::RealFs,
        Path::new(journal_path.as_str()),
    )
    .map_err(|e| e.to_string())?;
    if let Some(quarantined) = &salvage.quarantined {
        println!(
            "journal {journal_path} was not recognisable; quarantined to {} and starting fresh",
            quarantined.display(),
        );
    } else if salvage.rewritten {
        println!(
            "journal {journal_path} was damaged; salvaged {} entr(y/ies), dropped {}",
            salvage.kept, salvage.dropped,
        );
    }
    println!(
        "resuming campaign `{name}` from {journal_path}: {} experiments total",
        campaign.experiment_count(),
    );

    let started = std::time::Instant::now();
    let worker_seq = std::sync::atomic::AtomicU64::new(0);
    let make_monitor = monitor.clone();
    let result = runner::resume_campaign(
        move || {
            let worker = worker_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            decorate_target(kind, wedge, link, verify, &make_monitor, worker)
        },
        Some(move || make_env(env_kind.as_deref()).unwrap_or_else(|_| Box::new(NullEnvironment))),
        &campaign,
        &monitor,
        workers,
        journal_path,
    )
    .map_err(|e| dump_flight(&tel, &flags, db_path, salvage_partial(&mut db, db_path, e)))?;
    finish_run(
        &mut db,
        db_path,
        &monitor,
        &campaign,
        &result,
        started.elapsed(),
        flags.contains_key("metrics"),
    )
}

/// `goofi fsck <db> [--name C --journal J] [--repair]`: checks every
/// persistence artifact — the checksummed database file, an optional run
/// journal, and the service spool next to the database — for torn writes,
/// garbled entries, bad headers, and stray temp files. Without `--repair`
/// the findings are reported (one class per line) and the exit code is
/// non-zero; with `--repair` the damage is salvaged: journals are rewritten
/// down to their valid entries, unrecognisable files are quarantined aside
/// as `*.corrupt`, damaged spool jobs become `quarantined-*` directories,
/// and experiments lost to garbled database rows are re-logged as
/// `Validity::Invalid` stubs with `parentExperiment`-linked rerun stubs.
fn cmd_fsck(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("fsck: missing <db> path")?;
    let repair = flags.contains_key("repair");
    let journal = match (flags.get("journal"), flags.get("name")) {
        (Some(j), Some(n)) => Some((j.clone(), n.clone())),
        (Some(_), None) => return Err("fsck: --journal needs --name <campaign>".to_string()),
        (None, Some(_)) => return Err("fsck: --name needs --journal <file>".to_string()),
        (None, None) => None,
    };
    let report = goofi::core::fsck::fsck_all(
        &goofi::core::vfs::RealFs,
        Path::new(db_path),
        journal
            .as_ref()
            .map(|(j, n)| (Path::new(j.as_str()), n.as_str())),
        repair,
    )
    .map_err(|e| e.to_string())?;
    println!("{}", report.render());
    if !report.clean() && !repair {
        return Err(format!(
            "{} finding(s); run `goofi fsck {db_path}{} --repair` to salvage",
            report.findings.len(),
            journal
                .as_ref()
                .map(|(j, n)| format!(" --name {n} --journal {j}"))
                .unwrap_or_default(),
        ));
    }
    Ok(())
}

fn finish_run(
    db: &mut Database,
    db_path: &str,
    monitor: &ProgressMonitor,
    campaign: &Campaign,
    result: &algorithms::CampaignResult,
    elapsed: std::time::Duration,
    show_metrics: bool,
) -> Result<(), String> {
    dbio::store_result_traced(db, result, monitor.telemetry()).map_err(|e| e.to_string())?;
    // Detail mode keeps the full recovery audit trail in the database.
    if campaign.logging == LoggingMode::Detail && !result.recoveries.is_empty() {
        dbio::log_recovery_actions(db, &campaign.name, &result.recoveries)
            .map_err(|e| e.to_string())?;
    }
    save_db(db_path, db)?;
    let progress = monitor.snapshot();
    println!(
        "done in {elapsed:?}: {} experiments logged ({:.1} exp/s)",
        progress.completed,
        progress.completed as f64 / elapsed.as_secs_f64(),
    );
    for (cause, n) in &progress.by_termination {
        println!("  terminated by {cause}: {n}");
    }
    if progress.link_recovered > 0 || progress.link_unrecovered > 0 {
        println!(
            "link events: {} recovered, {} unrecovered",
            progress.link_recovered, progress.link_unrecovered,
        );
    }
    if progress.probes_run > 0 || progress.hangs > 0 {
        println!(
            "supervision: {} probe suite(s) run ({} failed), {} target hang(s)",
            progress.probes_run, progress.probes_failed, progress.hangs,
        );
        println!(
            "  recovery actions: {} soft reset(s), {} card re-init(s), {} power cycle(s), {} target(s) offline",
            progress.soft_resets, progress.card_reinits, progress.power_cycles, progress.targets_offline,
        );
    }
    if !result.recoveries.is_empty() {
        println!("recovery episodes:");
        for episode in &result.recoveries {
            println!(
                "  {} ({}): {} action(s), {}",
                episode.experiment,
                episode.trigger,
                episode.actions.len(),
                if episode.recovered {
                    "recovered"
                } else {
                    "target offline"
                },
            );
        }
    }
    if !result.quarantined.is_empty() {
        println!(
            "quarantined by golden-run revalidation ({} record(s), kept as invalid, re-run via parentExperiment):",
            result.quarantined.len(),
        );
        for record in &result.quarantined {
            println!("  {}", record.name);
        }
    }
    if !result.failures.is_empty() {
        println!("failed experiments (skipped by policy):");
        for failure in &result.failures {
            println!("  {failure}");
        }
    }
    let tel = monitor.telemetry();
    tel.flush();
    if show_metrics {
        if let Some(snapshot) = tel.metrics() {
            println!("\nper-stage timings:");
            println!("{}", snapshot.render_timings());
            let nonzero: Vec<_> = snapshot.counters.iter().filter(|(_, v)| **v > 0).collect();
            if !nonzero.is_empty() {
                println!("counters:");
                for (name, value) in nonzero {
                    println!("  {name:<16} {value}");
                }
            }
        }
    }
    Ok(())
}

/// `goofi serve <db>`: the campaign-service daemon. Accepts submissions
/// on a loopback TCP socket, shards each job across spawned
/// `goofi worker` processes under lease discipline, and resumes any
/// spooled in-flight jobs left behind by a previous (possibly killed)
/// daemon before accepting new work.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("serve: missing <db> path")?;
    if !Path::new(db_path).exists() {
        return Err(format!(
            "serve: no database at {db_path} (create campaigns with `goofi new` first)"
        ));
    }
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:4711".to_string());
    let exe = std::env::current_exe().map_err(|e| format!("locating goofi executable: {e}"))?;
    let mut cfg = ServiceConfig::new(
        db_path,
        WorkerCommand {
            program: exe,
            args: vec!["worker".to_string()],
        },
    );
    if let Some(v) = flags.get("workers") {
        cfg.default_workers = v.parse().map_err(|_| "bad --workers")?;
    }
    if let Some(v) = flags.get("lease-ms") {
        cfg.lease = std::time::Duration::from_millis(v.parse().map_err(|_| "bad --lease-ms")?);
    }
    if let Some(v) = flags.get("poison-after") {
        cfg.poison_after = v.parse().map_err(|_| "bad --poison-after")?;
    }
    if let Some(spec) = flags.get("chaos") {
        cfg.chaos =
            Some(ChaosConfig::decode(spec).ok_or_else(|| format!("bad --chaos spec `{spec}`"))?);
    }
    let net_chaos = match flags.get("net-chaos") {
        Some(spec) => Some(
            NetFaultConfig::decode(spec).ok_or_else(|| format!("bad --net-chaos spec `{spec}`"))?,
        ),
        None => None,
    };
    cfg.net_chaos = net_chaos.clone();
    let spool = cfg.spool_dir.clone();
    let scheduler = Arc::new(Scheduler::new(cfg).map_err(|e| e.to_string())?);
    // `--net-chaos` puts the daemon's own accept/send path behind a
    // seeded FaultNet as well as the workers' event frames — the whole
    // service I/O plane runs through the drill.
    let transport: Box<dyn Transport> = match net_chaos {
        Some(spec) => Box::new(FaultNet::new(spec)),
        None => Box::new(RealNet),
    };
    let listener = transport
        .listen(&addr)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    // Report the *bound* address: with `--addr 127.0.0.1:0` the OS picks
    // the port, and clients need the real one.
    let bound = listener.local_addr().unwrap_or(addr);
    println!(
        "goofi daemon on {bound} (db {db_path}, spool {})",
        spool.display()
    );
    let recovered = scheduler.recover().map_err(|e| e.to_string())?;
    for job in &recovered.resumed {
        println!("resumed in-flight {job} from {}", spool.display());
    }
    for job in &recovered.quarantined {
        println!("quarantined damaged {job} (renamed to quarantined-{job}; see `goofi fsck`)");
    }
    // SIGINT/SIGTERM stop the accept loop; the scheduler then halts its
    // jobs resumably (spool manifests stay, no done markers are written).
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            if signals::interrupted() {
                stop.store(true, std::sync::atomic::Ordering::Release);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    service::serve(listener, scheduler, stop).map_err(|e| e.to_string())?;
    println!("daemon stopped; in-flight jobs resume on next `goofi serve`");
    Ok(())
}

/// `goofi worker …`: one shard of a service job, spawned by the daemon —
/// not normally invoked by hand. Runs its index range against the target
/// system named on its spawn line (Thor when unspecified) under a private
/// journal, streaming events on stdout.
fn cmd_worker(args: &[String]) -> Result<(), String> {
    let parsed = WorkerArgs::parse(args).map_err(|e| e.to_string())?;
    let kind = match parsed.target.as_deref() {
        None => TargetKind::Thor,
        Some(name) => TargetKind::from_system_name(name)
            .ok_or_else(|| format!("worker: unknown target system `{name}`"))?,
    };
    match kind {
        TargetKind::Thor => service::run_worker(&parsed, ThorTarget::default),
        TargetKind::Riscv => service::run_worker(&parsed, RiscvTarget::default),
    }
    .map_err(|e| e.to_string())
}

/// `goofi submit <addr>`: client side of the service — submit a campaign
/// (optionally watching it), attach to a running job, list jobs, or ask
/// the daemon to shut down.
fn cmd_submit(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let addr = positional
        .first()
        .ok_or("submit: missing <addr> (e.g. 127.0.0.1:4711)")?;
    if flags.contains_key("status") {
        // job_list retries across fresh connections on transport damage,
        // so a lossy link (`--net-chaos` drills) still gets a listing.
        for (job, state, campaign) in
            service::job_list(&RealNet, addr).map_err(|e| e.to_string())?
        {
            println!("{job:<10} {state:<8} {campaign}");
        }
        return Ok(());
    }
    if flags.contains_key("shutdown") {
        service::request_shutdown(&RealNet, addr).map_err(|e| e.to_string())?;
        println!("daemon shutting down");
        return Ok(());
    }
    if let Some(job) = flags.get("job") {
        return watch_job(addr, job);
    }
    let name = flags.get("name").ok_or("submit: --name is required")?;
    let workers: usize = flags
        .get("workers")
        .map_or(Ok(0), |v| v.parse().map_err(|_| "bad --workers"))?;
    let watch = flags.contains_key("watch");
    let target = target_flag(&flags)?;
    // One request id for every retry: the daemon deduplicates, so a
    // submission whose acknowledgement was lost is not run twice.
    let request_id = service::new_request_id();
    let job = service::submit_job_targeted(
        &RealNet,
        addr,
        &request_id,
        name,
        workers,
        target.map(TargetKind::system_name),
        std::time::Duration::from_secs(10),
    )
    .map_err(|e| e.to_string())?;
    println!("accepted as {job}");
    if watch {
        watch_job(addr, &job)
    } else {
        Ok(())
    }
}

/// Prints streamed progress lines until the watched job ends. The watch
/// session resumes across lost connections: the client reconnects and
/// replays from the last sequence number it saw, so no line is missed or
/// repeated.
fn watch_job(addr: &str, job: &str) -> Result<(), String> {
    let terminal =
        service::watch_to_end(&RealNet, addr, job, print_progress).map_err(|e| e.to_string())?;
    match &terminal {
        Response::Progress { state, detail, .. } if state == "failed" => {
            Err(if detail.is_empty() {
                "job failed".to_string()
            } else {
                detail.clone()
            })
        }
        _ => Ok(()),
    }
}

fn print_progress(response: &Response) {
    if let Response::Progress {
        job,
        state,
        total,
        completed,
        failed,
        quarantined,
        shards_done,
        shards_total,
        shards_poisoned,
        ..
    } = response
    {
        let poisoned = if *shards_poisoned > 0 {
            format!(", {shards_poisoned} poisoned")
        } else {
            String::new()
        };
        println!(
            "{job}: {state} {completed}/{total} \
             ({failed} failed, {quarantined} quarantined, \
             shards {shards_done}/{shards_total}{poisoned})"
        );
    }
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let db_path = positional.first().ok_or("report: missing <db> path")?;
    let name = flags.get("name").ok_or("report: --name is required")?;
    let mut db = load_db(db_path)?;
    // `--trace <file>` appends the analysis phase's classify spans to an
    // existing trace, so one JSONL file covers the whole four-phase workflow.
    let tel = match flags.get("trace") {
        Some(path) => {
            let sink = JsonlSink::append(Path::new(path))
                .map_err(|e| format!("opening trace file {path}: {e}"))?;
            Telemetry::with_sinks(vec![Arc::new(sink)])
        }
        None => Telemetry::disabled(),
    };
    let classified = tel
        .time(Stage::Classify, || queries::analyse_campaign(&mut db, name))
        .map_err(|e| e.to_string())?;
    let stats = goofi::analysis::stats::CampaignStats::from_classified(&classified);
    println!(
        "{}",
        report::full_report(&format!("campaign `{name}`"), &stats)
    );
    let escaped = queries::escaped_experiments(&db, name).map_err(|e| e.to_string())?;
    if !escaped.is_empty() {
        println!("candidates for detail-mode re-run (escaped errors):");
        for row in &escaped.rows {
            println!("  {}", row[0]);
        }
    }
    let recoveries = dbio::load_recovery_actions(&db, name).map_err(|e| e.to_string())?;
    if !recoveries.is_empty() {
        println!("recovery audit trail ({} episode(s)):", recoveries.len());
        for episode in &recoveries {
            println!(
                "  {} ({}): {}",
                episode.experiment,
                episode.trigger,
                if episode.recovered {
                    "recovered"
                } else {
                    "target offline"
                },
            );
            for action in &episode.actions {
                println!(
                    "    {} attempt {}: {}{}",
                    action.stage,
                    action.attempt,
                    if action.recovered { "ok" } else { "failed" },
                    if action.detail.is_empty() {
                        String::new()
                    } else {
                        format!(" — {}", action.detail)
                    },
                );
            }
        }
    }
    tel.flush();
    // `--timings <trace>` rebuilds the per-stage latency histograms from a
    // recorded JSONL trace and renders them as a report section.
    if let Some(trace_path) = flags.get("timings") {
        let text = std::fs::read_to_string(trace_path)
            .map_err(|e| format!("reading trace {trace_path}: {e}"))?;
        let snapshot = MetricsSnapshot::from_trace(&text);
        println!("per-stage timings (from {trace_path}):");
        println!("{}", snapshot.render_timings());
    }
    save_db(db_path, &db)?;
    Ok(())
}

fn cmd_sql(args: &[String]) -> Result<(), String> {
    let db_path = args.first().ok_or("sql: missing <db> path")?;
    let query = args.get(1).ok_or("sql: missing query string")?;
    let db = load_db(db_path)?;
    let result = db.query(query).map_err(|e| e.to_string())?;
    println!("{result}");
    Ok(())
}
