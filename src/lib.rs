//! GOOFI — Generic Object-Oriented Fault Injection tool, umbrella crate.
//!
//! Re-exports the whole workspace behind one dependency. See the individual
//! crates for detail:
//!
//! - [`core`] (`goofi-core`): the fault-injection framework — campaigns,
//!   fault models, triggers, the SCIFI/SWIFI algorithms and the
//!   target-system interface trait.
//! - [`analysis`] (`goofi-analysis`): the analysis phase — outcome
//!   classification, coverage statistics and report tables.
//! - [`thor`]: the Thor-RD-like CPU simulator target system.
//! - [`scanchain`]: IEEE 1149.1-style scan-chain/test-card infrastructure.
//! - [`goofidb`]: the embedded SQL campaign database.
//! - [`workloads`]: assembler and workload program library.
//! - [`envsim`]: environment (plant) simulators that close the loop around
//!   control workloads.

#![forbid(unsafe_code)]

pub use envsim;
pub use goofi_analysis as analysis;
pub use goofi_core as core;
pub use goofi_thor;
pub use goofidb;
pub use scanchain;
pub use thor;
pub use workloads;
