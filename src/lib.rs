//! GOOFI — Generic Object-Oriented Fault Injection tool, umbrella crate.
//!
//! Re-exports the whole workspace behind one dependency. See the individual
//! crates for detail:
//!
//! - [`core`] (`goofi-core`): the fault-injection framework — campaigns,
//!   fault models, triggers, the SCIFI/SWIFI algorithms and the
//!   target-system interface trait.
//! - [`analysis`] (`goofi-analysis`): the analysis phase — outcome
//!   classification, coverage statistics and report tables.
//! - [`thor`]: the Thor-RD-like CPU simulator target system.
//! - [`riscv`]: the RV32I core — the second target system, proving the
//!   framework generic.
//! - [`scanchain`]: IEEE 1149.1-style scan-chain/test-card infrastructure.
//! - [`goofidb`]: the embedded SQL campaign database.
//! - [`workloads`]: assembler and workload program library.
//! - [`envsim`]: environment (plant) simulators that close the loop around
//!   control workloads.
//!
//! The [`targets`] module is the one place that knows every ported target
//! system by name — the registry behind the CLI's `--target` flag.

#![forbid(unsafe_code)]

pub use envsim;
pub use goofi_analysis as analysis;
pub use goofi_core as core;
pub use goofi_riscv;
pub use goofi_thor;
pub use goofidb;
pub use scanchain;
pub use thor;
pub use workloads;

pub mod targets {
    //! Registry of ported target systems.
    //!
    //! Everything above the `TargetAccess` seam is target-agnostic; the
    //! only components that must name concrete ports are the CLI entry
    //! points (`--target` flag, worker spawn) and they all go through
    //! here. Adding a third target means one new variant and three match
    //! arms — nothing else in the tool changes.

    use goofi_core::TargetAccess;

    /// A ported target system selectable on the command line.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
    pub enum TargetKind {
        /// The Thor-RD-like CPU simulator (`goofi-thor`), the paper's CPU.
        #[default]
        Thor,
        /// The RV32I core (`goofi-riscv`), the second target.
        Riscv,
    }

    impl TargetKind {
        /// Every registered target, in presentation order.
        pub const ALL: [TargetKind; 2] = [TargetKind::Thor, TargetKind::Riscv];

        /// Parses a `--target` flag value.
        pub fn parse(s: &str) -> Option<TargetKind> {
            match s {
                "thor" | "thor-rd" => Some(TargetKind::Thor),
                "riscv" | "rv32i" => Some(TargetKind::Riscv),
                _ => None,
            }
        }

        /// The canonical flag spelling.
        pub fn flag(self) -> &'static str {
            match self {
                TargetKind::Thor => "thor",
                TargetKind::Riscv => "riscv",
            }
        }

        /// The port's [`TargetAccess::target_name`] (keys the campaign's
        /// `target_system` field in the database).
        pub fn system_name(self) -> &'static str {
            match self {
                TargetKind::Thor => "thor-rd",
                TargetKind::Riscv => "rv32i",
            }
        }

        /// One-line description for `goofi targets` and the docs.
        pub fn description(self) -> &'static str {
            match self {
                TargetKind::Thor => "Thor-RD-like CPU simulator",
                TargetKind::Riscv => "RV32I cycle-counting core",
            }
        }

        /// Recovers the kind from a campaign's stored `target_system`
        /// name, so `run`/`resume`/worker spawns pick the right port
        /// without the user repeating `--target`.
        pub fn from_system_name(name: &str) -> Option<TargetKind> {
            TargetKind::ALL
                .into_iter()
                .find(|k| k.system_name() == name)
                .or_else(|| TargetKind::parse(name))
        }

        /// Builds a fresh boxed instance of the port.
        pub fn build(self) -> Box<dyn TargetAccess> {
            match self {
                TargetKind::Thor => Box::new(goofi_thor::ThorTarget::default()),
                TargetKind::Riscv => Box::new(goofi_riscv::RiscvTarget::default()),
            }
        }
    }

    impl std::fmt::Display for TargetKind {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(self.flag())
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parse_accepts_flags_and_system_names() {
            assert_eq!(TargetKind::parse("thor"), Some(TargetKind::Thor));
            assert_eq!(TargetKind::parse("riscv"), Some(TargetKind::Riscv));
            assert_eq!(TargetKind::parse("rv32i"), Some(TargetKind::Riscv));
            assert_eq!(TargetKind::parse("z80"), None);
        }

        #[test]
        fn system_names_round_trip() {
            for kind in TargetKind::ALL {
                assert_eq!(TargetKind::from_system_name(kind.system_name()), Some(kind));
                assert_eq!(TargetKind::parse(kind.flag()), Some(kind));
            }
        }

        #[test]
        fn build_produces_the_named_port() {
            for kind in TargetKind::ALL {
                let target = kind.build();
                assert_eq!(target.target_name(), kind.system_name());
            }
        }
    }
}
