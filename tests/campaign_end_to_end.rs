//! Cross-crate integration tests: full GOOFI campaigns on the Thor target.
//!
//! These exercise the complete paper workflow — configuration, set-up,
//! fault injection and analysis — through the public API only.

use goofi::analysis::{classify, classify_campaign, queries, stats::CampaignStats, Outcome};
use goofi::core::algorithms::{self, CampaignResult};
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Technique, Termination};
use goofi::core::fault::{FaultLocation, FaultSpec};
use goofi::core::logging::{LoggingMode, TerminationCause};
use goofi::core::monitor::ProgressMonitor;
use goofi::core::trigger::Trigger;
use goofi::core::{dbio, runner};
use goofi::envsim::{DcMotor, NullEnvironment};
use goofi::goofi_thor::ThorTarget;
use goofi::goofidb::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::{OutputSpec, Workload};

fn workload_image(w: &Workload) -> goofi::core::campaign::WorkloadImage {
    goofi::core::campaign::WorkloadImage {
        name: w.name.clone(),
        words: w.image.words.clone(),
        code_words: w.image.code_words,
        entry: w.image.entry,
    }
}

fn output_region(w: &Workload) -> OutputRegion {
    match w.output {
        OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
        OutputSpec::Ports => OutputRegion::Ports,
    }
}

fn scan_loc(cell: &str, bit: usize) -> FaultLocation {
    FaultLocation::ScanCell {
        chain: "internal".into(),
        cell: cell.into(),
        bit,
    }
}

fn base_campaign(name: &str, wl: &Workload) -> goofi::core::campaign::CampaignBuilder {
    Campaign::builder(name)
        .target_system("thor-rd")
        .workload(workload_image(wl))
        .observe_chains(["internal"])
        .output(output_region(wl))
        .termination(Termination {
            max_instructions: 500_000,
            max_iterations: None,
        })
}

#[test]
fn crafted_faults_cover_all_outcome_categories() {
    let wl = workloads::by_name("bubblesort").unwrap();
    let result_addr = match wl.output {
        OutputSpec::Memory { addr, .. } => addr,
        OutputSpec::Ports => unreachable!(),
    };
    let campaign = base_campaign("crafted", &wl)
        // (0) Overwritten: R1 is overwritten by the first instruction.
        .fault(FaultSpec::single(
            scan_loc("R1", 3),
            Trigger::AfterInstructions(0),
        ))
        // (1) Latent: R11 is never used by the workload.
        .fault(FaultSpec::single(
            scan_loc("R11", 7),
            Trigger::AfterInstructions(10),
        ))
        // (2) Detected: PC forced far outside the code segment.
        .fault(FaultSpec::single(
            scan_loc("PC", 14),
            Trigger::AfterInstructions(20),
        ))
        // (3) Escaped: corrupt a high bit of an array element mid-sort —
        // the sorted output is wrong, and nothing detects data-value errors.
        .fault(FaultSpec::single(
            FaultLocation::Memory {
                addr: result_addr + 5,
                bit: 30,
            },
            Trigger::AfterInstructions(50),
        ))
        .build()
        .unwrap();

    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let result =
        algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut NullEnvironment)
            .unwrap();

    assert_eq!(result.reference.termination, TerminationCause::WorkloadEnd);
    let outcomes: Vec<Outcome> = result
        .records
        .iter()
        .map(|r| classify(&result.reference, r))
        .collect();
    assert_eq!(outcomes[0], Outcome::Overwritten, "{:?}", result.records[0]);
    assert_eq!(outcomes[1], Outcome::Latent);
    assert!(
        matches!(&outcomes[2], Outcome::Detected { mechanism } if mechanism == "control_flow"),
        "{:?}",
        outcomes[2]
    );
    assert!(
        matches!(outcomes[3], Outcome::Escaped { .. }),
        "{:?}",
        outcomes[3]
    );

    // The monitor saw every experiment.
    let progress = monitor.snapshot();
    assert_eq!(progress.completed, 4);
    assert_eq!(progress.fraction(), 1.0);
}

#[test]
fn random_scifi_campaign_is_deterministic_and_classifiable() {
    let wl = workloads::by_name("crc32").unwrap();
    let target_data = TargetSystemData::from_target(&ThorTarget::default(), "thor sim");
    let space = target_data.fault_space(None, 0..2_000);
    let faults = space.sample_campaign(40, &mut StdRng::seed_from_u64(1234));
    let campaign = base_campaign("rand-scifi", &wl)
        .faults(faults)
        .build()
        .unwrap();

    let run = |campaign: &Campaign| -> CampaignResult {
        let mut target = ThorTarget::default();
        let monitor = ProgressMonitor::new(campaign.experiment_count());
        algorithms::faultinjector_scifi(&mut target, campaign, &monitor, &mut NullEnvironment)
            .unwrap()
    };
    let a = run(&campaign);
    let b = run(&campaign);
    assert_eq!(a, b, "campaigns must be fully reproducible");

    let classified = classify_campaign(&a.reference, &a.records);
    assert_eq!(classified.len(), 40);
    let stats = CampaignStats::from_classified(&classified);
    assert_eq!(stats.total, 40);
    let sum: usize = stats.by_category.values().sum();
    assert_eq!(sum, 40);
}

#[test]
fn swifi_preruntime_campaign_runs() {
    let wl = workloads::by_name("primes").unwrap();
    // Flip bits across the code segment: expect plenty of detections
    // (illegal opcode / control flow) and some escapes.
    let faults: Vec<FaultSpec> = (0..20)
        .map(|i| {
            FaultSpec::single(
                FaultLocation::Memory {
                    addr: (i * 7) % wl.image.code_words,
                    bit: ((i * 11) % 32) as u8,
                },
                Trigger::PreRuntime,
            )
        })
        .collect();
    let campaign = base_campaign("swifi-pre", &wl)
        .technique(Technique::SwifiPreRuntime)
        .faults(faults)
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let result =
        algorithms::faultinjector_swifi(&mut target, &campaign, &monitor, &mut NullEnvironment)
            .unwrap();
    assert_eq!(result.records.len(), 20);
    let classified = classify_campaign(&result.reference, &result.records);
    // Code corruption must produce at least one effective error.
    assert!(
        classified.iter().any(|c| c.outcome.is_effective()),
        "{classified:?}"
    );
}

#[test]
fn technique_dispatch_is_enforced() {
    let wl = workloads::by_name("primes").unwrap();
    let scifi = base_campaign("c-scifi", &wl)
        .fault(FaultSpec::single(
            scan_loc("R1", 0),
            Trigger::AfterInstructions(1),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(1);
    assert!(
        algorithms::faultinjector_swifi(&mut target, &scifi, &monitor, &mut NullEnvironment)
            .is_err()
    );
}

#[test]
fn control_loop_campaign_with_environment() {
    let wl = workloads::by_name("pi-control").unwrap();
    let campaign = base_campaign("control", &wl)
        .termination(Termination {
            max_instructions: 2_000_000,
            max_iterations: Some(120),
        })
        .fault(FaultSpec::single(
            scan_loc("R10", 28),
            Trigger::AfterInstructions(900),
        ))
        .fault(FaultSpec::single(
            scan_loc("R3", 2),
            Trigger::AfterInstructions(1_500),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let mut motor = DcMotor::new();
    let result =
        algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut motor).unwrap();
    // The reference run completes its 120 iterations.
    assert_eq!(
        result.reference.termination,
        TerminationCause::IterationLimit
    );
    assert_eq!(result.reference.state.iterations, 120);
    // The controller converged to the set point in the reference run.
    let out = result.reference.state.outputs[0] as i32;
    assert!(out.abs() < 20_000, "control output {out}");
    // A huge bit flip in the integral accumulator (R10 bit 28) is caught by
    // the workload's executable assertion or escapes as a failure; either
    // way it must be effective.
    let o = classify(&result.reference, &result.records[0]);
    assert!(o.is_effective(), "{o:?}");
}

#[test]
fn database_workflow_and_automatic_analysis() {
    let wl = workloads::by_name("fibonacci").unwrap();
    let target_data = TargetSystemData::from_target(&ThorTarget::default(), "thor sim");
    let space = target_data.fault_space(Some(0..wl.image.words.len() as u32), 0..3_000);
    let faults = space.sample_campaign(25, &mut StdRng::seed_from_u64(7));
    let campaign = base_campaign("db-campaign", &wl)
        .faults(faults)
        .build()
        .unwrap();

    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(campaign.experiment_count());
    let result =
        algorithms::run_campaign(&mut target, &campaign, &monitor, &mut NullEnvironment).unwrap();

    // Store everything per the Figure 4 schema.
    let mut db = Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_target_system(&mut db, &target_data).unwrap();
    dbio::store_campaign(&mut db, &campaign).unwrap();
    dbio::store_result(&mut db, &result).unwrap();
    db.check_integrity().unwrap();

    // Campaign round-trips.
    assert_eq!(dbio::load_campaign(&db, "db-campaign").unwrap(), campaign);
    let loaded = dbio::load_experiments(&db, "db-campaign").unwrap();
    assert_eq!(loaded.len(), 26); // reference + 25

    // Automatic analysis (§4 extension) and SQL reporting.
    let classified = queries::analyse_campaign(&mut db, "db-campaign").unwrap();
    assert_eq!(classified.len(), 25);
    let dist = queries::outcome_distribution(&db, "db-campaign").unwrap();
    let total: i64 = dist.rows.iter().map(|r| r[1].as_int().unwrap()).sum();
    assert_eq!(total, 25);

    // Persistence round-trip preserves the analysis results.
    let restored = Database::load_from_string(&db.save_to_string()).unwrap();
    let dist2 = queries::outcome_distribution(&restored, "db-campaign").unwrap();
    assert_eq!(dist, dist2);

    // Stats computed from DB match stats computed in memory.
    let from_db = queries::campaign_stats(&db, "db-campaign").unwrap();
    let in_memory =
        CampaignStats::from_classified(&classify_campaign(&result.reference, &result.records));
    assert_eq!(from_db, in_memory);
}

#[test]
fn parallel_runner_matches_serial() {
    let wl = workloads::by_name("matmul").unwrap();
    let target_data = TargetSystemData::from_target(&ThorTarget::default(), "thor sim");
    let space = target_data.fault_space(None, 0..2_000);
    let faults = space.sample_campaign(16, &mut StdRng::seed_from_u64(99));
    let campaign = base_campaign("par", &wl).faults(faults).build().unwrap();

    let mut target = ThorTarget::default();
    let serial = algorithms::run_campaign(
        &mut target,
        &campaign,
        &ProgressMonitor::new(16),
        &mut NullEnvironment,
    )
    .unwrap();

    let parallel = runner::run_campaign_parallel(
        ThorTarget::default,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &ProgressMonitor::new(16),
        4,
    )
    .unwrap();

    assert_eq!(serial, parallel);
}

#[test]
fn journaled_campaign_resumes_to_identical_results() {
    use goofi::core::journal::ExperimentJournal;

    let wl = workloads::by_name("crc32").unwrap();
    let target_data = TargetSystemData::from_target(&ThorTarget::default(), "thor sim");
    let space = target_data.fault_space(None, 0..2_000);
    let faults = space.sample_campaign(8, &mut StdRng::seed_from_u64(5));
    let campaign = base_campaign("journal-e2e", &wl)
        .faults(faults)
        .build()
        .unwrap();

    let path = std::env::temp_dir().join(format!("goofi-e2e-{}.journal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut journal = ExperimentJournal::create(&path, &campaign.name).unwrap();
    let full = runner::run_campaign_parallel_journaled(
        ThorTarget::default,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &ProgressMonitor::new(8),
        3,
        Some(&mut journal),
    )
    .unwrap();
    drop(journal);

    // Simulate a crash partway through: keep the header, campaign line,
    // reference record and the first two experiment records.
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
    std::fs::write(&path, keep).unwrap();

    let monitor = ProgressMonitor::new(8);
    let resumed = runner::resume_campaign(
        ThorTarget::default,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &monitor,
        3,
        &path,
    )
    .unwrap();
    assert_eq!(resumed, full, "resume must reproduce the uninterrupted run");
    assert_eq!(monitor.snapshot().fraction(), 1.0);

    // The journal is whole again and a second resume re-runs nothing.
    let state = ExperimentJournal::load(&path, &campaign.name).unwrap();
    assert_eq!(state.completed.len(), 8);
    assert!(state.failed.is_empty());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn detail_rerun_links_parent_and_shows_propagation() {
    let wl = workloads::by_name("crc32").unwrap();
    // A fault in the CRC accumulator register (r1) mid-computation escapes
    // as an incorrect result.
    let campaign = base_campaign("detail", &wl)
        .fault(FaultSpec::single(
            scan_loc("R1", 13),
            Trigger::AfterInstructions(400),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let monitor = ProgressMonitor::new(1);
    let result =
        algorithms::faultinjector_scifi(&mut target, &campaign, &monitor, &mut NullEnvironment)
            .unwrap();
    let outcome = classify(&result.reference, &result.records[0]);
    assert!(matches!(outcome, Outcome::Escaped { .. }), "{outcome:?}");

    // Re-run in detail mode (paper §2.3): reference trace vs faulty trace.
    let mut detail_campaign = campaign.clone();
    detail_campaign.logging = LoggingMode::Detail;
    let detailed_ref =
        algorithms::make_reference_run(&mut target, &detail_campaign, &mut NullEnvironment)
            .unwrap();
    let detailed =
        algorithms::rerun_detailed(&mut target, &detail_campaign, 0, &mut NullEnvironment).unwrap();
    assert_eq!(detailed.parent.as_deref(), Some("detail/exp00000"));
    assert!(!detailed.trace.is_empty());
    assert!(!detailed_ref.trace.is_empty());

    let prop = goofi::analysis::propagation::analyse(&detailed_ref.trace, &detailed.trace);
    let first = prop.first_divergence.expect("fault must show in the trace");
    // Divergence appears at/after the injection point, not before.
    assert!(first >= 399, "diverged at step {first}");
    assert!(prop.peak_bits() > 0);
}

#[test]
fn dead_fault_in_control_loop_is_non_effective() {
    // Regression: experiments must start from exactly the reference run's
    // initial conditions (including input-port latches), so a fault in a
    // register the workload never touches cannot change the outputs.
    let wl = workloads::by_name("pi-control-ber").unwrap();
    let campaign = base_campaign("dead-ctl", &wl)
        .termination(Termination {
            max_instructions: 3_000_000,
            max_iterations: Some(200),
        })
        .fault(FaultSpec::single(
            scan_loc("R11", 5),
            Trigger::AfterInstructions(1_000),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let mut engine = goofi::envsim::JetEngine::new();
    let result = algorithms::run_campaign(
        &mut target,
        &campaign,
        &ProgressMonitor::new(1),
        &mut engine,
    )
    .unwrap();
    assert_eq!(
        result.records[0].state.outputs, result.reference.state.outputs,
        "a dead fault must not perturb the control trajectory"
    );
    assert_eq!(
        classify(&result.reference, &result.records[0]),
        Outcome::Latent
    );
}

#[test]
fn pin_level_fault_injection_through_boundary_chain() {
    // Pin-level FI (the paper's third technique) forces a bit on the
    // sensor input pin of the PI controller mid-run: the implausible
    // reading must trip the workload's input assertion.
    let wl = workloads::by_name("pi-control").unwrap();
    let campaign = base_campaign("pin", &wl)
        .technique(Technique::PinLevel)
        .termination(Termination {
            max_instructions: 3_000_000,
            max_iterations: Some(200),
        })
        .fault(goofi::core::fault::FaultSpec {
            locations: vec![FaultLocation::ScanCell {
                chain: "boundary".into(),
                cell: "IN_PORT0".into(),
                bit: 30,
            }],
            model: goofi::core::fault::FaultModel::StuckAtOne,
            trigger: Trigger::AfterInstructions(1_000),
        })
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let mut motor = DcMotor::new();
    let result = goofi::core::algorithms::faultinjector_pinlevel(
        &mut target,
        &campaign,
        &ProgressMonitor::new(1),
        &mut motor,
    )
    .unwrap();
    match &result.records[0].termination {
        TerminationCause::Detected(d) => assert_eq!(d.mechanism, "assertion"),
        other => panic!("expected input assertion, got {other:?}"),
    }
    // Technique dispatch is enforced for pin-level too.
    let mut scifi = campaign.clone();
    scifi.technique = Technique::Scifi;
    assert!(goofi::core::algorithms::faultinjector_pinlevel(
        &mut target,
        &scifi,
        &ProgressMonitor::new(1),
        &mut motor,
    )
    .is_err());
}

#[test]
fn memory_based_environment_exchange_on_real_target() {
    // A control loop communicating through memory locations instead of
    // ports (§3.2): reads `sensor`, writes `sensor + 1` to `outv`.
    let image = thor::asm::assemble(
        r"
    loop:
        ld   r1, r0, sensor
        addi r2, r1, 1
        st   r0, r2, outv
        sync 0
        br   loop
    .data
    sensor: .word 0
    outv:   .word 0
    ",
    )
    .unwrap();
    let sensor = image.label("sensor").unwrap();
    let outv = image.label("outv").unwrap();
    let campaign = Campaign::builder("mem-exchange")
        .workload(goofi::core::campaign::WorkloadImage {
            name: "echo".into(),
            words: image.words.clone(),
            code_words: image.code_words,
            entry: image.entry,
        })
        .observe_chains(["internal"])
        .output(OutputRegion::Memory { addr: outv, len: 1 })
        .env_exchange(goofi::core::campaign::EnvExchange::Memory {
            outputs: vec![outv],
            inputs: vec![sensor],
        })
        .termination(Termination {
            max_instructions: 10_000,
            max_iterations: Some(4),
        })
        .fault(FaultSpec::single(
            scan_loc("R9", 0),
            Trigger::AfterInstructions(9_999),
        ))
        .build()
        .unwrap();

    let mut target = ThorTarget::default();
    let mut env = goofi::envsim::ScriptedEnvironment::new(vec![vec![10], vec![20], vec![30]]);
    let result =
        algorithms::run_campaign(&mut target, &campaign, &ProgressMonitor::new(1), &mut env)
            .unwrap();
    assert_eq!(
        result.reference.termination,
        TerminationCause::IterationLimit
    );
    // Iterations: out=1 (sensor 0), exchange sets sensor=10; out=11,
    // sensor=20; out=21, sensor=30; out=31 -> iteration limit.
    assert_eq!(result.reference.state.outputs, vec![31]);
}

#[test]
fn stopping_a_campaign_midway() {
    let wl = workloads::by_name("primes").unwrap();
    let faults: Vec<FaultSpec> = (0..10)
        .map(|i| FaultSpec::single(scan_loc("R1", i), Trigger::AfterInstructions(50)))
        .collect();
    let campaign = base_campaign("stopme", &wl).faults(faults).build().unwrap();
    let monitor = ProgressMonitor::new(10);
    monitor.stop();
    let mut target = ThorTarget::default();
    let err = algorithms::run_campaign(&mut target, &campaign, &monitor, &mut NullEnvironment)
        .unwrap_err();
    assert!(matches!(err, goofi::core::GoofiError::Stopped));
}

#[test]
fn trigger_beyond_workload_end_logs_natural_termination() {
    let wl = workloads::by_name("fibonacci").unwrap();
    let campaign = base_campaign("late", &wl)
        .fault(FaultSpec::single(
            scan_loc("R1", 0),
            Trigger::AfterInstructions(100_000_000),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let result = algorithms::run_campaign(
        &mut target,
        &campaign,
        &ProgressMonitor::new(1),
        &mut NullEnvironment,
    )
    .unwrap();
    assert_eq!(result.records[0].termination, TerminationCause::WorkloadEnd);
    // Never injected -> overwritten.
    assert_eq!(
        classify(&result.reference, &result.records[0]),
        Outcome::Overwritten
    );
}
