//! Integration tests of the `goofi` CLI — the operator workflow the
//! paper's GUI provided, driven end to end through a database file.

use std::path::PathBuf;
use std::process::{Command, Output};

fn goofi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_goofi"))
        .args(args)
        .output()
        .expect("spawn goofi")
}

fn tmp_db(name: &str) -> (tempdir::TempDirGuard, String) {
    let dir = tempdir::create(name);
    let path = dir.path.join("campaign.gdb").to_string_lossy().into_owned();
    (dir, path)
}

/// Minimal self-cleaning temp dir (std-only).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDirGuard {
        pub path: PathBuf,
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    pub fn create(name: &str) -> TempDirGuard {
        let path = std::env::temp_dir().join(format!("goofi-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDirGuard { path }
    }
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn help_and_listings() {
    let out = stdout(&goofi(&["help"]));
    assert!(out.contains("usage:"));

    let out = stdout(&goofi(&["workloads"]));
    for name in [
        "bubblesort",
        "matmul",
        "crc32",
        "primes",
        "fibonacci",
        "pi-control",
    ] {
        assert!(out.contains(name), "{out}");
    }

    let out = stdout(&goofi(&["targets"]));
    assert!(out.contains("thor-rd"));
    assert!(out.contains("internal"));
    assert!(out.contains("icache"));
}

#[test]
fn full_campaign_workflow() {
    let (_guard, db) = tmp_db("flow");
    // Set-up phase.
    let out = stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "c1",
        "--workload",
        "bubblesort",
        "--experiments",
        "25",
        "--seed",
        "9",
        "--time-window",
        "0:2000",
    ]));
    assert!(out.contains("25 experiments"), "{out}");

    // Fault-injection phase.
    let out = stdout(&goofi(&["run", &db, "--name", "c1"]));
    assert!(out.contains("25 experiments logged"), "{out}");

    // Analysis phase.
    let out = stdout(&goofi(&["report", &db, "--name", "c1"]));
    assert!(out.contains("outcome"), "{out}");
    assert!(out.contains("error detection coverage"), "{out}");

    // Ad-hoc SQL over the analysis results.
    let out = stdout(&goofi(&[
        "sql",
        &db,
        "SELECT COUNT(*) AS n FROM LoggedSystemState WHERE campaignName = 'c1'",
    ]));
    assert!(out.contains("26"), "reference + 25 experiments: {out}"); // 25 + reference
}

/// The experiment rows that define a run's essence, sorted for
/// order-independent comparison.
fn essence_rows(db: &str) -> Vec<String> {
    let out = stdout(&goofi(&[
        "sql",
        db,
        "SELECT experimentName, termination, stateVector, validity FROM LoggedSystemState",
    ]));
    let mut rows: Vec<String> = out.lines().map(str::to_string).collect();
    rows.sort();
    rows
}

/// The snapshot fast path must be invisible in the results, even with
/// fault-model decorators stacked on the target: a flaky transport (with
/// read verification) forwards snapshots cleanly, and a wedgeable target
/// vetoes prefix reuse entirely — either way the logged essence must be
/// bit-identical to a `--no-snapshot` run of the same campaign.
#[test]
fn snapshot_path_matches_slow_path_under_fault_stacks() {
    let stacks: [(&str, &[&str]); 2] = [
        (
            "link",
            &[
                "--link-faults",
                "seed=42,corrupt=0.01,drop=0.002,stall=0.001",
                "--verify-reads",
            ],
        ),
        ("wedge", &["--wedge", "seed=7,hang=0.05,recover=power"]),
    ];
    for (label, extra) in stacks {
        let guard = tempdir::create(&format!("snapeq-{label}"));
        let mut dbs = Vec::new();
        for mode in ["fast", "slow"] {
            let db = guard
                .path
                .join(format!("{mode}.gdb"))
                .to_string_lossy()
                .into_owned();
            stdout(&goofi(&[
                "new",
                &db,
                "--name",
                "c1",
                "--workload",
                "crc32",
                "--experiments",
                "8",
                "--seed",
                "42",
                "--max-instr",
                "200000",
                "--on-error",
                "skip",
            ]));
            let mut args = vec!["run", &db, "--name", "c1"];
            args.extend_from_slice(extra);
            if mode == "slow" {
                args.push("--no-snapshot");
            }
            stdout(&goofi(&args));
            dbs.push(db);
        }
        let fast = essence_rows(&dbs[0]);
        let slow = essence_rows(&dbs[1]);
        assert!(!fast.is_empty(), "{label}: no rows logged");
        assert_eq!(fast, slow, "{label}: snapshot path diverged from slow path");
    }
}

#[test]
fn swifi_campaign_via_cli() {
    let (_guard, db) = tmp_db("swifi");
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "s1",
        "--workload",
        "primes",
        "--experiments",
        "10",
        "--technique",
        "swifi-pre",
    ]));
    let out = stdout(&goofi(&["run", &db, "--name", "s1"]));
    assert!(out.contains("10 experiments logged"), "{out}");
    let out = stdout(&goofi(&["report", &db, "--name", "s1"]));
    assert!(out.contains("effectiveness"), "{out}");
}

/// Collapses every digit run to `N` and every space run to one space, so
/// a timing table can be compared against a golden shape even though the
/// measured durations differ run to run.
fn normalize_timings(line: &str) -> String {
    let mut out = String::new();
    let mut in_digits = false;
    for c in line.trim_end().chars() {
        if c.is_ascii_digit() {
            if !in_digits {
                out.push('N');
            }
            in_digits = true;
        } else {
            in_digits = false;
            if c == ' ' && out.ends_with(' ') {
                continue;
            }
            out.push(c);
        }
    }
    out
}

#[test]
fn report_timings_matches_golden_table() {
    let (guard, db) = tmp_db("timings");
    let trace = guard.path.join("c.trace").to_string_lossy().into_owned();
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "t1",
        "--workload",
        "bubblesort",
        "--experiments",
        "8",
        "--seed",
        "7",
        "--time-window",
        "0:2000",
    ]));
    // The run records the trace; --metrics prints the live summary too.
    let out = stdout(&goofi(&[
        "run",
        &db,
        "--name",
        "t1",
        "--trace",
        &trace,
        "--metrics",
    ]));
    assert!(out.contains("per-stage timings:"), "{out}");
    assert!(out.contains("counters:"), "{out}");
    assert!(out.contains("completed"), "{out}");

    // The report appends its classify spans to the same trace, then
    // rebuilds the per-stage histograms from the file.
    let out = stdout(&goofi(&[
        "report",
        &db,
        "--name",
        "t1",
        "--trace",
        &trace,
        "--timings",
        &trace,
    ]));
    let section = out
        .lines()
        .skip_while(|l| !l.starts_with("per-stage timings (from "))
        .skip(1)
        .take(11)
        .map(normalize_timings)
        .collect::<Vec<_>>();
    let golden = [
        "stage spans total_us mean_us pN<=us pN<=us",
        "load N N N N N",
        "run N N N N N",
        "inject N N N N N",
        "scan N N N N N",
        "classify N N N N N",
        "db-write N N N N N",
        "probe N N N N N",
        "recover N N N N N",
        "fsck N N N N N",
        "snapshot-restore N N N N N",
    ];
    assert_eq!(section, golden, "full output:\n{out}");

    // The trace itself is well-formed JSONL with the whole hierarchy.
    let text = std::fs::read_to_string(&trace).expect("trace file");
    assert!(text.lines().count() > 8, "{text}");
    for kind in [
        "\"kind\":\"campaign\"",
        "\"kind\":\"experiment\"",
        "\"kind\":\"stage\"",
    ] {
        assert!(text.contains(kind), "{text}");
    }
}

#[test]
fn errors_are_reported() {
    let (_guard, db) = tmp_db("errs");
    let out = goofi(&["new", &db, "--name", "x", "--workload", "nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));

    let out = goofi(&["run", &db, "--name", "missing"]);
    assert!(!out.status.success());

    let out = goofi(&["bogus"]);
    assert!(!out.status.success());

    let out = goofi(&["sql", &db, "SELEKT"]);
    assert!(!out.status.success());
}

#[test]
fn fsck_reports_classes_and_repairs() {
    let (_guard, db) = tmp_db("fsck");
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "f1",
        "--workload",
        "crc32",
        "--experiments",
        "5",
    ]));
    stdout(&goofi(&["run", &db, "--name", "f1"]));

    // A healthy database passes and exits zero.
    let out = stdout(&goofi(&["fsck", &db]));
    assert!(out.contains("fsck: clean"), "{out}");

    // Flip one stored byte: plain fsck names the class and exits non-zero.
    let text = std::fs::read_to_string(&db).expect("db file");
    std::fs::write(&db, text.replacen("T:end", "T:foo", 1)).unwrap();
    let out = goofi(&["fsck", &db]);
    assert!(!out.status.success(), "plain fsck must fail on corruption");
    let printed =
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr);
    assert!(printed.contains("db-checksum-mismatch"), "{printed}");
    assert!(printed.contains("--repair"), "{printed}");

    // --repair salvages, and a second pass is clean again.
    let out = stdout(&goofi(&["fsck", &db, "--repair"]));
    assert!(out.contains("repaired"), "{out}");
    let out = stdout(&goofi(&["fsck", &db]));
    assert!(out.contains("fsck: clean"), "{out}");
}

#[test]
fn db_file_is_portable_across_invocations() {
    let (_guard, db) = tmp_db("portable");
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "p1",
        "--workload",
        "fibonacci",
        "--experiments",
        "5",
    ]));
    stdout(&goofi(&["run", &db, "--name", "p1"]));
    // A second campaign lands in the same file.
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "p2",
        "--workload",
        "crc32",
        "--experiments",
        "5",
    ]));
    stdout(&goofi(&["run", &db, "--name", "p2"]));
    let out = stdout(&goofi(&[
        "sql",
        &db,
        "SELECT campaignName, COUNT(*) AS n FROM LoggedSystemState GROUP BY campaignName ORDER BY campaignName",
    ]));
    assert!(out.contains("p1"), "{out}");
    assert!(out.contains("p2"), "{out}");
    let _ = PathBuf::from(&db);
}
