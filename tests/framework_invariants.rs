//! Framework-level invariants checked over randomized campaigns.

use goofi::analysis::{classify_campaign, stats::CampaignStats};
use goofi::core::algorithms;
use goofi::core::campaign::{Campaign, OutputRegion, TargetSystemData, Termination};
use goofi::core::logging::ExperimentRecord;
use goofi::core::monitor::ProgressMonitor;
use goofi::core::preinject;
use goofi::core::{dbio, GoofiError};
use goofi::envsim::NullEnvironment;
use goofi::goofi_thor::ThorTarget;
use goofi::goofidb::Database;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn random_campaign(seed: u64, n: usize, workload: &str) -> Campaign {
    let wl = workloads::by_name(workload).expect("workload");
    let data = TargetSystemData::from_target(&ThorTarget::default(), "sim");
    let mut space = data.fault_space(Some(0..wl.image.words.len() as u32), 0..3_000);
    // Drop the infrastructure chains so faults land in architectural state.
    space
        .scan_cells
        .retain(|(chain, _, _)| chain == "internal" || chain == "icache" || chain == "dcache");
    Campaign::builder(format!("inv-{workload}-{seed}"))
        .target_system("thor-rd")
        .workload(goofi::core::campaign::WorkloadImage {
            name: wl.name.clone(),
            words: wl.image.words.clone(),
            code_words: wl.image.code_words,
            entry: wl.image.entry,
        })
        .observe_chains(["internal"])
        .output(match wl.output {
            workloads::OutputSpec::Memory { addr, len } => OutputRegion::Memory { addr, len },
            workloads::OutputSpec::Ports => OutputRegion::Ports,
        })
        .termination(Termination {
            max_instructions: 300_000,
            max_iterations: None,
        })
        .faults(space.sample_campaign(n, &mut StdRng::seed_from_u64(seed)))
        .build()
        .expect("valid campaign")
}

#[test]
fn every_experiment_classifies_and_names_are_unique() {
    for (seed, workload) in [(1u64, "bubblesort"), (2, "primes"), (3, "crc32")] {
        let campaign = random_campaign(seed, 30, workload);
        let mut target = ThorTarget::default();
        let result = algorithms::run_campaign(
            &mut target,
            &campaign,
            &ProgressMonitor::new(30),
            &mut NullEnvironment,
        )
        .unwrap();

        // Names unique and well-formed.
        let names: HashSet<&str> = result.records.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names.len(), result.records.len());
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.name, campaign.experiment_name(i));
            assert_eq!(r.campaign, campaign.name);
            assert!(r.fault.is_some());
        }

        // Classification is total and consistent with the taxonomy.
        let classified = classify_campaign(&result.reference, &result.records);
        assert_eq!(classified.len(), 30);
        let stats = CampaignStats::from_classified(&classified);
        assert_eq!(stats.by_category.values().sum::<usize>(), 30);
        assert_eq!(
            stats.by_mechanism.values().sum::<usize>(),
            stats.category_count("detected"),
        );
    }
}

#[test]
fn preinjection_pruning_is_sound_on_random_campaigns() {
    for seed in [11u64, 12] {
        let campaign = random_campaign(seed, 60, "matmul");
        let mut target = ThorTarget::default();
        let trace = preinject::collect_trace(&mut target, &campaign, 100_000, &mut NullEnvironment)
            .unwrap();
        let map = preinject::LivenessMap::from_trace(&trace);
        let (_kept, pruned) = preinject::filter_campaign(&campaign, &map, false);

        // Every pruned fault, when actually run, is non-effective.
        let mut pruned_campaign = campaign.clone();
        pruned_campaign.faults = pruned;
        if pruned_campaign.faults.is_empty() {
            continue;
        }
        let result = algorithms::run_campaign(
            &mut target,
            &pruned_campaign,
            &ProgressMonitor::new(pruned_campaign.faults.len()),
            &mut NullEnvironment,
        )
        .unwrap();
        for (record, classified) in result
            .records
            .iter()
            .zip(classify_campaign(&result.reference, &result.records))
        {
            assert!(
                !classified.outcome.is_effective(),
                "pruned fault was effective: {:?} -> {}",
                record.fault,
                classified.outcome,
            );
        }
    }
}

#[test]
fn database_roundtrip_preserves_records_exactly() {
    let campaign = random_campaign(21, 15, "fibonacci");
    let mut target = ThorTarget::default();
    let result = algorithms::run_campaign(
        &mut target,
        &campaign,
        &ProgressMonitor::new(15),
        &mut NullEnvironment,
    )
    .unwrap();

    let mut db = Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_target_system(
        &mut db,
        &TargetSystemData::from_target(&ThorTarget::default(), "sim"),
    )
    .unwrap();
    dbio::store_campaign(&mut db, &campaign).unwrap();
    dbio::store_result(&mut db, &result).unwrap();

    let loaded = dbio::load_experiments(&db, &campaign.name).unwrap();
    let reference: &ExperimentRecord = &loaded[0];
    assert_eq!(reference, &result.reference);
    assert_eq!(&loaded[1..], result.records.as_slice());

    // And after text persistence too.
    let restored = Database::load_from_string(&db.save_to_string()).unwrap();
    let reloaded = dbio::load_experiments(&restored, &campaign.name).unwrap();
    assert_eq!(reloaded, loaded);
}

#[test]
fn duplicate_campaign_name_is_rejected() {
    let campaign = random_campaign(31, 2, "primes");
    let mut db = Database::new();
    dbio::init_schema(&mut db).unwrap();
    dbio::store_target_system(
        &mut db,
        &TargetSystemData::from_target(&ThorTarget::default(), "sim"),
    )
    .unwrap();
    dbio::store_campaign(&mut db, &campaign).unwrap();
    let err = dbio::store_campaign(&mut db, &campaign).unwrap_err();
    assert!(matches!(err, GoofiError::Db(_)));
}

#[test]
fn parallel_runner_surfaces_worker_errors_and_validates_workers() {
    use goofi::core::framework::NullTarget;
    use goofi::core::runner;
    let campaign = random_campaign(41, 4, "primes");
    // An unported target fails on the very first building block.
    let err = runner::run_campaign_parallel(
        NullTarget::new,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &ProgressMonitor::new(4),
        2,
    )
    .unwrap_err();
    assert!(matches!(err, GoofiError::Unimplemented("init_test_card")));

    // Zero workers is a configuration error.
    let err = runner::run_campaign_parallel(
        ThorTarget::default,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &ProgressMonitor::new(4),
        0,
    )
    .unwrap_err();
    assert!(matches!(err, GoofiError::Config(_)));

    // A pre-stopped monitor aborts the parallel run too.
    let monitor = ProgressMonitor::new(4);
    monitor.stop();
    let err = runner::run_campaign_parallel(
        ThorTarget::default,
        None::<fn() -> Box<dyn goofi::envsim::Environment>>,
        &campaign,
        &monitor,
        2,
    )
    .unwrap_err();
    assert!(matches!(err, GoofiError::Stopped));
}

#[test]
fn decorators_and_trait_objects_forward_power_cycle_to_the_real_target() {
    use goofi::core::link::{UnreliableTarget, VerifiedTarget};
    use goofi::core::supervisor::WedgeableTarget;
    use goofi::core::TargetAccess;
    use goofi::scanchain::{LinkFaultConfig, WedgeConfig};

    // Wedge the target so deeply that only its own cold reset clears it —
    // if any layer of the stack substituted the trait's default
    // (init+reset) power cycle, the wedge would survive.
    let mut cfg = WedgeConfig::hang(7, 1.0);
    cfg.max_events = Some(1);
    let wedged = WedgeableTarget::new(ThorTarget::default(), cfg);
    let unreliable = UnreliableTarget::new(wedged, LinkFaultConfig::default());
    let boxed: Box<dyn TargetAccess> = Box::new(VerifiedTarget::new(unreliable));
    let mut stack: Box<dyn TargetAccess> = Box::new(boxed); // Box-in-Box: blanket impl too

    stack.init_test_card().unwrap();
    let wl = workloads::by_name("primes").unwrap();
    stack
        .load_workload(&goofi::core::campaign::WorkloadImage {
            name: wl.name.clone(),
            words: wl.image.words.clone(),
            code_words: wl.image.code_words,
            entry: wl.image.entry,
        })
        .unwrap();
    // The armed run draws the wedge: the whole budget burns with no
    // progress.
    let before = stack.instructions_executed();
    let event = stack
        .run_workload(goofi::core::RunBudget {
            max_instructions: 500,
        })
        .unwrap();
    assert!(
        matches!(event, goofi::core::RunEvent::BudgetExhausted),
        "wedged run must time out, got {event:?}"
    );
    assert!(
        stack.instructions_executed() >= before + 500,
        "hang burns budget"
    );

    stack.power_cycle().unwrap();
    // After a forwarded power cycle the workload is reloaded and the wedge
    // is gone: the run completes for real.
    let event = stack
        .run_workload(goofi::core::RunBudget::default())
        .unwrap();
    assert!(
        matches!(event, goofi::core::RunEvent::Halted),
        "target must run to completion after power cycle, got {event:?}"
    );
}

#[test]
fn readonly_scan_cells_are_rejected_as_fault_locations() {
    let wl = workloads::by_name("primes").unwrap();
    let campaign = Campaign::builder("ro")
        .workload(goofi::core::campaign::WorkloadImage {
            name: wl.name.clone(),
            words: wl.image.words.clone(),
            code_words: wl.image.code_words,
            entry: wl.image.entry,
        })
        .output(OutputRegion::Ports)
        .fault(goofi::core::fault::FaultSpec::single(
            goofi::core::fault::FaultLocation::ScanCell {
                chain: "internal".into(),
                cell: "DETECT".into(), // read-only status cell
                bit: 0,
            },
            goofi::core::trigger::Trigger::AfterInstructions(5),
        ))
        .build()
        .unwrap();
    let mut target = ThorTarget::default();
    let err = algorithms::run_campaign(
        &mut target,
        &campaign,
        &ProgressMonitor::new(1),
        &mut NullEnvironment,
    )
    .unwrap_err();
    // The default fail-fast policy wraps the experiment error, preserving
    // whatever completed before it (here: nothing but the reference run).
    match err {
        GoofiError::ExperimentFailed { failure, partial } => {
            assert_eq!(failure.index, 0);
            assert_eq!(failure.attempts, 1);
            assert!(failure.error.contains("read-only"), "{failure}");
            assert!(partial.records.is_empty());
        }
        other => panic!("expected ExperimentFailed, got {other}"),
    }
}
