//! The second-target proof: the framework is generic because the *same*
//! framework-side behaviour falls out whichever CPU sits behind
//! `TargetAccess`.
//!
//! Two layers of evidence:
//!
//! 1. **Conformance** — the `goofi_core::conformance` contract suite passes
//!    for every registered target (`goofi targets`), for the in-process
//!    simulator, for the generic scan-readout fallback, and for every
//!    fault-model decorator stack over both CPUs.
//! 2. **Differential campaigns** — E1-class (SCIFI) and E2-class
//!    (pre-runtime SWIFI) campaigns run against Thor and the RV32I core
//!    with the same campaign shape. Everything the *framework* contributes
//!    to a record — names, parent links, validity, fault bookkeeping,
//!    quarantine topology, resume behaviour — must be bit-identical across
//!    the two CPUs; only the target-measured payload (state digests,
//!    outputs, counters) may differ. The same holds under a faulty link
//!    (quarantine + linked re-runs) and under a wedge drill (hang
//!    recovery), and a truncated journal must resume to the uninterrupted
//!    result on either CPU.

use goofi::core::algorithms;
use goofi::core::campaign::{
    Campaign, CampaignBuilder, OutputRegion, TargetSystemData, Termination, WorkloadImage,
};
use goofi::core::conformance::{run_suite, ConformanceSpec, ReadoutFallback, CHECK_NAMES};
use goofi::core::fault::{FaultLocation, FaultSpec};
use goofi::core::link::{UnreliableTarget, VerifiedTarget};
use goofi::core::logging::{ExperimentRecord, TerminationCause, Validity};
use goofi::core::monitor::ProgressMonitor;
use goofi::core::policy::{ExperimentPolicy, WatchdogBudget};
use goofi::core::runner;
use goofi::core::supervisor::WedgeableTarget;
use goofi::core::trigger::Trigger;
use goofi::core::TargetAccess;
use goofi::envsim::NullEnvironment;
use goofi::scanchain::{BitVec, ChainLayout, LinkFaultConfig, RecoveryDepth, WedgeConfig};
use goofi::targets::TargetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A self-terminating, memory-output workload for each CPU: `crc32` for
/// Thor, `rv-memcpy` for RV32I. Same role on both sides of every
/// differential test below.
fn workload_for(kind: TargetKind) -> (WorkloadImage, OutputRegion) {
    match kind {
        TargetKind::Thor => {
            let w = workloads::by_name("crc32").unwrap();
            (
                WorkloadImage {
                    name: w.name.clone(),
                    words: w.image.words.clone(),
                    code_words: w.image.code_words,
                    entry: w.image.entry,
                },
                match w.output {
                    workloads::OutputSpec::Memory { addr, len } => {
                        OutputRegion::Memory { addr, len }
                    }
                    workloads::OutputSpec::Ports => OutputRegion::Ports,
                },
            )
        }
        TargetKind::Riscv => {
            let w = workloads::riscv_by_name("rv-memcpy").unwrap();
            (
                WorkloadImage {
                    name: w.name.clone(),
                    words: w.image.words.clone(),
                    code_words: w.image.code_words,
                    entry: w.image.entry,
                },
                match w.output {
                    workloads::OutputSpec::Memory { addr, len } => {
                        OutputRegion::Memory { addr, len }
                    }
                    workloads::OutputSpec::Ports => OutputRegion::Ports,
                },
            )
        }
    }
}

/// A campaign builder with the same framework-side shape on either CPU:
/// same name, same observed chain, same termination policy — only the
/// workload image and target-system name differ.
fn campaign_for(kind: TargetKind, name: &str) -> CampaignBuilder {
    let (image, output) = workload_for(kind);
    Campaign::builder(name)
        .target_system(kind.system_name())
        .workload(image)
        .observe_chains(["internal"])
        .output(output)
        .termination(Termination {
            max_instructions: 500_000,
            max_iterations: None,
        })
}

/// E1-class SCIFI faults for a CPU: sampled from that CPU's own
/// architectural fault space (the chains differ between the ISAs, so the
/// *content* is per-CPU; the sampling parameters are shared).
fn scifi_faults(kind: TargetKind, n: usize, seed: u64) -> Vec<FaultSpec> {
    let data = TargetSystemData::from_target(&*kind.build(), kind.description());
    let mut space = data.fault_space(None, 0..200);
    space.scan_cells.retain(|(chain, _, _)| chain == "internal");
    space.sample_campaign(n, &mut StdRng::seed_from_u64(seed))
}

/// E2-class pre-runtime SWIFI faults: memory bit flips are expressed in
/// target-agnostic units, so both CPUs get the *same* fault list.
fn swifi_faults() -> Vec<FaultSpec> {
    let mut faults = Vec::new();
    for addr in 0..4u32 {
        for bit in (0..32u8).step_by(4) {
            faults.push(FaultSpec::single(
                FaultLocation::Memory { addr, bit },
                Trigger::PreRuntime,
            ));
        }
    }
    faults
}

fn run_serial(kind: TargetKind, campaign: &Campaign) -> algorithms::CampaignResult {
    let mut target = kind.build();
    algorithms::run_campaign(
        &mut target,
        campaign,
        &ProgressMonitor::new(campaign.experiment_count()),
        &mut NullEnvironment,
    )
    .unwrap()
}

/// Everything the *framework* contributes to a record — the part that must
/// be bit-identical whichever CPU ran the experiment. The target-measured
/// payload (state, termination detail, counters) is deliberately absent.
fn framework_essence(r: &ExperimentRecord) -> (String, Option<String>, String, bool, Validity) {
    (
        r.name.clone(),
        r.parent.clone(),
        r.campaign.clone(),
        r.fault.is_some(),
        r.validity,
    )
}

#[test]
fn conformance_suite_passes_for_every_registered_target() {
    for kind in TargetKind::ALL {
        let (image, _) = workload_for(kind);
        let mut spec = ConformanceSpec::new(format!("{} native", kind.flag()), image);
        spec.expect_name = Some(kind.system_name().to_string());
        spec.expect_snapshot = Some(true);
        spec.expect_prefix_safe = Some(true);
        spec.counters_restored = true; // native snapshots capture counters

        let mut target = kind.build();
        let report = run_suite(&mut target, &spec);
        assert!(report.passed(), "{report}");
        assert_eq!(report.checks.len(), CHECK_NAMES.len());
    }
}

#[test]
fn conformance_suite_passes_for_the_simulator_and_readout_fallbacks() {
    // The in-process simulator target the service stack tests against.
    let sim_image = WorkloadImage {
        name: "sim-conformance".into(),
        words: vec![20, 0],
        code_words: 2,
        entry: 0,
    };
    let mut spec = ConformanceSpec::new("sim native", sim_image);
    spec.expect_name = Some("sim".into());
    spec.expect_snapshot = Some(true);
    spec.expect_prefix_safe = Some(true);
    spec.counters_restored = true;
    let report = run_suite(&mut goofi::core::framework::SimTarget::new(), &spec);
    assert!(report.passed(), "{report}");

    // The generic scan-readout fallback over both real CPUs: a port with
    // no native snapshot gets working state capture from its scan chains
    // alone. Counters live outside the chains, so they are not restored.
    for kind in TargetKind::ALL {
        let (image, _) = workload_for(kind);
        let mut spec = ConformanceSpec::new(format!("{} via readout fallback", kind.flag()), image);
        spec.expect_name = Some(kind.system_name().to_string());
        spec.expect_snapshot = Some(true);
        spec.counters_restored = false;
        let mut target = ReadoutFallback::new(kind.build());
        let report = run_suite(&mut target, &spec);
        assert!(report.passed(), "{report}");
    }
}

#[test]
fn conformance_suite_passes_for_every_decorator_stack_over_both_cpus() {
    for kind in TargetKind::ALL {
        let (image, _) = workload_for(kind);
        let spec_for = |label: &str| {
            let mut spec = ConformanceSpec::new(format!("{label}({})", kind.flag()), image.clone());
            spec.expect_name = Some(kind.system_name().to_string());
            spec.expect_snapshot = Some(true);
            spec.expect_prefix_safe = Some(true);
            spec.counters_restored = true;
            spec
        };

        // Verified link.
        let report = run_suite(
            &mut VerifiedTarget::new(kind.build()),
            &spec_for("verified"),
        );
        assert!(report.passed(), "{report}");

        // Healthy (zero-rate) lossy link.
        let report = run_suite(
            &mut UnreliableTarget::new(kind.build(), LinkFaultConfig::default()),
            &spec_for("unreliable"),
        );
        assert!(report.passed(), "{report}");

        // Wedge drill over a verified link: forwards everything, but its
        // seeded per-run draws make prefix-skips unsafe — the capability
        // bit must survive the whole stack, on either CPU.
        let mut spec = spec_for("wedgeable+verified");
        spec.expect_prefix_safe = Some(false);
        let report = run_suite(
            &mut WedgeableTarget::new(VerifiedTarget::new(kind.build()), WedgeConfig::default()),
            &spec,
        );
        assert!(report.passed(), "{report}");
    }
}

#[test]
fn e1_scifi_framework_essence_is_bit_identical_across_cpus() {
    let mut essences = Vec::new();
    for kind in TargetKind::ALL {
        let campaign = campaign_for(kind, "diff-e1")
            .faults(scifi_faults(kind, 24, 0xD1FF))
            .build()
            .unwrap();
        let result = run_serial(kind, &campaign);
        let again = run_serial(kind, &campaign);
        assert_eq!(result, again, "{kind}: campaign must be deterministic");

        // Per-CPU internal consistency: record i carries fault i.
        assert_eq!(result.records.len(), campaign.faults.len());
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.fault.as_ref(), Some(&campaign.faults[i]), "{kind}");
        }
        assert!(result.reference.fault.is_none());
        assert_eq!(result.reference.name, "diff-e1/reference");

        let mut essence: Vec<_> = result.records.iter().map(framework_essence).collect();
        essence.push(framework_essence(&result.reference));
        essences.push(essence);
    }
    // The framework-side record structure must not depend on the CPU.
    assert_eq!(
        essences[0], essences[1],
        "E1 record essence differs between CPUs"
    );
}

#[test]
fn e2_swifi_framework_essence_is_bit_identical_across_cpus() {
    // Pre-runtime memory flips are target-agnostic, so here even the fault
    // lists themselves are shared verbatim between the two campaigns.
    let faults = swifi_faults();
    let mut essences = Vec::new();
    for kind in TargetKind::ALL {
        let campaign = campaign_for(kind, "diff-e2")
            .technique(goofi::core::campaign::Technique::SwifiPreRuntime)
            .faults(faults.clone())
            .build()
            .unwrap();
        let result = run_serial(kind, &campaign);
        assert!(result.quarantined.is_empty());
        assert!(result.failures.is_empty());
        let essence: Vec<_> = result.records.iter().map(framework_essence).collect();
        // The injected faults round-trip identically on both CPUs.
        for (i, r) in result.records.iter().enumerate() {
            assert_eq!(r.fault.as_ref(), Some(&faults[i]), "{kind}");
        }
        essences.push(essence);
    }
    assert_eq!(
        essences[0], essences[1],
        "E2 record essence differs between CPUs"
    );
}

#[test]
fn truncated_journal_resumes_to_the_uninterrupted_result_on_either_cpu() {
    for kind in TargetKind::ALL {
        let campaign = campaign_for(kind, "diff-resume")
            .faults(scifi_faults(kind, 8, 0x0E5))
            .build()
            .unwrap();

        let path = std::env::temp_dir().join(format!(
            "goofi-second-target-{}-{}.journal",
            std::process::id(),
            kind.flag()
        ));
        let _ = std::fs::remove_file(&path);

        let mut journal =
            goofi::core::journal::ExperimentJournal::create(&path, &campaign.name).unwrap();
        let make_target = move || kind.build();
        let full = runner::run_campaign_parallel_journaled(
            make_target,
            None::<fn() -> Box<dyn goofi::envsim::Environment>>,
            &campaign,
            &ProgressMonitor::new(8),
            3,
            Some(&mut journal),
        )
        .unwrap();
        drop(journal);

        // Crash partway: keep the header, campaign line, reference record
        // and the first two experiment records.
        let text = std::fs::read_to_string(&path).unwrap();
        let keep: String = text.lines().take(5).map(|l| format!("{l}\n")).collect();
        std::fs::write(&path, keep).unwrap();

        let monitor = ProgressMonitor::new(8);
        let resumed = runner::resume_campaign(
            make_target,
            None::<fn() -> Box<dyn goofi::envsim::Environment>>,
            &campaign,
            &monitor,
            3,
            &path,
        )
        .unwrap();
        assert_eq!(
            resumed, full,
            "{kind}: resume must reproduce the uninterrupted run bit-identically"
        );
        assert_eq!(monitor.snapshot().fraction(), 1.0);
        let _ = std::fs::remove_file(&path);
    }
}

/// A link decorator whose misbehaviour is scheduled *framework-side*: it
/// corrupts every memory readout while the N-th `run_workload` call is the
/// most recent one. Because the campaign driver issues the same call
/// sequence whatever CPU is behind it, the drift window — and therefore
/// the quarantine topology — lands on the same experiments on both CPUs.
struct DriftingLink<T> {
    inner: T,
    runs: u64,
    corrupt_after_run: u64,
}

impl<T: TargetAccess> DriftingLink<T> {
    fn new(inner: T, corrupt_after_run: u64) -> Self {
        DriftingLink {
            inner,
            runs: 0,
            corrupt_after_run,
        }
    }

    fn drifting(&self) -> bool {
        self.runs == self.corrupt_after_run
    }
}

impl<T: TargetAccess> TargetAccess for DriftingLink<T> {
    fn target_name(&self) -> &str {
        self.inner.target_name()
    }
    fn init_test_card(&mut self) -> goofi::core::Result<()> {
        self.inner.init_test_card()
    }
    fn load_workload(&mut self, image: &WorkloadImage) -> goofi::core::Result<()> {
        self.inner.load_workload(image)
    }
    fn reset_target(&mut self) -> goofi::core::Result<()> {
        self.inner.reset_target()
    }
    fn write_memory(&mut self, addr: u32, data: &[u32]) -> goofi::core::Result<()> {
        self.inner.write_memory(addr, data)
    }
    fn read_memory(&mut self, addr: u32, len: usize) -> goofi::core::Result<Vec<u32>> {
        let mut words = self.inner.read_memory(addr, len)?;
        if self.drifting() {
            for w in &mut words {
                *w ^= 1;
            }
        }
        Ok(words)
    }
    fn flip_memory_bit(&mut self, addr: u32, bit: u8) -> goofi::core::Result<()> {
        self.inner.flip_memory_bit(addr, bit)
    }
    fn memory_size(&self) -> u32 {
        self.inner.memory_size()
    }
    fn set_breakpoint(&mut self, trigger: Trigger) -> goofi::core::Result<()> {
        self.inner.set_breakpoint(trigger)
    }
    fn clear_breakpoints(&mut self) -> goofi::core::Result<()> {
        self.inner.clear_breakpoints()
    }
    fn run_workload(
        &mut self,
        budget: goofi::core::RunBudget,
    ) -> goofi::core::Result<goofi::core::RunEvent> {
        self.runs += 1;
        self.inner.run_workload(budget)
    }
    fn step_instruction(&mut self) -> goofi::core::Result<Option<goofi::core::RunEvent>> {
        self.inner.step_instruction()
    }
    fn chain_layouts(&self) -> Vec<ChainLayout> {
        self.inner.chain_layouts()
    }
    fn read_scan_chain(&mut self, chain: &str) -> goofi::core::Result<BitVec> {
        self.inner.read_scan_chain(chain)
    }
    fn write_scan_chain(&mut self, chain: &str, bits: &BitVec) -> goofi::core::Result<()> {
        self.inner.write_scan_chain(chain, bits)
    }
    fn write_input_ports(&mut self, inputs: &[u32]) -> goofi::core::Result<()> {
        self.inner.write_input_ports(inputs)
    }
    fn read_output_ports(&mut self) -> goofi::core::Result<Vec<u32>> {
        self.inner.read_output_ports()
    }
    fn instructions_executed(&self) -> u64 {
        self.inner.instructions_executed()
    }
    fn cycles_executed(&self) -> u64 {
        self.inner.cycles_executed()
    }
    fn iterations_completed(&self) -> u64 {
        self.inner.iterations_completed()
    }
    fn step_traced(
        &mut self,
    ) -> goofi::core::Result<(
        Option<goofi::core::RunEvent>,
        goofi::core::preinject::StepAccess,
    )> {
        self.inner.step_traced()
    }
    fn power_cycle(&mut self) -> goofi::core::Result<()> {
        self.inner.power_cycle()
    }
    fn snapshot(&mut self) -> goofi::core::Result<goofi::core::TargetSnapshot> {
        self.inner.snapshot()
    }
    fn restore(&mut self, snapshot: &goofi::core::TargetSnapshot) -> goofi::core::Result<()> {
        self.inner.restore(snapshot)
    }
    fn supports_snapshot(&self) -> bool {
        self.inner.supports_snapshot()
    }
    fn prefix_restore_safe(&self) -> bool {
        self.inner.prefix_restore_safe()
    }
    // memory_digest NOT forwarded: the trait default routes through this
    // decorator's (possibly drifting) read_memory, like a real lossy link.
}

#[test]
fn quarantine_links_are_bit_identical_across_cpus() {
    // Call sequence with revalidate_every = 2 and pre-runtime faults:
    //   run 1: reference   run 2-3: exp0, exp1   run 4: golden re-run
    // The drift window covers exactly run 4 — the golden run reads back
    // corrupted state, the framework quarantines exps 0-1 and re-runs them
    // with parent links. All of that is framework bookkeeping, so the
    // resulting topology must be the same strings on both CPUs.
    let mut outcomes = Vec::new();
    for kind in TargetKind::ALL {
        let campaign = campaign_for(kind, "diff-quarantine")
            .technique(goofi::core::campaign::Technique::SwifiPreRuntime)
            .faults(swifi_faults().into_iter().take(4).collect::<Vec<_>>())
            .policy(ExperimentPolicy::default().with_revalidation(2))
            .build()
            .unwrap();

        let mut target = DriftingLink::new(kind.build(), 4);
        let monitor = ProgressMonitor::new(4);
        let result =
            algorithms::run_campaign(&mut target, &campaign, &monitor, &mut NullEnvironment)
                .unwrap();

        // Quarantined originals kept for audit, all records superseded.
        assert_eq!(result.quarantined.len(), 2, "{kind}");
        assert!(
            result
                .quarantined
                .iter()
                .all(|r| r.validity == Validity::Invalid),
            "{kind}"
        );
        assert!(
            result.records.iter().all(|r| r.validity == Validity::Valid),
            "{kind}"
        );
        assert_eq!(monitor.snapshot().quarantined, 2, "{kind}");

        let reruns: Vec<_> = result.records.iter().map(framework_essence).collect();
        let quarantined: Vec<_> = result.quarantined.iter().map(framework_essence).collect();
        outcomes.push((reruns, quarantined));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "quarantine topology differs between CPUs"
    );
    // And the linkage itself is the expected literal structure.
    let (records, quarantined) = &outcomes[0];
    assert_eq!(records[0].0, "diff-quarantine/exp00000/rerun1");
    assert_eq!(records[0].1.as_deref(), Some("diff-quarantine/exp00000"));
    assert_eq!(records[1].0, "diff-quarantine/exp00001/rerun1");
    assert_eq!(records[1].1.as_deref(), Some("diff-quarantine/exp00001"));
    assert_eq!(records[2].0, "diff-quarantine/exp00002");
    assert_eq!(quarantined[0].0, "diff-quarantine/exp00000");
    assert_eq!(quarantined[1].0, "diff-quarantine/exp00001");
}

#[test]
fn wedge_recovery_preserves_campaign_essence_on_either_cpu() {
    for kind in TargetKind::ALL {
        let policy = ExperimentPolicy::default()
            .with_watchdog(WatchdogBudget {
                max_cycles: Some(200_000),
                max_wall_ms: None,
            })
            .with_health_check(1_000);
        let campaign = campaign_for(kind, "diff-wedge")
            .technique(goofi::core::campaign::Technique::SwifiPreRuntime)
            .faults(swifi_faults().into_iter().take(4).collect::<Vec<_>>())
            .policy(policy)
            .build()
            .unwrap();

        // Ground truth: the same campaign on a healthy target.
        let healthy = run_serial(kind, &campaign);
        assert!(healthy.recoveries.is_empty(), "{kind}");

        // A wedge that hangs the target once, clearable only by a power
        // cycle. The supervisor must detect it, recover, and re-run the
        // poisoned experiment to the healthy outcome.
        let cfg = WedgeConfig {
            max_events: Some(1),
            recovery: RecoveryDepth::PowerCycle,
            ..WedgeConfig::hang(17, 0.3)
        };
        let mut wedged = WedgeableTarget::new(kind.build(), cfg);
        let monitor = ProgressMonitor::new(4);
        let result =
            algorithms::run_campaign(&mut wedged, &campaign, &monitor, &mut NullEnvironment)
                .unwrap();

        assert_eq!(result.records.len(), healthy.records.len(), "{kind}");
        for (got, want) in result.records.iter().zip(&healthy.records) {
            assert_eq!(got.fault, want.fault, "{kind}");
            assert_eq!(got.termination, want.termination, "{kind}");
            assert_eq!(got.state, want.state, "{kind}");
            assert_eq!(got.validity, Validity::Valid, "{kind}");
        }

        // Exactly one linked re-run replaced the hang; the quarantined
        // original is rewritten to TargetHang and one recovery episode
        // reached the power cycle. Same framework structure, either CPU.
        let reruns: Vec<&ExperimentRecord> = result
            .records
            .iter()
            .filter(|r| r.parent.is_some())
            .collect();
        assert_eq!(reruns.len(), 1, "{kind}: exactly one hang re-run expected");
        let parent = reruns[0].parent.as_deref().unwrap();
        assert_eq!(reruns[0].name, format!("{parent}/rerun1"), "{kind}");
        assert_eq!(result.quarantined.len(), 1, "{kind}");
        assert_eq!(result.quarantined[0].name, parent, "{kind}");
        assert_eq!(
            result.quarantined[0].termination,
            TerminationCause::TargetHang,
            "{kind}"
        );
        assert_eq!(result.recoveries.len(), 1, "{kind}");
        assert_eq!(result.recoveries[0].experiment, parent, "{kind}");
    }
}
