//! End-to-end tests of the campaign service through the real CLI:
//! `goofi serve`, `goofi submit`, and the spawned `goofi worker`
//! processes, all against the Thor target.
//!
//! The oracle throughout: a service-run campaign must leave the database
//! essence-equal to `goofi run` executing the same campaign serially.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn goofi(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_goofi"))
        .args(args)
        .output()
        .expect("spawn goofi")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Minimal self-cleaning temp dir (std-only).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempDirGuard {
        pub path: PathBuf,
    }

    impl Drop for TempDirGuard {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }

    pub fn create(name: &str) -> TempDirGuard {
        let path =
            std::env::temp_dir().join(format!("goofi-service-cli-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("mkdir");
        TempDirGuard { path }
    }
}

/// A running `goofi serve` daemon with its stdout tapped.
struct Daemon {
    child: Child,
    addr: String,
    lines: std::sync::mpsc::Receiver<String>,
}

impl Daemon {
    /// Spawns `goofi serve <db> --addr 127.0.0.1:0 <extra...>` and waits
    /// for its banner to learn the bound address.
    fn spawn(db: &str, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_goofi"))
            .arg("serve")
            .arg(db)
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn goofi serve");
        let out = child.stdout.take().expect("daemon stdout");
        let (tx, lines) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            for line in BufReader::new(out).lines() {
                let Ok(line) = line else { break };
                if tx.send(line).is_err() {
                    break;
                }
            }
        });
        let addr = loop {
            let line = lines
                .recv_timeout(Duration::from_secs(30))
                .expect("daemon banner");
            if let Some(rest) = line.strip_prefix("goofi daemon on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address in banner")
                    .to_string();
            }
        };
        Daemon { child, addr, lines }
    }

    /// Blocks until the daemon prints a line containing `needle`.
    fn await_line(&self, needle: &str) -> String {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            let line = self
                .lines
                .recv_timeout(left)
                .unwrap_or_else(|_| panic!("daemon never printed `{needle}`"));
            if line.contains(needle) {
                return line;
            }
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill(); // SIGKILL: no clean shutdown path runs
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Creates a small Thor campaign in `<dir>/<file>` and returns the path.
fn make_campaign(dir: &std::path::Path, file: &str, experiments: &str) -> String {
    let db = dir.join(file).to_string_lossy().into_owned();
    stdout(&goofi(&[
        "new",
        &db,
        "--name",
        "c1",
        "--workload",
        "crc32",
        "--experiments",
        experiments,
        "--seed",
        "42",
        "--max-instr",
        "200000",
        "--on-error",
        "skip",
    ]));
    db
}

/// The experiment rows that define a run's essence, sorted for
/// order-independent comparison.
fn essence_rows(db: &str) -> Vec<String> {
    let out = stdout(&goofi(&[
        "sql",
        db,
        "SELECT experimentName, termination, stateVector, validity FROM LoggedSystemState",
    ]));
    let mut rows: Vec<String> = out.lines().map(str::to_string).collect();
    rows.sort();
    rows
}

#[test]
fn chaos_drill_survives_worker_kills_and_matches_serial_run() {
    let guard = tempdir::create("chaos");
    let db = make_campaign(&guard.path, "service.gdb", "10");
    let serial = make_campaign(&guard.path, "serial.gdb", "10");
    stdout(&goofi(&["run", &serial, "--name", "c1"]));

    // Every shard's first lease is chaos-killed mid-shard; the service
    // must reassign and still converge on the serial run's results.
    let mut daemon = Daemon::spawn(&db, &["--chaos", "kill-after=2,seed=3", "--workers", "2"]);
    let out = stdout(&goofi(&[
        "submit",
        &daemon.addr,
        "--name",
        "c1",
        "--workers",
        "2",
        "--watch",
    ]));
    assert!(out.contains("accepted as job-"), "{out}");
    assert!(out.contains(": done "), "watch must end in done: {out}");

    let got = essence_rows(&db);
    let want = essence_rows(&serial);
    assert!(!want.is_empty());
    assert_eq!(got, want, "merged database diverged from serial run");

    // Status shows the finished job; shutdown stops the daemon cleanly.
    let status = stdout(&goofi(&["submit", &daemon.addr, "--status"]));
    assert!(status.contains("done"), "{status}");
    stdout(&goofi(&["submit", &daemon.addr, "--shutdown"]));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if daemon.child.try_wait().expect("wait daemon").is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "daemon ignored shutdown");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn sigkilled_daemon_resumes_the_job_on_restart() {
    let guard = tempdir::create("resume");
    let db = make_campaign(&guard.path, "service.gdb", "8");
    let serial = make_campaign(&guard.path, "serial.gdb", "8");
    stdout(&goofi(&["run", &serial, "--name", "c1"]));

    // Phase 1: workers stall on every attempt, so the job cannot finish
    // while this daemon lives — it limps forward one experiment per lease.
    let mut daemon = Daemon::spawn(
        &db,
        &[
            "--chaos",
            "kill-after=1,seed=5,kills=999,mode=stall",
            "--lease-ms",
            "400",
            "--poison-after",
            "100000",
            "--workers",
            "2",
        ],
    );
    let out = stdout(&goofi(&["submit", &daemon.addr, "--name", "c1"]));
    let job = out
        .lines()
        .find_map(|l| l.strip_prefix("accepted as "))
        .expect("job id in submit output")
        .trim()
        .to_string();

    // Wait for journaled progress, then SIGKILL the daemon mid-job.
    let spool = PathBuf::from(format!("{db}.spool"));
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let journaled = std::fs::read_dir(spool.join(&job))
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.file_name().to_string_lossy().ends_with(".gjl"))
                    .filter_map(|e| e.metadata().ok())
                    .any(|m| m.len() > 0)
            })
            .unwrap_or(false);
        if journaled {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no journaled progress before kill"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    daemon.kill();
    assert!(
        !spool.join(&job).join("done").exists(),
        "job must still be in flight when the daemon dies"
    );

    // Phase 2: a fresh daemon (chaos off) recovers the spool and the job
    // completes; watching it attaches to the resumed run.
    let daemon2 = Daemon::spawn(&db, &["--workers", "2"]);
    daemon2.await_line(&format!("resumed in-flight {job}"));
    let out = stdout(&goofi(&["submit", &daemon2.addr, "--job", &job, "--watch"]));
    assert!(out.contains(": done "), "resumed job must finish: {out}");

    let got = essence_rows(&db);
    let want = essence_rows(&serial);
    assert!(!want.is_empty());
    assert_eq!(got, want, "resumed database diverged from serial run");
}
