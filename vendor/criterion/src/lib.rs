//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the `bench` crate uses — `criterion_group!` /
//! `criterion_main!`, `bench_function`, `benchmark_group`, `iter`,
//! `iter_batched`, `Throughput` — with a plain wall-clock measurement
//! loop. No statistical analysis or HTML reports: each benchmark prints
//! one line with mean time per iteration (and derived throughput), which
//! is what the EXPERIMENTS.md tables record.

use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported like criterion's.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing for `iter_batched`; only a hint in this stand-in.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher<'a> {
    samples: u64,
    throughput: Option<Throughput>,
    id: &'a str,
}

impl Bencher<'_> {
    /// Time `routine`, reporting mean wall-clock time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed calls.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.report(start.elapsed(), self.samples);
    }

    /// Time `routine` over inputs built by `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.report(total, self.samples);
    }

    fn report(&self, total: Duration, iters: u64) {
        let mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
        let mut line = format!("{:<40} mean {:>12.0} ns/iter", self.id, mean_ns);
        if let Some(Throughput::Elements(n)) = self.throughput {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  ({per_sec:>12.0} elem/s)"));
        }
        if let Some(Throughput::Bytes(n)) = self.throughput {
            let per_sec = n as f64 / (mean_ns / 1e9);
            line.push_str(&format!("  ({per_sec:>12.0} B/s)"));
        }
        println!("{line}");
    }
}

/// Top-level benchmark registry, mirroring criterion's builder API.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API compatibility; the stand-in is iteration-bounded,
    /// not time-bounded.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            throughput: None,
            id,
        };
        f(&mut bencher);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }

    /// No-op summary hook used by `criterion_main!`.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            samples: self.sample_size,
            throughput: self.throughput,
            id: &full,
        };
        f(&mut bencher);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declare the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Elements(10));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = probe
    }

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
