//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used by this workspace (the parallel
//! campaign runner); it maps directly onto `std::thread::scope`, which has
//! provided the same structured-concurrency guarantee since Rust 1.63.

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Result of a scope: `Err` carries the payload of a panicked child.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// Handle for spawning threads that may borrow from the enclosing
    /// scope. Wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope again so
        /// it can spawn siblings (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Create a scope: all spawned threads are joined before this returns.
    /// Returns `Err` with the panic payload if the closure or any
    /// unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_locals() {
        let data = vec![1u32, 2, 3, 4];
        let total = std::sync::atomic::AtomicU32::new(0);
        super::thread::scope(|scope| {
            for chunk in data.chunks(2) {
                scope.spawn(|_| {
                    total.fetch_add(
                        chunk.iter().sum::<u32>(),
                        std::sync::atomic::Ordering::SeqCst,
                    );
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), 10);
    }

    #[test]
    fn child_panic_is_reported_as_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn join_returns_value() {
        let out = super::thread::scope(|scope| {
            let h = scope.spawn(|_| 7usize);
            h.join().expect("joined")
        })
        .expect("no panics");
        assert_eq!(out, 7);
    }
}
