//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()` returns the guard directly, and a panic while holding the lock
//! does not poison it for other threads (the poison is swallowed on the
//! next acquire, matching parking_lot's semantics closely enough for the
//! runner/monitor/telemetry uses in this workspace).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Non-poisoning mutex.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Holds the std guard in an `Option`
/// so [`Condvar::wait`] can temporarily take ownership.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed wait: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because of the timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().expect("waiter");
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
