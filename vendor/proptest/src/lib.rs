//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this crate. It keeps the same programming model — the
//! `proptest!` macro, `Strategy` combinators, `any::<T>()`, collection and
//! regex-literal strategies — but generates cases from a deterministic
//! SplitMix64 stream and does **no shrinking**: a failing case panics with
//! the generated inputs via the normal assertion message. Each property
//! runs a fixed number of cases seeded from the property's name, so
//! failures are reproducible run to run.

use std::fmt;

pub mod test_runner {
    //! Deterministic RNG used to drive strategies.

    /// SplitMix64 stream; deliberately tiny and reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed the stream.
        pub fn seed_from_u64(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }
    }

    /// FNV-1a of a string, used to derive per-property seeds.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

use test_runner::TestRng;

/// Number of cases each property runs (real proptest defaults to 256; a
/// smaller count keeps the campaign-heavy properties fast in CI).
pub const CASES: u32 = 64;

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value from the RNG stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Keep only values passing `f` (bounded retry, then panic).
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                f,
                reason,
            }
        }

        /// Chain: generate a value, then generate from the strategy it maps to.
        fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            O: Strategy,
            F: Fn(Self::Value) -> O,
        {
            FlatMap { base: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        f: F,
        reason: &'static str,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let candidate = self.base.generate(rng);
                if (self.f)(&candidate) {
                    return candidate;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.reason);
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        O: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O::Value;

        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the already-boxed alternatives.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.arms.len());
            self.arms[index].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (self.start as i128 + offset) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (low, high) = (*self.start() as i128, *self.end() as i128);
                    let span = (high - low + 1) as u128;
                    let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (low + offset) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.next_u64() as f64 / u64::MAX as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    /// String literals are strategies over the regex subset
    /// `( [class] | char ) ( {n} | {m,n} )?` — enough for identifiers,
    /// bit-strings and printable payloads.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal char.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..i + close];
                i += close + 1;
                expand_class(class, pattern)
            } else {
                let c = if chars[i] == '\\' {
                    i += 1;
                    unescape(chars[i], pattern)
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Parse an optional {n} / {m,n} quantifier.
            let (low, high) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..i + close].iter().collect();
                i += close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (parse_count(m, pattern), parse_count(n, pattern)),
                    None => {
                        let n = parse_count(&body, pattern);
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = low + rng.below(high - low + 1);
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }

    fn parse_count(s: &str, pattern: &str) -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier in pattern {pattern:?}"))
    }

    fn unescape(c: char, pattern: &str) -> char {
        match c {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            '\\' | '.' | '[' | ']' | '{' | '}' | '-' => c,
            other => panic!("unsupported escape \\{other} in pattern {pattern:?}"),
        }
    }

    fn expand_class(class: &[char], pattern: &str) -> Vec<char> {
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            let c = if class[i] == '\\' {
                i += 1;
                unescape(class[i], pattern)
            } else {
                class[i]
            };
            // `a-z` range (a `-` at the end of the class is a literal).
            if i + 2 < class.len() && class[i + 1] == '-' {
                let hi = class[i + 2];
                assert!(c <= hi, "inverted range in pattern {pattern:?}");
                for v in c..=hi {
                    alphabet.push(v);
                }
                i += 3;
            } else {
                alphabet.push(c);
                i += 1;
            }
        }
        assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");
        alphabet
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Generate one canonical value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    // Bias towards small magnitudes half the time: edge-ish
                    // values exercise more interesting paths than uniform
                    // 64-bit noise, and there is no shrinking to recover
                    // them otherwise.
                    let word = rng.next_u64();
                    if word & 1 == 0 {
                        ((word >> 1) % 97) as $t
                    } else {
                        (word >> 1) as $t
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Finite doubles spanning several magnitudes, sign included.
            let word = rng.next_u64();
            let magnitude = (word >> 2) as f64 / (1u64 << 32) as f64;
            if word & 1 == 0 {
                magnitude
            } else {
                -magnitude
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text databases readable.
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

pub use arbitrary::any;

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::{BTreeMap, BTreeSet};

    /// Element-count specification: an exact count or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        low: usize,
        high: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.high <= self.low + 1 {
                self.low
            } else {
                self.low + rng.below(self.high - self.low)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                low: n,
                high: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                low: r.start,
                high: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                low: *r.start(),
                high: r.end().saturating_add(1),
            }
        }
    }

    /// Strategy for `Vec<T>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }

    /// `BTreeMap` with `size` entries (duplicate keys collapse, as in
    /// real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` with up to `size` elements.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` one time in four.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Lift a strategy into `Option`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.

    pub use crate::any;
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Displayed when a property fails; mirrors proptest's error shape.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run one property body over [`CASES`] deterministic cases.
/// Used by the `proptest!` macro expansion; not public API in real
/// proptest, but harmless to expose.
pub fn run_property<F: FnMut(&mut TestRng)>(name: &str, mut body: F) {
    for case in 0..CASES {
        let seed =
            test_runner::seed_for(name) ^ (0x5851_f42d_4c95_7f2d_u64.wrapping_mul(case as u64 + 1));
        let mut rng = TestRng::seed_from_u64(seed);
        body(&mut rng);
    }
}

/// Assert inside a property (no shrinking: delegates to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Discard a case when an assumption fails. Without a rejection engine the
/// stub simply skips the rest of the case body via early return.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice over heterogeneous strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define `#[test]` properties. Two parameter spellings are accepted and
/// may be mixed within one signature, matching real proptest:
/// `pat in strategy` and `name: Type` (the latter draws from
/// `any::<Type>()`). Each `proptest!` block may hold several functions.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            $crate::run_property(stringify!($name), |prop_rng| {
                $crate::__proptest_bind!(prop_rng; $($params)*);
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: turn one property parameter list into `let` bindings drawn
/// from the per-case RNG.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident: $t:ty) => {
        let $arg = $crate::strategy::Strategy::generate(&$crate::any::<$t>(), $rng);
    };
    ($rng:ident; $arg:ident: $t:ty, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&$crate::any::<$t>(), $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        fn ranges_hold(x in 3usize..10, mut v in crate::collection::vec(any::<bool>(), 0..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 5);
            v.push(true);
        }

        fn oneof_and_map(t in prop_oneof![
            Just(0u8),
            (1u8..4).prop_map(|v| v * 10),
        ]) {
            prop_assert!(t == 0 || (10..40).contains(&t));
        }

        fn string_patterns(s in "[a-z]{1,8}", bits in "[01]{0,64}", tag in "[A-Z][A-Z0-9.]{0,8}") {
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(bits.len() <= 64);
            prop_assert!(bits.chars().all(|c| c == '0' || c == '1'));
            prop_assert!(!tag.is_empty() && tag.len() <= 9);
            prop_assert!(tag.chars().next().unwrap().is_ascii_uppercase());
        }

        fn escapes_in_classes(s in "[ -~\\t\\n]{0,24}") {
            prop_assert!(s.len() <= 24);
            prop_assert!(s.chars().all(|c| c == '\t' || c == '\n' || (' '..='~').contains(&c)));
        }

        fn collections_generate(
            m in crate::collection::btree_map("[a-z]{1,8}", any::<u32>(), 0..4),
            set in crate::collection::btree_set(any::<usize>(), 0..20),
            opt in crate::option::of(0u32..10),
        ) {
            prop_assert!(m.len() < 4);
            prop_assert!(set.len() < 20);
            if let Some(v) = opt {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        crate::run_property("determinism_probe", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_property("determinism_probe", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }
}
