//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the workspace
//! manifest). It implements exactly the surface GOOFI uses — seedable
//! `StdRng`, integer `gen_range`, and slice shuffling — on top of a
//! SplitMix64/xoshiro-style generator. It is deterministic and NOT
//! cryptographically secure, which is what a fault-injection campaign
//! wants anyway: the same seed must reproduce the same fault list.

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift reduction keeps the bias negligible for the
                // span sizes campaigns use (< 2^64 experiments).
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from this range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange<u64> for std::ops::RangeInclusive<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (low, high) = (*self.start(), *self.end());
        if high == u64::MAX && low == 0 {
            return rng.next_u64();
        }
        u64::sample_range(rng, low, high + 1)
    }
}

impl SampleRange<usize> for std::ops::RangeInclusive<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        usize::sample_range(rng, *self.start(), self.end().saturating_add(1))
    }
}

/// User-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64 stream feeding a
    /// xorshift mix). Replaces rand's ChaCha-based `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            StdRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_range(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i16..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 9 should not yield identity permutation");
    }
}
